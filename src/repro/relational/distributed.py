"""A simulated distributed backend: partitioned, replicated XST relations.

The VLDB-1977 title promises "intrinsically reliable ... very large,
distributed, backend information systems".  Real cluster hardware is
out of scope for this reproduction (see DESIGN.md's substitution
table), so this module simulates the distribution layer faithfully
enough to measure its algebra: a :class:`Cluster` of in-process
:class:`Node` objects, hash partitioning on a chosen attribute, N-way
replica placement (:mod:`repro.relational.replication`), and query
execution that ships *sets* between nodes -- with every shipment
priced in real serialized bytes via
:func:`repro.xst.serialization.dumps`.

What the simulation preserves from the paper's programme:

* relations partition *by scope value* -- the partitioning key is an
  attribute scope, and each node holds ordinary XST relations, so
  every local operation is the unmodified kernel;
* every partition (*bucket*) lives on ``replication_factor`` nodes;
  reads are served by the first live replica and fail over down the
  ring, writes fan out to every replica;
* distributed selection routes by key when the predicate covers the
  partition attribute (one bucket touched) and broadcasts otherwise;
* distributed join is co-partitioned when both sides share a partition
  attribute (and placement), and otherwise *re-shuffles* one side --
  shipping costs are visible in :class:`NetworkStats`;
* distributed aggregation pushes partial aggregates (count/sum/min/
  max) to the nodes and combines, shipping summaries instead of rows;
* failures are injected deterministically through the hooks in
  :mod:`repro.relational.faults`; reads retry with (simulated)
  exponential backoff, fail over across replicas, and raise
  :class:`repro.errors.ClusterUnavailableError` only when no correct
  answer is obtainable -- never a wrong one.

Placement is **explicit and versioned** (PR 9): every table carries a
:class:`repro.relational.sharding.ShardMap` -- an epoch-numbered
bucket->owner-ring map with a bucket count decoupled from the node
count -- instead of the original implicit ``bucket b on node b``
scheme.  Requests stamped with a stale epoch are refused with a typed
:class:`~repro.errors.ShardMovedError` before any bucket is read, and
online rebalancing (:meth:`Cluster.rebalance`, :meth:`Cluster.split_table`,
:meth:`Cluster.merge_table`) moves buckets between nodes as a
resumable, journaled state machine driven on the same deterministic
tick clock as the fault injector -- so seeded kill/revive events land
mid-copy, mid-catch-up and mid-swing, and the move provably completes
afterwards.  A :meth:`Cluster.execute` coordinator pushes
``SelectEq``/``SelectPred``/``Project`` chains below the shuffle and
chooses broadcast-small vs shuffle-on-key join strategies from the
statistics catalog and per-bucket row counts.

The failure model: a killed node is *unreachable*, not erased -- its
stored buckets survive a crash (durable disks) and serve again after
a revive.  Writes, however, are *missed* while a node is down: the
fan-out skips unreachable replicas, exactly as a real backend's would.
Consistency is restored by **rebuild-from-log**: the cluster keeps an
in-memory write log (one entry per bucket write, with a monotonically
increasing LSN) and every node carries an ``applied_lsn`` high-water
mark; a revive replays the log tail past the node's mark -- shipping
real priced bytes -- before the node serves again, so any *readable*
replica is always consistent.  The write fan-out also ticks the fault
injector, so seeded ``crash`` events can kill a node halfway through
a fan-out and the rebuild provably reconciles the torn write.
"""

from __future__ import annotations

import time
from itertools import count
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    CircuitOpenError,
    ClusterUnavailableError,
    OverloadedError,
    SchemaError,
    ShardMovedError,
)
from repro.gov.admission import PRIORITY_NORMAL, AdmissionController
from repro.gov.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard
from repro.gov.governor import Budget, Deadline
from repro.gov.governor import active as _gov_active
from repro.gov.result import MissingBucket, Result
from repro.obs import metrics as _metrics
from repro.obs.instrument import enabled as _obs_enabled
from repro.obs.instrument import record_recovery as _record_recovery
from repro.obs.instrument import record_shard_event as _record_shard_event
from repro.obs.trace import Span, TraceContext, Tracer
from repro.relational.aggregate import aggregate as local_aggregate
from repro.relational.algebra import join as local_join
from repro.relational.algebra import select_eq as local_select_eq
from repro.relational.algebra import union as local_union
from repro.relational.faults import (
    NO_FAULTS,
    FaultInjector,
    FaultPlan,
    NodeDownError,
    ShipmentCorruptedError,
    ShipmentLostError,
)
from repro.relational.cost import (
    broadcast_join_cost,
    estimate_shard_rows,
    shuffle_join_cost,
)
from repro.relational.optimizer import ShardPipeline, shard_pipeline
from repro.relational.query import Join as JoinPlan
from repro.relational.query import Plan, Scan
from repro.relational.relation import Relation
from repro.relational.sharding import (
    ShardCatalog,
    ShardMap,
    ShardMove,
    shard_index,
)
from repro.relational.schema import Heading
from repro.xst.builders import xrecord, xset
from repro.xst.serialization import dumps
from repro.xst.xset import XSet

__all__ = ["NetworkStats", "Node", "Cluster"]

#: Numeric breaker-state encoding for the ``repro_gov_breaker_state``
#: gauge (a gauge must be a number; 0 is the healthy state).
_BREAKER_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class NetworkStats:
    """Counters for simulated shipments, faults and recovery work.

    Since the observability layer landed these are *derived metrics*:
    every mutation is mirrored into the global
    :mod:`repro.obs.metrics` registry (``repro_cluster_*`` counters)
    when ``REPRO_OBS`` is on, so benchmark harnesses and the
    ``repro obs-metrics`` exposition see cluster traffic without
    touching this object.  The plain attributes remain the
    synchronous, always-on view the tests assert against.
    """

    def __init__(self):
        self.messages = 0
        self.bytes_shipped = 0
        self.replica_messages = 0
        self.replica_bytes = 0
        self.retries = 0
        self.failovers = 0
        self.delay_s = 0.0
        self.backoff_s = 0.0

    def ship(self, payload: XSet, replica: bool = False) -> None:
        self.ship_encoded(len(dumps(payload)), replica=replica)

    def ship_encoded(self, byte_count: int, replica: bool = False) -> None:
        self.messages += 1
        self.bytes_shipped += byte_count
        if replica:
            self.replica_messages += 1
            self.replica_bytes += byte_count
        if _obs_enabled():
            registry = _metrics.registry()
            registry.counter(
                "repro_cluster_messages_total",
                "Simulated shipments between nodes.",
            ).inc()
            registry.counter(
                "repro_cluster_bytes_total",
                "Serialized bytes shipped.", ("replica",),
            ).inc(byte_count, replica="1" if replica else "0")

    def record_retry(self, backoff_s: float = 0.0) -> None:
        self.retries += 1
        self.backoff_s += backoff_s
        if _obs_enabled():
            registry = _metrics.registry()
            registry.counter(
                "repro_cluster_retries_total",
                "Shipment retries after loss/corruption.",
            ).inc()
            registry.counter(
                "repro_cluster_backoff_seconds_total",
                "Simulated retry backoff charged.",
            ).inc(backoff_s)

    def record_failover(self) -> None:
        self.failovers += 1
        if _obs_enabled():
            _metrics.registry().counter(
                "repro_cluster_failovers_total",
                "Reads served by a non-primary replica.",
            ).inc()

    def record_delay(self, seconds: float) -> None:
        self.delay_s += seconds
        if _obs_enabled():
            _metrics.registry().counter(
                "repro_cluster_delay_seconds_total",
                "Simulated node latency charged.",
            ).inc(seconds)

    def recovery_s(self) -> float:
        """Total simulated time spent recovering (delays + backoff)."""
        return self.delay_s + self.backoff_s

    def reset(self) -> None:
        self.__init__()

    def __repr__(self) -> str:
        return (
            "NetworkStats(messages=%d, bytes=%d, replica_bytes=%d, "
            "retries=%d, failovers=%d)"
            % (self.messages, self.bytes_shipped, self.replica_bytes,
               self.retries, self.failovers)
        )


class Node:
    """One backend node: a name, liveness, and its local buckets.

    ``alive`` and ``delay_s`` are the two knobs the fault harness
    turns; the storage itself is durable (a killed node keeps its
    buckets, but misses writes until a revive-time rebuild --
    ``applied_lsn`` is the write-log high-water mark the rebuild
    replays from).
    """

    def __init__(self, name: str, index: int = 0):
        self.name = name
        self.index = index
        self.alive = True
        self.delay_s = 0.0
        self.applied_lsn = 0
        self._buckets: Dict[str, Dict[int, Relation]] = {}
        # Rebalance staging: an in-flight shard move copies into here
        # so a half-received bucket is never visible to reads; the
        # swing promotes it into ``_buckets`` atomically.  Durable,
        # like the buckets -- a killed recipient resumes its staged
        # copy on revive.
        self._staged: Dict[Tuple[str, int], Relation] = {}

    # -- storage (durable: works regardless of liveness) ---------------

    def store(self, table: str, partition: Relation,
              bucket: Optional[int] = None) -> None:
        index = self.index if bucket is None else bucket
        self._buckets.setdefault(table, {})[index] = partition

    def merge(self, table: str, bucket: int, rows: Relation) -> None:
        """Fold new rows into a stored bucket (the write fan-out path)."""
        held = self._buckets.setdefault(table, {})
        current = held.get(bucket)
        held[bucket] = rows if current is None else local_union(current, rows)

    def stored(self, table: str, bucket: int) -> Optional[Relation]:
        """Durable read of one bucket copy (works on dead nodes).

        The anti-entropy path: a donor's post-swing copy is audited
        from durable storage whether or not the node is reachable.
        """
        return self._buckets.get(table, {}).get(bucket)

    def drop_bucket(self, table: str, bucket: int) -> None:
        """GC one bucket copy from durable storage (move source GC)."""
        held = self._buckets.get(table)
        if held is not None:
            held.pop(bucket, None)
            if not held:
                del self._buckets[table]

    # -- rebalance staging (durable, invisible to reads) ----------------

    def stage_store(self, table: str, bucket: int, rows: Relation) -> None:
        self._staged[(table, bucket)] = rows

    def stage_merge(self, table: str, bucket: int, rows: Relation) -> None:
        current = self._staged.get((table, bucket))
        self._staged[(table, bucket)] = (
            rows if current is None else local_union(current, rows)
        )

    def staged(self, table: str, bucket: int) -> Optional[Relation]:
        return self._staged.get((table, bucket))

    def promote_stage(self, table: str, bucket: int) -> None:
        """Swing: staged rows become the live bucket copy, atomically."""
        rows = self._staged.pop((table, bucket), None)
        if rows is not None:
            self.merge(table, bucket, rows)

    def drop_stage(self, table: str, bucket: int) -> None:
        self._staged.pop((table, bucket), None)

    # -- reads (the production path: needs a reachable node) -----------

    def bucket(self, table: str, bucket: int) -> Relation:
        if not self.alive:
            raise NodeDownError("node %s is down" % self.name)
        try:
            return self._buckets[table][bucket]
        except KeyError:
            raise SchemaError(
                "node %s holds no bucket %d of %r" % (self.name, bucket, table)
            ) from None

    def partition(self, table: str) -> Relation:
        """Every locally held row of ``table`` (union of its buckets).

        A coordinator-side inspection view: it reads the durable
        storage directly and so works on dead nodes too.
        """
        try:
            held = self._buckets[table]
        except KeyError:
            raise SchemaError(
                "node %s holds no partition of %r" % (self.name, table)
            ) from None
        merged: Optional[Relation] = None
        for index in sorted(held):
            part = held[index]
            merged = part if merged is None else local_union(merged, part)
        assert merged is not None
        return merged

    def holds(self, table: str) -> bool:
        return table in self._buckets

    def buckets_held(self, table: str) -> Tuple[int, ...]:
        return tuple(sorted(self._buckets.get(table, ())))

    # -- liveness ------------------------------------------------------

    def fail(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        return "Node(%s, %s, %d tables)" % (
            self.name, status, len(self._buckets)
        )


def _partition_index(value: Any, node_count: int) -> int:
    """Deterministic placement: hash of the canonical serialization.

    Kept as the historical name for the differential oracles; the
    algorithm now lives in :func:`repro.relational.sharding.shard_index`
    (byte-identical routing) and the bucket count is a property of the
    table's :class:`~repro.relational.sharding.ShardMap`, not of the
    cluster.
    """
    return shard_index(value, node_count)


class _QueryContext:
    """Per-query bookkeeping: simulated elapsed time and the root span.

    The span tree records one child per bucket access (successful or
    terminally failed), which :mod:`repro.relational.profile` renders
    as an EXPLAIN-style tree and ``repro obs-trace`` exports.

    ``deadline`` is the query's *single* time budget: the ambient
    governor's deadline when one is installed, else one built from the
    cluster's ``query_timeout_s`` default.  Backoff sleeps and node
    delays both draw it down (each simulated second charged exactly
    once) -- previously backoff and delays were summed into a context
    total that a surrounding governor could have charged a second
    time.
    """

    __slots__ = ("describe", "simulated_s", "span", "started", "deadline",
                 "trace", "shard_budgets")

    def __init__(self, describe: str, span: Span,
                 deadline: Optional[Deadline] = None,
                 trace: Optional[TraceContext] = None):
        self.describe = describe
        self.simulated_s = 0.0
        self.span = span
        self.started = time.perf_counter()
        self.deadline = deadline
        #: The causal context child operations (per-bucket reads,
        #: rebuilds) inherit: same trace id, this query's root span as
        #: causal parent.
        self.trace = trace
        #: Per-shard governor budgets, allocated lazily per bucket the
        #: query touches (only when the cluster caps shard reads).
        self.shard_budgets: Dict[Tuple[str, int], Budget] = {}

    def charge(self, seconds: float) -> None:
        self.simulated_s += seconds

    def shard_budget(self, table: str, bucket: int, max_rows: int) -> Budget:
        """The (lazily created) row budget for one shard of this query."""
        key = (table, bucket)
        budget = self.shard_budgets.get(key)
        if budget is None:
            budget = self.shard_budgets[key] = Budget(max_rows=max_rows)
        return budget


class Cluster:
    """A set of nodes plus the distributed execution strategies.

    ``replication_factor`` is the cluster-wide default copy count for
    :meth:`create_table` (overridable per table).  ``max_attempts``
    bounds per-replica retries of lost/corrupted shipments, with
    simulated exponential backoff starting at ``backoff_base_s``.
    ``query_timeout_s`` is the *default* time budget: each query runs
    under one :class:`repro.gov.Deadline` (the ambient governor's when
    one is installed, else a simulated-clock deadline built from this
    value) that node delays and backoff draw down together; an
    exhausted deadline raises
    :class:`~repro.errors.DeadlineExceededError` rather than hanging.

    Governance knobs (all off by default, preserving the PR-1 fault
    semantics exactly):

    * ``breakers=True`` arms per-node circuit breakers on the
      cluster's operation counter (``failure_threshold`` consecutive
      failures open; ``breaker_cooldown_ops`` ops later a half-open
      probe runs, with seeded per-node jitter).  An open breaker's
      node is skipped without an attempt, a tick, or backoff.
    * ``max_in_flight`` bounds concurrently admitted queries;
      excess work is shed with :class:`~repro.errors.OverloadedError`
      before any execution (see :mod:`repro.gov.admission`).
    * ``stats_fanout=True`` lets gather-style reads (scan, broadcast
      selection) visit buckets in descending per-bucket row-count
      order -- the schedule a parallel gather would pick, so the
      longest-running shipment starts first.  Off by default because
      reordering changes the operation-tick sequence that the seeded
      fault/chaos suites pin byte-for-byte.
    """

    def __init__(
        self,
        node_count: int = 4,
        replication_factor: int = 1,
        max_attempts: int = 3,
        backoff_base_s: float = 0.010,
        query_timeout_s: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        breakers: bool = False,
        breaker_threshold: int = 3,
        breaker_cooldown_ops: int = 8,
        breaker_jitter_ops: int = 3,
        breaker_seed: int = 0,
        max_in_flight: Optional[int] = None,
        admission_soft: Optional[int] = None,
        stats_fanout: bool = False,
        shard_budget_rows: Optional[int] = None,
    ):
        if node_count < 1:
            raise ValueError("a cluster needs at least one node")
        if not 1 <= replication_factor <= node_count:
            raise ValueError(
                "replication factor %d needs 1..%d nodes"
                % (replication_factor, node_count)
            )
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.nodes = [
            Node("node-%d" % index, index) for index in range(node_count)
        ]
        self.network = NetworkStats()
        self.replication_factor = replication_factor
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.query_timeout_s = query_timeout_s
        self.faults: FaultInjector = NO_FAULTS
        # Operation counter: the deterministic "clock" circuit
        # breakers schedule probes against.  Incremented by _tick,
        # which also drives the fault injector -- breaker transitions
        # are a pure function of the operation sequence.
        self.ops = 0
        self.breakers: Optional[BreakerBoard] = (
            BreakerBoard(
                failure_threshold=breaker_threshold,
                cooldown_ops=breaker_cooldown_ops,
                jitter_ops=breaker_jitter_ops,
                seed=breaker_seed,
                on_transition=self._on_breaker_transition,
            )
            if breakers
            else None
        )
        self.admission: Optional[AdmissionController] = (
            AdmissionController(max_in_flight, soft_capacity=admission_soft)
            if max_in_flight is not None
            else None
        )
        # Trace state, initialized up front so a cluster that has
        # never run a query still profiles/renders cleanly.  ``clock``
        # injects the span clock: pass a repro.obs.trace.FakeClock and
        # span durations become pure simulated time (backoff + node
        # delays), deterministic across machines.
        self.tracer = Tracer(clock=clock, capacity=64)
        # Trace ids are allocated from this counter, never from clocks
        # or randomness -- the byte-reproducibility of chaos traces
        # depends on it.
        self._trace_ids = count(1)
        self.stats_fanout = stats_fanout
        #: Per-query cap on rows any single shard may contribute; a
        #: bucket read past the cap dies with
        #: :class:`~repro.errors.BudgetExceededError` naming the shard
        #: site.  ``None`` (default) disables the cap.
        self.shard_budget_rows = shard_budget_rows
        self._partition_attrs: Dict[str, str] = {}
        self._headings: Dict[str, Heading] = {}
        self._placements: Dict[str, ShardMap] = {}
        #: Durable catalog + journal sink (a DiskRelationStore), when
        #: :meth:`attach_store` connected one: every epoch swing
        #: persists the shard catalog, every move step its journal.
        self._store: Optional[Any] = None
        #: WAL for durable EPOCH markers, when :meth:`attach_wal`
        #: connected one; swings are audit-logged, not replayed.
        self._wal: Optional[Any] = None
        #: ANALYZE statistics for join-strategy sizing, when
        #: :meth:`attach_stats` supplied a catalog.
        self._stats_catalog: Optional[Any] = None
        #: In-flight shard moves, oldest first (FIFO-driven by
        #: :meth:`step_rebalance`).
        self._moves: List[ShardMove] = []
        # Per-table, per-bucket row counts maintained on every load and
        # insert -- the distributed analog of the statistics catalog's
        # row counts, feeding stats_fanout bucket ordering.
        self._bucket_rows: Dict[str, Dict[int, int]] = {}
        self._last_context: Optional[_QueryContext] = None
        #: Coordinator-side result cache (``enable_result_cache``):
        #: entries fingerprinted by per-table write generations, so a
        #: post-insert reader can never see a pre-insert answer.
        self.result_cache = None
        self._table_generations: Dict[str, int] = {}
        # The write log: (lsn, table, bucket, kind, rows) per bucket
        # write, kind in {"store", "merge"}.  Replayed by
        # :meth:`on_revive` to rebuild replicas that missed writes.
        self._write_log: List[Tuple[int, str, int, str, Relation]] = []
        self._log_lsn = 0

    # ------------------------------------------------------------------
    # Faults and liveness
    # ------------------------------------------------------------------

    def _tick(self, write: bool = False) -> None:
        """One cluster operation: advance the op clock, run faults.

        Breakers and fault injection share this counter, so a seeded
        chaos run produces one reproducible interleaving of fault
        events and breaker transitions.
        """
        self.ops += 1
        self.faults.tick(self, write=write)

    def _on_breaker_transition(self, node: str, old: str, new: str,
                               op: int) -> None:
        """BreakerBoard hook: span attribute always, metrics when on."""
        span = self.tracer.active
        if span is not None:
            span.set("breaker_%s" % node, "%s->%s" % (old, new))
        if _obs_enabled():
            registry = _metrics.registry()
            registry.counter(
                "repro_gov_breaker_transitions_total",
                "Circuit-breaker state transitions.", ("node", "to"),
            ).inc(node=node, to=new)
            registry.gauge(
                "repro_gov_breaker_state",
                "Breaker state per node (0 closed, 1 half-open, 2 open).",
                ("node",),
            ).set(_BREAKER_STATE_CODES[new], node=node)

    @property
    def breaker_log(self) -> List[Tuple[int, str, str, str]]:
        """``(op, node, old, new)`` transitions, in order (or empty)."""
        return [] if self.breakers is None else list(self.breakers.log)

    def breaker_states(self) -> Dict[str, str]:
        """Current breaker state per node (empty without breakers)."""
        return {} if self.breakers is None else self.breakers.states()

    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Arm a deterministic fault schedule; returns the injector."""
        self.faults = FaultInjector(plan)
        return self.faults

    def clear_faults(self) -> None:
        self.faults = NO_FAULTS

    def node_named(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise SchemaError(
            "no node named %r; cluster has %s"
            % (name, [node.name for node in self.nodes])
        )

    def kill_node(self, name: str) -> None:
        """Make a node unreachable (storage survives)."""
        self.node_named(name).fail()

    def revive_node(self, name: str) -> None:
        """Bring a node back, rebuilding any writes it missed."""
        self.on_revive(self.node_named(name))

    def on_revive(self, node: Node) -> None:
        """Revive ``node``: replay the write-log tail, then serve.

        Idempotent (a live node is left alone).  The rebuild runs
        *before* the node is marked reachable, so there is no window
        where a stale replica serves reads.
        """
        if node.alive:
            return
        self._rebuild(node)
        node.recover()

    def _rebuild(self, node: Node) -> None:
        """Replay write-log entries past the node's high-water mark.

        Only entries for buckets this node replicates are applied; the
        shipped bytes are priced as replica traffic and the pass is
        reported as a ``rebuild`` recovery (span + metrics).  Replays
        are safe to overlap with writes the node did see: ``store``
        overwrites and ``merge`` is a union, so re-applying is
        idempotent.
        """
        started = time.perf_counter()
        # A revive mid-query (the fault injector's doing) opens this
        # span while the query's spans are still on the stack; capture
        # the causal context *before* starting so the rebuild carries
        # the triggering query's trace id.  A standalone revive (no
        # open spans) has no cause and stays unannotated.
        cause = self.tracer.current_context()
        span = self.tracer.start("rebuild(%s)" % node.name, node=node.name)
        if cause is not None:
            cause.annotate(span)
        entries = 0
        byte_count = 0
        epoch = self._placement_epoch()
        try:
            for lsn, table, bucket, kind, rows in self._write_log:
                if lsn <= node.applied_lsn:
                    continue
                placement = self._placements.get(table)
                if placement is None or not placement.has_bucket(bucket):
                    # Entries numbered under a retired bucket count (a
                    # later merge shrank the map); the post-merge
                    # snapshot entries supersede them.
                    continue
                if node.index not in placement.replicas(bucket):
                    continue
                if kind == "store":
                    node.store(table, rows, bucket=bucket)
                else:
                    node.merge(table, bucket, rows)
                size = len(dumps(rows.rows))
                self.network.ship_encoded(size, replica=True)
                entries += 1
                byte_count += size
            node.applied_lsn = self._log_lsn
            span.set("entries", entries)
            span.set("bytes", byte_count)
            span.set("epoch", epoch)
        finally:
            self.tracer.end(span)
        _record_recovery(
            "rebuild", time.perf_counter() - started, entries, byte_count,
            epoch=epoch,
        )

    def _placement_epoch(self) -> int:
        """The cluster's placement generation: the newest table epoch.

        Rebuilds happen against whatever maps are installed *now*, so
        a revive that lands after a rebalance reports the post-swing
        epoch -- the correlation tag FlightRecorder incidents need to
        connect a revive with the topology change it rebuilt into.
        """
        return max(
            (placement.epoch for placement in self._placements.values()),
            default=0,
        )

    def _log_append(self, table: str, bucket: int, kind: str,
                    rows: Relation) -> int:
        self._log_lsn += 1
        self._write_log.append((self._log_lsn, table, bucket, kind, rows))
        return self._log_lsn

    def live_nodes(self) -> List[Node]:
        return [node for node in self.nodes if node.alive]

    # ------------------------------------------------------------------
    # Loading and writing
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        relation: Relation,
        partition_attr: str,
        replication_factor: Optional[int] = None,
        buckets: Optional[int] = None,
    ) -> None:
        """Hash-partition a relation across the nodes by one attribute.

        Placement is an explicit :class:`ShardMap` at epoch 1:
        ``buckets`` hash partitions (default: one per node, the
        historical scheme) each owned by a ``replication_factor``-node
        ring (primary plus ring successors).  The primary copy is free
        -- data originates there -- while every extra copy ships over
        the network and is priced in ``NetworkStats.replica_bytes``.

        Unreachable replicas *miss* the write (they catch up from the
        write log on revive), and each per-replica step ticks the
        fault injector, so a seeded crash can land mid-fan-out.
        """
        relation.heading.require([partition_attr])
        factor = (
            self.replication_factor
            if replication_factor is None
            else replication_factor
        )
        placement = ShardMap.successor_rings(
            partition_attr, len(self.nodes), factor, bucket_count=buckets
        )
        # Catalog first: a revive fired by a mid-create tick must be
        # able to see the placement to rebuild the partial table.
        self._partition_attrs[name] = partition_attr
        self._headings[name] = relation.heading
        self._placements[name] = placement
        parts: List[List] = [[] for _ in range(placement.bucket_count)]
        for row, _ in relation.rows.pairs():
            (value,) = row.elements_at(partition_attr)
            parts[placement.bucket_for(value)].append(row)
        self._bucket_rows[name] = {
            index: len(bucket) for index, bucket in enumerate(parts)
        }
        for bucket_index, bucket in enumerate(parts):
            part = Relation(relation.heading, xset(bucket))
            lsn = self._log_append(name, bucket_index, "store", part)
            for position, node_index in enumerate(
                placement.replicas(bucket_index)
            ):
                self._tick(write=True)
                node = self.nodes[node_index]
                if not node.alive:
                    continue  # missed write; rebuilt on revive
                node.store(name, part, bucket=bucket_index)
                node.applied_lsn = lsn
                if position:
                    self.network.ship(part.rows, replica=True)
        self._persist_placements()
        self._bump_generation(name)
        if _obs_enabled():
            _record_shard_event(
                "create", name, rows=relation.cardinality(),
                epoch=placement.epoch,
            )

    def insert(self, name: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Append rows, fanned out to every *reachable* replica.

        Each bucket write is logged (one LSN) before the fan-out, and
        each per-replica step ticks the fault injector -- so a seeded
        crash tears the fan-out at a deterministic point and the torn
        replica misses the rows until its revive-time rebuild replays
        the log tail.  Returns the row count written.
        """
        heading = self.heading(name)
        attr = self.partition_attr(name)
        placement = self._placements[name]
        buckets: Dict[int, List] = {}
        count = 0
        for row in rows:
            if frozenset(row) != frozenset(heading.names):
                raise SchemaError(
                    "row keys %s do not match heading %r"
                    % (sorted(row), heading)
                )
            record = xrecord(row)
            buckets.setdefault(
                placement.bucket_for(row[attr]), []
            ).append(record)
            count += 1
        for bucket_index in sorted(buckets):
            fresh = Relation(heading, xset(buckets[bucket_index]))
            counts = self._bucket_rows.setdefault(name, {})
            counts[bucket_index] = (
                counts.get(bucket_index, 0) + len(buckets[bucket_index])
            )
            lsn = self._log_append(name, bucket_index, "merge", fresh)
            for position, node_index in enumerate(
                placement.replicas(bucket_index)
            ):
                self._tick(write=True)
                node = self.nodes[node_index]
                if not node.alive:
                    continue  # missed write; rebuilt on revive
                node.merge(name, bucket_index, fresh)
                node.applied_lsn = lsn
                self.network.ship(fresh.rows, replica=position > 0)
        if count:
            self._bump_generation(name)
        return count

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------

    def partition_attr(self, name: str) -> str:
        try:
            return self._partition_attrs[name]
        except KeyError:
            raise SchemaError("unknown distributed table %r" % (name,)) from None

    def heading(self, name: str) -> Heading:
        self.partition_attr(name)
        return self._headings[name]

    def placement(self, name: str) -> ShardMap:
        self.partition_attr(name)
        return self._placements[name]

    def shard_map(self, name: str) -> ShardMap:
        """The table's current (epoch-stamped) placement map."""
        return self.placement(name)

    def shard_catalog(self) -> ShardCatalog:
        """Every table's map, as one serializable catalog."""
        return ShardCatalog(dict(self._placements))

    def attach_store(self, store: Any) -> None:
        """Persist placement through a :class:`DiskRelationStore`.

        From here on every epoch swing rewrites the store's
        ``shards.map`` catalog atomically and every rebalance step
        journals to ``shards.move`` -- the artifacts ``repro fsck``
        audits for torn swings and orphaned source data.
        """
        self._store = store
        self._persist_placements()

    def attach_stats(self, catalog: Any) -> None:
        """Supply ANALYZE statistics for distributed join sizing."""
        self._stats_catalog = catalog

    def attach_wal(self, log: Any) -> None:
        """Log epoch swings as durable ``EPOCH`` markers.

        Recovery replay skips them (only COMMIT records carry data),
        but the log then dates every placement generation against the
        commits around it -- the evidence fsck and post-mortems use.
        """
        self._wal = log

    def _persist_placements(self) -> None:
        if self._store is not None and self._placements:
            self._store.store_shards(self.shard_catalog())

    def _journal_move(self, move: ShardMove) -> None:
        """Write (or, once done, clear) the move's durable journal."""
        if self._store is None:
            return
        if move.done:
            self._store.drop_move()
        else:
            self._store.store_move(move.to_xset())

    def _check_epoch(self, name: str, epoch: Optional[Any],
                     bucket: Optional[int] = None) -> None:
        """Refuse a stale-epoch request before any work is admitted.

        ``epoch`` is ``None`` (unversioned caller, always current),
        an int, or a mapping of table name to the caller's cached
        epoch -- the shape a client holding several tables' maps
        sends.  A mismatch raises
        :class:`~repro.errors.ShardMovedError` carrying both epochs
        so the caller can refresh and retry immediately.
        """
        if epoch is None:
            return
        requested = epoch.get(name) if isinstance(epoch, dict) else epoch
        if requested is None:
            return
        placement = self._placements[name]
        if requested != placement.epoch:
            if _obs_enabled():
                _record_shard_event(
                    "stale_epoch", name, epoch=placement.epoch
                )
            raise ShardMovedError(
                name, requested, placement.epoch, bucket=bucket
            )

    def bucket_stats(self, name: str) -> Dict[int, int]:
        """Per-bucket row counts (insert-maintained upper bounds).

        Loads count exactly; inserts count rows *offered* to a bucket,
        so rows deduplicated by the merge-union make these upper
        bounds -- good enough for ordering, never for answers.
        """
        self.partition_attr(name)
        return dict(self._bucket_rows.get(name, {}))

    def _bucket_order(self, name: str) -> List[int]:
        """Gather order for this table's buckets.

        Plain index order by default (the tick sequence the fault
        suites pin); with ``stats_fanout`` enabled, descending row
        count with index as the deterministic tie-break.
        """
        indices = list(range(self._placements[name].bucket_count))
        if not self.stats_fanout:
            return indices
        counts = self._bucket_rows.get(name)
        if not counts:
            return indices
        return sorted(indices, key=lambda index: (-counts.get(index, 0), index))

    def status(self) -> Dict[str, Any]:
        """A structured snapshot: nodes, tables, placement, network."""
        return {
            "nodes": [
                {
                    "name": node.name,
                    "alive": node.alive,
                    "delay_s": node.delay_s,
                    "applied_lsn": node.applied_lsn,
                    "tables": {
                        table: {
                            "buckets": list(node.buckets_held(table)),
                            "rows": node.partition(table).cardinality(),
                        }
                        for table in sorted(self._partition_attrs)
                        if node.holds(table)
                    },
                }
                for node in self.nodes
            ],
            "tables": {
                table: {
                    "partition_attr": self._partition_attrs[table],
                    "replication_factor":
                        self._placements[table].replication_factor,
                    "epoch": self._placements[table].epoch,
                    "buckets": self._placements[table].bucket_count,
                }
                for table in sorted(self._partition_attrs)
            },
            "moves": [repr(move) for move in self._moves if not move.done],
            "write_log": {
                "lsn": self._log_lsn,
                "entries": len(self._write_log),
            },
            "network": {
                "messages": self.network.messages,
                "bytes_shipped": self.network.bytes_shipped,
                "replica_bytes": self.network.replica_bytes,
                "retries": self.network.retries,
                "failovers": self.network.failovers,
            },
        }

    # ------------------------------------------------------------------
    # The fault-aware read core
    # ------------------------------------------------------------------

    def _ship(self, node: Node, payload: XSet, replica: bool = False) -> None:
        """One shipment attempt; faults may lose or corrupt it."""
        data = dumps(payload)
        self._tick()
        received = self.faults.on_ship(node, data)
        if received != data:
            raise ShipmentCorruptedError(
                "checksum mismatch on shipment from %s" % node.name
            )
        self.network.ship_encoded(len(data), replica=replica)

    def _attempt_on_replicas(
        self,
        context: _QueryContext,
        table: str,
        bucket_index: int,
        action: Callable[[Node], Optional[Relation]],
        ring: Optional[Sequence[int]] = None,
        key: Optional[Any] = None,
    ) -> Optional[Relation]:
        """Run ``action`` on the first replica that can serve it.

        ``action`` reads buckets from the node it is handed (raising
        :class:`NodeDownError` if the node is unreachable) and returns
        the relation to ship back -- or ``None`` for "nothing to ship"
        (empty aggregation partials).  Lost/corrupted shipments retry
        on the same node with simulated backoff; a dead node fails
        over to the next replica; an exhausted ring raises
        :class:`ClusterUnavailableError`.

        With breakers armed, a replica behind an open breaker is
        skipped outright -- no attempt, no injector tick, no backoff
        -- so a known-dead node stops absorbing retry budget.  If
        *every* replica sits behind an open breaker the failure is
        :class:`~repro.errors.CircuitOpenError` (the nodes may be
        back; their breakers just have not probed yet), distinct from
        the all-replicas-dead :class:`ClusterUnavailableError`.
        """
        replicas = (
            self._placements[table].replicas(bucket_index)
            if ring is None
            else tuple(ring)
        )
        span = self.tracer.start(
            "%s[%d]" % (table, bucket_index), table=table, bucket=bucket_index
        )
        if context.trace is not None:
            context.trace.annotate(span)
        span.set(
            "ring",
            self._placements[table].ring(bucket_index)
            if ring is None
            else ">".join(str(index) for index in replicas),
        )
        retries = 0
        attempted = 0
        skipped_open = 0
        next_probe: Optional[Tuple[int, str]] = None
        try:
            for node_index in replicas:
                node = self.nodes[node_index]
                breaker = (
                    self.breakers.breaker(node.name)
                    if self.breakers is not None
                    else None
                )
                if breaker is not None and not breaker.allows(self.ops):
                    skipped_open += 1
                    wait = breaker.retry_after_ops(self.ops)
                    if next_probe is None or wait < next_probe[0]:
                        next_probe = (wait, node.name)
                    continue
                if attempted:
                    self.network.record_failover()
                    span.set("failovers", attempted)
                attempted += 1
                for attempt in range(self.max_attempts):
                    if attempt:
                        backoff = self.backoff_base_s * (2 ** (attempt - 1))
                        self.network.record_retry(backoff)
                        retries += 1
                        span.set("retries", retries)
                        self._charge(context, backoff, table, bucket_index, key)
                    started = time.perf_counter()
                    try:
                        self._tick()
                        if not node.alive:
                            raise NodeDownError("node %s is down" % node.name)
                        if node.delay_s:
                            self.network.record_delay(node.delay_s)
                            self._charge(
                                context, node.delay_s, table, bucket_index, key
                            )
                        result = action(node)
                        if result is not None:
                            self._ship(node, result.rows)
                            if self.shard_budget_rows is not None:
                                context.shard_budget(
                                    table, bucket_index,
                                    self.shard_budget_rows,
                                ).charge(
                                    "shard.%s[%d]" % (table, bucket_index),
                                    result.cardinality(),
                                )
                            if _obs_enabled():
                                _metrics.registry().counter(
                                    "repro_shard_reads_total",
                                    "Bucket reads served by shards.",
                                    ("table",),
                                ).inc_key((table,))
                        if breaker is not None:
                            breaker.record_success(self.ops)
                        span.rename(
                            "%s[%d] @ %s" % (table, bucket_index, node.name)
                        )
                        span.set("node", node.name)
                        span.set(
                            "rows", 0 if result is None else result.cardinality()
                        )
                        span.set("serve_s", time.perf_counter() - started)
                        return result
                    except NodeDownError:
                        if breaker is not None:
                            breaker.record_failure(self.ops)
                        break  # no point retrying an unreachable node
                    except ShipmentLostError:
                        continue  # includes corruption: retry with backoff
                else:
                    # Retries exhausted on a reachable-but-flaky node:
                    # that counts against its breaker too.
                    if breaker is not None:
                        breaker.record_failure(self.ops)
            if skipped_open == len(replicas) and next_probe is not None:
                span.rename("%s[%d] CIRCUIT_OPEN" % (table, bucket_index))
                span.set("rows", 0)
                span.set("serve_s", 0.0)
                span.set("circuit_open", True)
                raise CircuitOpenError(
                    table, bucket_index, next_probe[1],
                    retry_after_ops=next_probe[0],
                )
            span.rename("%s[%d] UNAVAILABLE" % (table, bucket_index))
            span.set("rows", 0)
            span.set("serve_s", 0.0)
            span.set("unavailable", True)
            raise ClusterUnavailableError(
                table,
                bucket_index,
                [self.nodes[index].name for index in replicas],
                reason="all %d replicas dead or unreachable" % len(replicas),
                key=key,
            )
        finally:
            self.tracer.end(span)

    def _charge(
        self,
        context: _QueryContext,
        seconds: float,
        table: str,
        bucket_index: int,
        key: Optional[Any],
    ) -> None:
        """Draw simulated seconds down the query's one deadline.

        Backoff sleeps and node delays both land here, so each
        simulated second is charged exactly once against the shared
        :class:`Deadline` -- exhaustion raises
        :class:`~repro.errors.DeadlineExceededError` naming the bucket
        being served.
        """
        context.charge(seconds)
        self.tracer.advance(seconds)
        if context.deadline is not None:
            context.deadline.charge(seconds)
            context.deadline.check(
                "cluster.%s[%d]" % (table, bucket_index)
            )

    def _query_deadline(self) -> Optional[Deadline]:
        """The deadline this query runs under: ambient, else default.

        A surrounding ``governed(...)`` scope's deadline is *shared*
        (the cluster draws down the same ledger as local kernel
        checkpoints); only without one does ``query_timeout_s`` build
        a fresh simulated-clock deadline.
        """
        governor = _gov_active()
        if governor is not None and governor.deadline is not None:
            return governor.deadline
        if self.query_timeout_s is not None:
            return Deadline.simulated(self.query_timeout_s)
        return None

    @contextmanager
    def _query(self, describe: str, kind: str,
               priority: int = PRIORITY_NORMAL,
               trace: Optional[TraceContext] = None,
               ) -> Iterator[_QueryContext]:
        """One query's root span plus context; metrics on completion.

        With admission control configured this is the cluster's front
        door: the slot is taken before the span opens (a shed query
        runs nothing and traces nothing) and released on the way out.

        ``trace`` is an inbound :class:`TraceContext` from the caller
        (a coordinating local plan, a parent service); without one the
        query starts a fresh trace with a counter-allocated id and
        ``priority`` in its baggage.  Either way the root span is
        stamped with the trace id (and a ``link_parent`` back-link
        when the causal parent lives on another tracer), child bucket
        spans inherit the context, and the query-latency histogram
        records the trace id as the bucket's exemplar -- the
        histogram-to-trace link.
        """
        if self.admission is not None:
            try:
                self.admission.try_admit(priority)
            except OverloadedError as error:
                if _obs_enabled():
                    _metrics.registry().counter(
                        "repro_gov_shed_total",
                        "Queries refused by admission control.",
                        ("reason",),
                    ).inc(reason=error.reason)
                raise
            if _obs_enabled():
                registry = _metrics.registry()
                registry.counter(
                    "repro_gov_admitted_total",
                    "Queries admitted past the front door.",
                ).inc()
                registry.gauge(
                    "repro_gov_in_flight",
                    "Admitted queries currently executing.",
                ).set(self.admission.in_flight)
        if trace is None:
            trace = TraceContext(
                "t-%06d" % next(self._trace_ids),
                baggage={"priority": priority},
            )
        started = time.perf_counter()
        try:
            with self.tracer.span(describe, kind=kind) as span:
                trace.annotate(span)
                for bag_key in sorted(trace.baggage):
                    span.set("bag_%s" % bag_key, trace.baggage[bag_key])
                context = _QueryContext(
                    describe, span, deadline=self._query_deadline(),
                    trace=trace.child_of(span),
                )
                self._last_context = context
                yield context
            if _obs_enabled():
                _metrics.registry().histogram(
                    "repro_cluster_query_seconds",
                    "Distributed query wall time.", ("query",),
                ).observe(
                    time.perf_counter() - started,
                    exemplar=trace.trace_id,
                    query=kind,
                )
        finally:
            if self.admission is not None:
                self.admission.release()
                if _obs_enabled():
                    _metrics.registry().gauge(
                        "repro_gov_in_flight",
                        "Admitted queries currently executing.",
                    ).set(self.admission.in_flight)

    @property
    def last_query_span(self) -> Optional[Span]:
        """Root span of the most recent query (None before the first)."""
        return None if self._last_context is None else self._last_context.span

    @property
    def last_query_events(self) -> List[Tuple[str, int, float]]:
        """Per-bucket trace of the most recent query (for profiling).

        A derived view over the query's span tree: one
        ``(describe, rows, serve_seconds)`` tuple per bucket access.
        Empty for a cluster that has never run a query.
        """
        span = self.last_query_span
        if span is None:
            return []
        return [
            (
                child.name,
                int(child.attrs.get("rows", 0)),
                float(child.attrs.get("serve_s", child.duration_s)),
            )
            for child in span.children
        ]

    @property
    def last_query_describe(self) -> str:
        return "" if self._last_context is None else self._last_context.describe

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _live_replica_count(self, name: str, bucket_index: int) -> int:
        placement = self._placements[name]
        return sum(
            1
            for index in placement.replicas(bucket_index)
            if self.nodes[index].alive
        )

    def _check_quorum(
        self,
        name: str,
        bucket_index: int,
        read_quorum: Optional[int],
        allow_partial: bool,
    ) -> bool:
        """True when this bucket read proceeds below its quorum.

        Without ``allow_partial`` a missed quorum is a hard, typed
        failure; with it the read degrades -- served by whatever live
        replica remains -- and the *caller* marks the answer
        ``quorum_downgraded`` so consumers can refuse it.
        """
        if read_quorum is None:
            return False
        live = self._live_replica_count(name, bucket_index)
        if live >= read_quorum:
            return False
        if not allow_partial:
            raise ClusterUnavailableError(
                name,
                bucket_index,
                reason="read quorum not met: %d live replicas < %d required"
                % (live, read_quorum),
            )
        if _obs_enabled():
            _metrics.registry().counter(
                "repro_gov_quorum_downgrade_total",
                "Reads served below their requested quorum.",
            ).inc()
        return True

    def _finish_partial(
        self,
        context: _QueryContext,
        gathered: Relation,
        missing: List[MissingBucket],
        downgraded: bool,
    ) -> Result:
        """Wrap a degraded-mode answer, marking span and metrics."""
        context.span.set("partial", bool(missing))
        context.span.set("missing_buckets", len(missing))
        context.span.set("quorum_downgraded", downgraded)
        if missing and _obs_enabled():
            _metrics.registry().counter(
                "repro_gov_partial_total",
                "Queries answered with explicitly-partial results.",
            ).inc()
        return Result(gathered, missing, quorum_downgraded=downgraded)

    def scan(
        self,
        name: str,
        allow_partial: bool = False,
        read_quorum: Optional[int] = None,
        priority: int = PRIORITY_NORMAL,
        trace: Optional[TraceContext] = None,
        epoch: Optional[Any] = None,
    ) -> Any:
        """Gather every bucket to the coordinator (ships all rows).

        Default mode returns a bare :class:`Relation` and fails the
        whole query on any unreachable bucket.  ``allow_partial=True``
        degrades instead: unreachable buckets land in the answer's
        missing-bucket manifest and the return type becomes
        :class:`repro.gov.Result` (call ``require_complete()`` to get
        the strict behavior back).  ``read_quorum`` demands that many
        live replicas per bucket -- short of it, strict mode fails and
        partial mode serves the read but marks it
        ``quorum_downgraded``.
        """
        heading = self.heading(name)
        self._check_epoch(name, epoch)
        with self._query(
            "scan(%s)" % name, "scan", priority=priority, trace=trace
        ) as context:
            gathered = Relation(heading, xset([]))
            missing: List[MissingBucket] = []
            downgraded = False
            for bucket_index in self._bucket_order(name):
                downgraded |= self._check_quorum(
                    name, bucket_index, read_quorum, allow_partial
                )
                try:
                    part = self._attempt_on_replicas(
                        context, name, bucket_index,
                        lambda node, b=bucket_index: node.bucket(name, b),
                    )
                except (ClusterUnavailableError, CircuitOpenError) as error:
                    if not allow_partial:
                        raise
                    missing.append(MissingBucket(
                        name, bucket_index,
                        getattr(error, "reason", str(error)),
                    ))
                    continue
                assert part is not None
                gathered = local_union(gathered, part)
            if not allow_partial:
                return gathered
            return self._finish_partial(context, gathered, missing, downgraded)

    def select_eq(
        self,
        name: str,
        conditions: Mapping[str, Any],
        allow_partial: bool = False,
        read_quorum: Optional[int] = None,
        priority: int = PRIORITY_NORMAL,
        trace: Optional[TraceContext] = None,
        epoch: Optional[Any] = None,
    ) -> Any:
        """Distributed selection: routed when the key is covered.

        If the partition attribute appears in the conditions, exactly
        one bucket is consulted (on its first live replica); otherwise
        the selection broadcasts and each bucket ships only its
        matching rows.  ``allow_partial``/``read_quorum`` degrade
        exactly as on :meth:`scan` -- a routed read whose single
        bucket is unreachable degrades to an empty, explicitly-partial
        :class:`repro.gov.Result`.
        """
        heading = self.heading(name)
        heading.require(conditions)
        attr = self.partition_attr(name)
        self._check_epoch(name, epoch)
        with self._query(
            "select_eq(%s, %s)" % (name, dict(conditions)), "select_eq",
            priority=priority, trace=trace,
        ) as context:
            if attr in conditions:
                context.span.set("routing", "routed")
                bucket_index = self._placements[name].bucket_for(
                    conditions[attr]
                )
                downgraded = self._check_quorum(
                    name, bucket_index, read_quorum, allow_partial
                )
                try:
                    result = self._attempt_on_replicas(
                        context, name, bucket_index,
                        lambda node: local_select_eq(
                            node.bucket(name, bucket_index), conditions
                        ),
                        key=xrecord({attr: conditions[attr]}),
                    )
                except (ClusterUnavailableError, CircuitOpenError) as error:
                    if not allow_partial:
                        raise
                    return self._finish_partial(
                        context,
                        Relation(heading, xset([])),
                        [MissingBucket(
                            name, bucket_index,
                            getattr(error, "reason", str(error)),
                        )],
                        downgraded,
                    )
                assert result is not None
                if not allow_partial:
                    return result
                return self._finish_partial(context, result, [], downgraded)
            context.span.set("routing", "broadcast")
            gathered = Relation(heading, xset([]))
            missing: List[MissingBucket] = []
            downgraded = False
            for bucket_index in self._bucket_order(name):
                downgraded |= self._check_quorum(
                    name, bucket_index, read_quorum, allow_partial
                )
                try:
                    local = self._attempt_on_replicas(
                        context, name, bucket_index,
                        lambda node, b=bucket_index: local_select_eq(
                            node.bucket(name, b), conditions
                        ),
                    )
                except (ClusterUnavailableError, CircuitOpenError) as error:
                    if not allow_partial:
                        raise
                    missing.append(MissingBucket(
                        name, bucket_index,
                        getattr(error, "reason", str(error)),
                    ))
                    continue
                assert local is not None
                gathered = local_union(gathered, local)
            if not allow_partial:
                return gathered
            return self._finish_partial(context, gathered, missing, downgraded)

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------

    def join(self, left: str, right: str,
             priority: int = PRIORITY_NORMAL,
             trace: Optional[TraceContext] = None,
             epoch: Optional[Any] = None) -> Relation:
        """Distributed natural join.

        Co-partitioned (both tables partitioned on a shared join
        attribute with identical placement -- same bucket count *and*
        same owner rings, so rebalanced tables requalify only once
        their maps agree again): each bucket joins locally on a shared
        replica and ships only results.  Otherwise the right table is
        re-shuffled on the left's partition attribute first -- every
        shipped row is priced.  (:meth:`execute` layers the
        broadcast-vs-shuffle cost choice and filter pushdown on top of
        this primitive.)
        """
        left_heading = self.heading(left)
        right_heading = self.heading(right)
        shared = left_heading.common(right_heading)
        if not shared:
            raise SchemaError(
                "distributed join of %r and %r has no shared attribute"
                % (left, right)
            )
        left_attr = self.partition_attr(left)
        right_attr = self.partition_attr(right)
        left_map = self._placements[left]
        co_partitioned = (
            left_attr == right_attr
            and left_attr in shared
            and left_map.same_placement(self._placements[right])
        )
        self._check_epoch(left, epoch)
        self._check_epoch(right, epoch)
        with self._query(
            "join(%s, %s)" % (left, right), "join", priority=priority,
            trace=trace,
        ) as context:
            context.span.set(
                "strategy", "co_partitioned" if co_partitioned else "shuffle"
            )
            if co_partitioned:
                partials = []
                for bucket_index in range(left_map.bucket_count):
                    local = self._attempt_on_replicas(
                        context, left, bucket_index,
                        lambda node, b=bucket_index: local_join(
                            node.bucket(left, b), node.bucket(right, b)
                        ),
                    )
                    assert local is not None
                    partials.append(local)
                return self._gathered(partials)
            if left_attr not in shared:
                raise SchemaError(
                    "cannot shuffle: left partition attribute %r is not a "
                    "join attribute" % (left_attr,)
                )
            shuffled = self._shuffle(context, right, left_attr, left_map)
            partials = []
            for bucket_index in range(left_map.bucket_count):
                right_part = shuffled[bucket_index]
                local = self._attempt_on_replicas(
                    context, left, bucket_index,
                    lambda node, b=bucket_index, r=right_part: local_join(
                        node.bucket(left, b), r
                    ),
                )
                assert local is not None
                partials.append(local)
            return self._gathered(partials)

    def _shuffle(
        self,
        context: _QueryContext,
        name: str,
        attr: str,
        target_map: ShardMap,
        pipeline: Optional[ShardPipeline] = None,
    ) -> List[Relation]:
        """Repartition a table by a new attribute, shipping every row.

        With a ``pipeline`` the pushed filters/projection run *inside*
        each source bucket before its rows are shipped -- selection
        and projection below the shuffle, so the wire carries only
        surviving columns of surviving rows.
        """
        heading = self.heading(name)
        heading.require([attr])
        out_heading = (
            heading if pipeline is None or pipeline.attrs is None
            else Heading(pipeline.attrs)
        )
        buckets: List[List] = [[] for _ in range(target_map.bucket_count)]
        for bucket_index in self._bucket_order(name):
            part = self._attempt_on_replicas(
                context, name, bucket_index,
                lambda node, b=bucket_index: (
                    node.bucket(name, b) if pipeline is None
                    else pipeline.apply(node.bucket(name, b))
                ),
            )
            assert part is not None  # rows left their home node (priced)
            for row, _ in part.rows.pairs():
                (value,) = row.elements_at(attr)
                buckets[target_map.bucket_for(value)].append(row)
        return [Relation(out_heading, xset(bucket)) for bucket in buckets]

    def _gathered(self, partials: Sequence[Relation]) -> Relation:
        result: Optional[Relation] = None
        for partial in partials:
            result = partial if result is None else local_union(result, partial)
        assert result is not None
        return result

    # ------------------------------------------------------------------
    # The shard-local coordinator
    # ------------------------------------------------------------------

    def enable_result_cache(self, cache=None, capacity: int = 256):
        """Attach (and return) a coordinator-side result cache.

        Entries are keyed by per-table *write generations* (bumped on
        every load and insert), so results can never leak across a
        data change.  Epoch swings (bucket moves, splits, merges)
        invalidate the moved table's entries *without* bumping its
        generation -- the rows are placement-stable across a move, so
        this is targeted reclamation, never a flush of other tables.
        """
        if cache is None:
            from repro.relational.ivm.cache import QueryResultCache

            cache = QueryResultCache(capacity=capacity, name="cluster")
        self.result_cache = cache
        return cache

    def disable_result_cache(self) -> None:
        self.result_cache = None

    def table_generation(self, name: str) -> int:
        """How many write batches ``name`` has absorbed (0: none)."""
        return self._table_generations.get(name, 0)

    def _bump_generation(self, name: str) -> None:
        self._table_generations[name] = (
            self._table_generations.get(name, 0) + 1
        )
        if self.result_cache is not None:
            self.result_cache.invalidate_tables((name,))

    def execute(
        self,
        plan: Plan,
        priority: int = PRIORITY_NORMAL,
        trace: Optional[TraceContext] = None,
        epoch: Optional[Any] = None,
    ) -> Relation:
        """Execute a local plan tree shard-locally.

        The plan's ``SelectEq``/``SelectPred``/``Project`` chains are
        extracted into per-table :class:`ShardPipeline` pushdowns and
        run *inside* each bucket before rows ship -- selection and
        projection below the shuffle.  A join between two scans picks
        its strategy by estimated shipped rows: co-partitioned when
        the maps agree, else broadcast-small vs shuffle-on-key sized
        from the insert-maintained per-bucket counts and (when
        attached) the ANALYZE statistics catalog.

        ``epoch`` carries the caller's cached map generation (an int,
        or a ``{table: epoch}`` mapping); a stale value is refused
        with :class:`~repro.errors.ShardMovedError` before any bucket
        is read.
        """
        pipeline = shard_pipeline(plan)
        if pipeline is None:
            raise SchemaError(
                "plan %s is not shard-executable (only SelectEq/"
                "SelectPred/Project chains over Scan or Join push down)"
                % plan.describe()
            )
        if self.result_cache is not None:
            from repro.relational.ivm.cache import (
                plan_cache_key,
                scan_tables,
            )

            plan_key = plan_cache_key(plan)
            if plan_key is not None:
                tables = scan_tables(plan)
                # Epoch fencing comes before the cache: a caller
                # holding a stale map must get ShardMovedError even
                # when the bytes it asked for are sitting in memory.
                for table in tables:
                    if table in self._placements:
                        self._check_epoch(table, epoch)
                fingerprint = tuple(
                    (table, self._table_generations.get(table, 0))
                    for table in tables
                )
                hit = self.result_cache.lookup(plan_key, fingerprint)
                if hit is not None:
                    return hit
                result = self._execute_pipeline(
                    pipeline, priority, trace, epoch
                )
                self.result_cache.store(
                    plan_key, fingerprint, tables, result
                )
                return result
        return self._execute_pipeline(pipeline, priority, trace, epoch)

    def _execute_pipeline(
        self,
        pipeline: ShardPipeline,
        priority: int,
        trace: Optional[TraceContext],
        epoch: Optional[Any],
    ) -> Relation:
        if isinstance(pipeline.source, JoinPlan):
            return self._execute_join(pipeline, priority, trace, epoch)
        return self._execute_scan(pipeline, priority, trace, epoch)

    def _pipeline_heading(self, name: str,
                          pipeline: ShardPipeline) -> Heading:
        heading = self.heading(name)
        heading.require(pipeline.conditions)
        if pipeline.attrs is None:
            return heading
        heading.require(pipeline.attrs)
        return Heading(pipeline.attrs)

    def _execute_scan(
        self,
        pipeline: ShardPipeline,
        priority: int,
        trace: Optional[TraceContext],
        epoch: Optional[Any],
    ) -> Relation:
        """One table's pipeline: routed when the key is pinned."""
        name = pipeline.source.name
        out_heading = self._pipeline_heading(name, pipeline)
        placement = self._placements[name]
        self._check_epoch(name, epoch)
        with self._query(
            "execute(%s %s)" % (name, pipeline.describe()), "execute",
            priority=priority, trace=trace,
        ) as context:
            context.span.set("epoch", placement.epoch)
            if placement.attr in pipeline.conditions:
                context.span.set("routing", "routed")
                bucket_index = placement.bucket_for(
                    pipeline.conditions[placement.attr]
                )
                result = self._attempt_on_replicas(
                    context, name, bucket_index,
                    lambda node: pipeline.apply(
                        node.bucket(name, bucket_index)
                    ),
                    key=xrecord({
                        placement.attr: pipeline.conditions[placement.attr]
                    }),
                )
                assert result is not None
                return result
            context.span.set("routing", "broadcast")
            gathered = Relation(out_heading, xset([]))
            for bucket_index in self._bucket_order(name):
                part = self._attempt_on_replicas(
                    context, name, bucket_index,
                    lambda node, b=bucket_index: pipeline.apply(
                        node.bucket(name, b)
                    ),
                )
                assert part is not None
                gathered = local_union(gathered, part)
            return gathered

    def _estimate_side(self, name: str, pipeline: ShardPipeline) -> float:
        """Estimated post-pushdown rows one side ships."""
        base = float(sum(self._bucket_rows.get(name, {}).values()))
        stats = None
        if self._stats_catalog is not None:
            stats = self._stats_catalog.get(name, allow_stale=True)
        return estimate_shard_rows(
            base, pipeline.conditions, len(pipeline.predicates), stats
        )

    def _execute_join(
        self,
        outer: ShardPipeline,
        priority: int,
        trace: Optional[TraceContext],
        epoch: Optional[Any],
    ) -> Relation:
        """Distributed join with pushdown and a costed strategy choice.

        Strategies, cheapest-shipping first from the estimates:

        * ``co_partitioned`` -- maps agree and the partition attribute
          survives both pipelines: bucket-local joins, zero movement.
        * ``broadcast`` -- the smaller (estimated) side gathers once,
          then ships to every bucket of the larger side.
        * ``shuffle`` -- the right side re-keys on the left's
          partition attribute and moves once.

        The chosen strategy lands on the root span and the
        ``repro_shard_join_total`` counter, so plans are auditable
        from traces alone.
        """
        source = outer.source
        left_pipe = shard_pipeline(source.left)
        right_pipe = shard_pipeline(source.right)
        if (
            left_pipe is None or right_pipe is None
            or not isinstance(left_pipe.source, Scan)
            or not isinstance(right_pipe.source, Scan)
        ):
            raise SchemaError(
                "distributed execute supports joins of two pushdown "
                "pipelines over scans; got %s" % source.describe()
            )
        left, right = left_pipe.source.name, right_pipe.source.name
        left_heading = self._pipeline_heading(left, left_pipe)
        right_heading = self._pipeline_heading(right, right_pipe)
        shared = left_heading.common(right_heading)
        if not shared:
            raise SchemaError(
                "distributed join of %r and %r has no shared attribute"
                % (left, right)
            )
        self._check_epoch(left, epoch)
        self._check_epoch(right, epoch)
        left_map = self._placements[left]
        right_map = self._placements[right]
        co_partitioned = (
            left_map.attr == right_map.attr
            and left_map.attr in shared
            and left_map.same_placement(right_map)
        )
        left_rows = self._estimate_side(left, left_pipe)
        right_rows = self._estimate_side(right, right_pipe)
        shuffle_possible = left_map.attr in shared
        if co_partitioned:
            strategy = "co_partitioned"
        else:
            small_rows = min(left_rows, right_rows)
            big_buckets = (
                right_map.bucket_count
                if left_rows <= right_rows
                else left_map.bucket_count
            )
            broadcast = broadcast_join_cost(small_rows, big_buckets)
            shuffle = shuffle_join_cost(right_rows)
            strategy = (
                "shuffle"
                if shuffle_possible and shuffle < broadcast
                else "broadcast"
            )
        with self._query(
            "execute(%s %s |x| %s %s)" % (
                left, left_pipe.describe(), right, right_pipe.describe()
            ),
            "execute_join", priority=priority, trace=trace,
        ) as context:
            context.span.set("strategy", strategy)
            context.span.set("est_left_rows", int(left_rows))
            context.span.set("est_right_rows", int(right_rows))
            if _obs_enabled():
                _metrics.registry().counter(
                    "repro_shard_join_total",
                    "Distributed joins by chosen strategy.", ("strategy",),
                ).inc_key((strategy,))
            if strategy == "co_partitioned":
                joined = self._join_co_partitioned(
                    context, left, right, left_pipe, right_pipe, left_map
                )
            elif strategy == "shuffle":
                joined = self._join_shuffle(
                    context, left, right, left_pipe, right_pipe, left_map
                )
            else:
                joined = self._join_broadcast(
                    context, left, right, left_pipe, right_pipe,
                    small_left=left_rows <= right_rows,
                )
            return outer.apply(joined)

    def _join_co_partitioned(
        self, context, left, right, left_pipe, right_pipe, left_map
    ) -> Relation:
        partials = []
        for bucket_index in range(left_map.bucket_count):
            local = self._attempt_on_replicas(
                context, left, bucket_index,
                lambda node, b=bucket_index: local_join(
                    left_pipe.apply(node.bucket(left, b)),
                    right_pipe.apply(node.bucket(right, b)),
                ),
            )
            assert local is not None
            partials.append(local)
        return self._gathered(partials)

    def _join_shuffle(
        self, context, left, right, left_pipe, right_pipe, left_map
    ) -> Relation:
        shuffled = self._shuffle(
            context, right, left_map.attr, left_map, pipeline=right_pipe
        )
        partials = []
        for bucket_index in range(left_map.bucket_count):
            right_part = shuffled[bucket_index]
            local = self._attempt_on_replicas(
                context, left, bucket_index,
                lambda node, b=bucket_index, r=right_part: local_join(
                    left_pipe.apply(node.bucket(left, b)), r
                ),
            )
            assert local is not None
            partials.append(local)
        return self._gathered(partials)

    def _join_broadcast(
        self, context, left, right, left_pipe, right_pipe, small_left
    ) -> Relation:
        """Gather the small side once, ship it to every big bucket."""
        if small_left:
            small_name, small_pipe = left, left_pipe
            big_name, big_pipe = right, right_pipe
        else:
            small_name, small_pipe = right, right_pipe
            big_name, big_pipe = left, left_pipe
        small = Relation(
            self._pipeline_heading(small_name, small_pipe), xset([])
        )
        for bucket_index in self._bucket_order(small_name):
            part = self._attempt_on_replicas(
                context, small_name, bucket_index,
                lambda node, b=bucket_index: small_pipe.apply(
                    node.bucket(small_name, b)
                ),
            )
            assert part is not None
            small = local_union(small, part)
        partials = []
        big_map = self._placements[big_name]
        for bucket_index in range(big_map.bucket_count):
            # The small side ships out to the serving node (priced as
            # an ordinary message), which joins against its local
            # filtered bucket and ships only results back.
            self.network.ship(small.rows)
            local = self._attempt_on_replicas(
                context, big_name, bucket_index,
                lambda node, b=bucket_index: local_join(
                    big_pipe.apply(node.bucket(big_name, b)), small
                ),
            )
            assert local is not None
            partials.append(local)
        return self._gathered(partials)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    _COMBINABLE = {"count", "sum", "min", "max"}

    def aggregate(
        self,
        name: str,
        group_attrs: Sequence[str],
        aggregations: Mapping[str, Tuple[str, str]],
        priority: int = PRIORITY_NORMAL,
        trace: Optional[TraceContext] = None,
        epoch: Optional[Any] = None,
    ) -> Relation:
        """Distributed group-by with partial-aggregate pushdown.

        Buckets compute local aggregates on their first live replica
        and ship the (small) summaries; the coordinator combines:
        counts and sums add, mins and maxes fold.  ``avg`` is
        rewritten as sum+count automatically.
        """
        rewritten: Dict[str, Tuple[str, str]] = {}
        averages: Dict[str, Tuple[str, str]] = {}
        for out_name, (fn_name, source) in aggregations.items():
            if fn_name == "avg":
                averages[out_name] = ("__sum_" + out_name, "__cnt_" + out_name)
                rewritten["__sum_" + out_name] = ("sum", source)
                rewritten["__cnt_" + out_name] = ("count", source)
            elif fn_name in self._COMBINABLE:
                rewritten[out_name] = (fn_name, source)
            else:
                raise SchemaError(
                    "aggregate %r is not distributable" % (fn_name,)
                )
        self._check_epoch(name, epoch)
        with self._query(
            "aggregate(%s, %s)" % (name, list(group_attrs)), "aggregate",
            priority=priority, trace=trace,
        ) as context:
            partial_rows: Dict[tuple, Dict[str, Any]] = {}
            for bucket_index in range(self._placements[name].bucket_count):

                def partial(node, b=bucket_index):
                    partition = node.bucket(name, b)
                    if not partition:
                        return None  # nothing to summarize, nothing ships
                    return local_aggregate(partition, group_attrs, rewritten)

                local = self._attempt_on_replicas(
                    context, name, bucket_index, partial
                )
                if local is None:
                    continue
                for row in local.iter_dicts():
                    key = tuple(row[attr] for attr in group_attrs)
                    merged = partial_rows.get(key)
                    if merged is None:
                        partial_rows[key] = dict(row)
                        continue
                    for out_name, (fn_name, _) in rewritten.items():
                        if fn_name in ("count", "sum"):
                            merged[out_name] += row[out_name]
                        elif fn_name == "min":
                            merged[out_name] = min(
                                merged[out_name], row[out_name]
                            )
                        elif fn_name == "max":
                            merged[out_name] = max(
                                merged[out_name], row[out_name]
                            )
        final_rows = []
        for merged in partial_rows.values():
            row = {attr: merged[attr] for attr in group_attrs}
            for out_name in aggregations:
                if out_name in averages:
                    sum_name, count_name = averages[out_name]
                    row[out_name] = merged[sum_name] / merged[count_name]
                else:
                    row[out_name] = merged[out_name]
            final_rows.append(row)
        heading = list(group_attrs) + list(aggregations)
        return Relation.from_dicts(heading, final_rows)

    # ------------------------------------------------------------------
    # Online rebalancing
    # ------------------------------------------------------------------

    @property
    def moves(self) -> List[ShardMove]:
        """Every move begun on this cluster, finished or not."""
        return list(self._moves)

    def _relation(self, table: str, rows: Iterable[Any]) -> Relation:
        """Wrap raw row values back into the table's relation type."""
        return Relation(self._headings[table], xset(list(rows)))

    def _install_map(self, table: str, new_map: ShardMap,
                     cause: str) -> None:
        """Atomically swing ``table`` to ``new_map``.

        Validation, the in-memory swap, and the durable catalog
        rewrite happen with no tick in between: a crash before this
        call leaves the old epoch fully in charge, a crash after
        leaves the new one -- never both.
        """
        new_map.validate()
        self._placements[table] = new_map
        self._persist_placements()
        if self._wal is not None:
            self._wal.epoch(table, new_map.epoch)
        if self.result_cache is not None:
            # Targeted, not a flush: a moved bucket leaves the rows
            # untouched, but re-caching under the new epoch keeps the
            # cache honest about what it would recompute today.
            self.result_cache.invalidate_tables((table,))
        if _obs_enabled():
            _record_shard_event(cause, table, epoch=new_map.epoch)

    def _replay_bucket(self, name: str, bucket: int,
                       upto_lsn: int) -> Relation:
        """Ground truth for one bucket: fold the write log to a LSN.

        ``store`` entries replace, ``merge`` entries union -- the same
        semantics replicas apply, minus any node having to be alive.
        This is the arbiter the verify step consults when donor and
        recipient disagree.
        """
        truth = Relation(self._headings[name], xset([]))
        for lsn, table, entry_bucket, kind, rows in self._write_log:
            if lsn > upto_lsn:
                break
            if table != name or entry_bucket != bucket:
                continue
            truth = rows if kind == "store" else local_union(truth, rows)
        return truth

    def begin_move(self, table: str, bucket: int, recipient: int,
                   donor: Optional[int] = None,
                   chunk_rows: int = 64) -> ShardMove:
        """Start moving one bucket replica to ``recipient``.

        ``donor`` defaults to the bucket's current primary.  The move
        is a resumable state machine driven by :meth:`step_rebalance`
        (or :meth:`rebalance` to run it to completion); beginning it
        only records intent and journals it durably -- no data moves
        until the first step.
        """
        placement = self.placement(table)
        if not placement.has_bucket(bucket):
            raise SchemaError(
                "table %r has no bucket %d" % (table, bucket)
            )
        ring = placement.replicas(bucket)
        if donor is None:
            donor = ring[0]
        if donor not in ring:
            raise SchemaError(
                "node %d does not hold %s[%d] (ring %s)"
                % (donor, table, bucket, placement.ring(bucket))
            )
        if recipient in ring:
            raise SchemaError(
                "node %d already holds %s[%d] (ring %s)"
                % (recipient, table, bucket, placement.ring(bucket))
            )
        if not 0 <= recipient < len(self.nodes):
            raise SchemaError(
                "no node %d in a %d-node cluster"
                % (recipient, len(self.nodes))
            )
        move = ShardMove(table, bucket, donor, recipient,
                         chunk_rows=chunk_rows)
        self._moves.append(move)
        self._journal_move(move)
        return move

    def step_rebalance(self) -> bool:
        """Advance the oldest unfinished move by one step.

        Each step ticks the shared fault clock exactly once, so a
        :class:`FaultPlan` schedule lands crashes at deterministic
        points *inside* the state machine.  Returns ``True`` when the
        step made progress, ``False`` when there was nothing to do or
        the move is stalled on a dead endpoint (the caller decides
        whether to revive or wait).
        """
        for move in self._moves:
            if not move.done:
                return move.step(self)
        return False

    def rebalance(self, max_steps: int = 10000) -> None:
        """Drive every pending move to completion.

        Endpoints that die mid-move are revived (rebuild-then-serve)
        and the move resumes where it stalled.  Raises
        :class:`~repro.errors.ClusterUnavailableError` if the budget
        of steps is exhausted -- the signal that a fault plan keeps
        re-killing faster than recovery can make progress.
        """
        for _ in range(max_steps):
            pending = [move for move in self._moves if not move.done]
            if not pending:
                return
            if not self.step_rebalance():
                move = pending[0]
                for index in (move.donor, move.recipient):
                    node = self.nodes[index]
                    if not node.alive:
                        self.on_revive(node)
        if any(not move.done for move in self._moves):
            raise ClusterUnavailableError(
                "rebalance did not converge in %d steps" % max_steps
            )

    def split_table(self, name: str) -> ShardMap:
        """Double ``name``'s bucket count in place (one epoch swing).

        Atomic from the fault clock's point of view: no tick happens
        between reading the old buckets and installing the new map,
        so a seeded crash lands either entirely before (old epoch,
        old buckets) or entirely after (new epoch, new buckets).  Row
        data is re-hashed locally on each ring node; the write log
        gains full-bucket snapshot entries under the new numbering so
        revive-time rebuilds and fsck replay agree with the split.
        """
        placement = self.placement(name)
        new_map = placement.split()
        return self._rehash_into(name, placement, new_map, "split")

    def merge_table(self, name: str) -> ShardMap:
        """Halve ``name``'s bucket count (inverse of a split)."""
        placement = self.placement(name)
        new_map = placement.merged()
        return self._rehash_into(name, placement, new_map, "merge")

    def _rehash_into(self, name: str, old_map: ShardMap,
                     new_map: ShardMap, cause: str) -> ShardMap:
        """Re-bucket a whole table under a new map, atomically.

        The new map is installed *before* the snapshot log entries are
        appended so that revive-time rebuilds (which consult the
        installed map's ``has_bucket``) accept the new numbering;
        entries logged under the old numbering are superseded and
        skipped by the same guard.  Old high-numbered bucket copies
        are dropped from their holders -- a crash between install and
        the drops leaves orphans that ``repro fsck`` reports.
        """
        attr = self._partition_attrs[name]
        heading = self._headings[name]
        buckets: Dict[int, List[Any]] = {
            index: [] for index in range(new_map.bucket_count)
        }
        rows_moved = 0
        for old_bucket in range(old_map.bucket_count):
            current = self._replay_bucket(name, old_bucket, self._log_lsn)
            for row, _ in current.rows.pairs():
                (value,) = row.elements_at(attr)
                buckets[new_map.bucket_for(value)].append(row)
                rows_moved += 1
        self._install_map(name, new_map, cause)
        counts: Dict[int, int] = {}
        for bucket_index in range(new_map.bucket_count):
            part = Relation(heading, xset(buckets[bucket_index]))
            counts[bucket_index] = part.cardinality()
            lsn = self._log_append(name, bucket_index, "store", part)
            for node_index in new_map.replicas(bucket_index):
                node = self.nodes[node_index]
                if not node.alive:
                    continue  # missed snapshot; rebuilt on revive
                node.store(name, part, bucket=bucket_index)
                node.applied_lsn = max(node.applied_lsn, lsn)
        self._bucket_rows[name] = counts
        for old_bucket in range(new_map.bucket_count,
                                old_map.bucket_count):
            for node_index in old_map.replicas(old_bucket):
                self.nodes[node_index].drop_bucket(name, old_bucket)
        if _obs_enabled():
            _record_shard_event(
                cause, name, rows=rows_moved, epoch=new_map.epoch
            )
        return new_map

    def __repr__(self) -> str:
        live = sum(1 for node in self.nodes if node.alive)
        return "Cluster(%d nodes, %d live, rf=%d, tables=%s)" % (
            len(self.nodes), live, self.replication_factor,
            sorted(self._partition_attrs),
        )
