"""Many physical representations, one mathematical identity.

The XSP programme's sharpest systems claim (paper §12, refs [3]/[4])
is that *data representations* -- row layouts, column layouts,
whatever the hardware likes -- all have a mathematical identity as
extended sets, so the system can change representation freely and
prove it changed nothing.  This module demonstrates the claim
executably:

* :class:`RowRepresentation` -- tuples in row-major order (the record
  layout);
* :class:`ColumnRepresentation` -- one array per attribute (the
  column layout);
* both implement the same operations natively in their own layout
  (selection walks rows; column projection slices one array), and

* both *canonicalize* to the same :class:`~repro.xst.xset.XSet` --
  ``representation.canonical()`` -- so equality of representations is
  set equality, and :func:`same_identity` decides "are these two
  physical layouts the same data?" by content digest.

The benchmark suite measures the layouts' complementary strengths
(row selection vs column projection); the tests assert that every
operation result, canonicalized, is identical across layouts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.columnar import ColumnarRelation
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.builders import xrecord, xset
from repro.xst.serialization import digest
from repro.xst.xset import XSet

__all__ = [
    "RowRepresentation",
    "ColumnRepresentation",
    "same_identity",
]


class RowRepresentation:
    """Row-major physical layout: a list of value tuples."""

    def __init__(self, names: Sequence[str], rows: Sequence[Sequence[Any]]):
        self._heading = names if isinstance(names, Heading) else Heading(names)
        width = len(self._heading)
        self._rows: List[Tuple[Any, ...]] = []
        for row in rows:
            values = tuple(row)
            if len(values) != width:
                raise SchemaError(
                    "row %r has %d values for %d attributes"
                    % (values, len(values), width)
                )
            self._rows.append(values)

    @property
    def heading(self) -> Heading:
        return self._heading

    def __len__(self) -> int:
        return len(self._rows)

    # -- native operations (row-at-a-time over the row layout) -----------

    def select(self, attr: str, value: Any) -> "RowRepresentation":
        position = self._heading.names.index(
            self._heading.require([attr])[0]
        )
        kept = [row for row in self._rows if row[position] == value]
        return RowRepresentation(self._heading, kept)

    def project(self, attrs: Sequence[str]) -> "RowRepresentation":
        wanted = self._heading.require(attrs)
        positions = [self._heading.names.index(attr) for attr in wanted]
        seen = set()
        kept = []
        for row in self._rows:
            projected = tuple(row[position] for position in positions)
            if projected not in seen:
                seen.add(projected)
                kept.append(projected)
        return RowRepresentation(Heading(wanted), kept)

    # -- identity -----------------------------------------------------------

    def canonical(self) -> XSet:
        """The mathematical identity: the set of attribute-scoped rows."""
        return xset(
            xrecord(dict(zip(self._heading.names, row))) for row in self._rows
        )

    def to_relation(self) -> Relation:
        return Relation(self._heading, self.canonical())

    @classmethod
    def from_relation(cls, relation: Relation) -> "RowRepresentation":
        return cls(relation.heading, relation.to_rows())


class ColumnRepresentation:
    """Column-major physical layout, backed by the sorted-run kernel.

    Storage and the native operations live in
    :class:`~repro.relational.columnar.ColumnarRelation` -- the same
    encoding the query executor dispatches to -- so a
    ``ColumnRepresentation`` *is* the fast path: ``select`` is a
    binary search over a cached sorted run, ``project`` a batch
    dedup.  The class keeps its original demo surface (dict-of-columns
    construction, ``select``/``project``/``aggregate_column``).

    Two behaviors the differential oracle pinned down:

    * ``project`` collapses duplicate rows by raw value tuples, which
      coincides with XSet set semantics for every admissible value
      (Python ``==`` is XST member equality), including the
      ``1 == 1.0 == True`` twins;
    * ``project([])`` of a non-empty representation is the single
      empty row (canonical form ``{{}}``), matching
      :meth:`RowRepresentation.project` -- previously the column
      layout silently dropped its row count and canonicalized to the
      empty set.  A zero-attribute representation carries an explicit
      ``length`` for exactly this case.  Note ``to_relation`` cannot
      express the zero-attribute result (rows must be attribute-scoped
      records); compare with ``canonical()`` instead.
    """

    def __init__(self, columns: Dict[str, Sequence[Any]],
                 length: Optional[int] = None):
        self._backing = ColumnarRelation(
            Heading(columns), columns, length=length
        )

    @classmethod
    def _wrap(cls, backing: ColumnarRelation) -> "ColumnRepresentation":
        wrapped = cls.__new__(cls)
        wrapped._backing = backing
        return wrapped

    @property
    def heading(self) -> Heading:
        return self._backing.heading

    def __len__(self) -> int:
        return len(self._backing)

    def column(self, attr: str) -> List[Any]:
        return self._backing.column(attr)

    # -- native operations (run-at-a-time over the column layout) --------

    def select(self, attr: str, value: Any) -> "ColumnRepresentation":
        """Equality selection: binary search over the attribute's run."""
        return ColumnRepresentation._wrap(
            self._backing.select_eq({attr: value})
        )

    def project(self, attrs: Sequence[str]) -> "ColumnRepresentation":
        """Column projection: slice the arrays, then deduplicate."""
        return ColumnRepresentation._wrap(self._backing.project(attrs))

    def aggregate_column(self, attr: str, fn: Callable[[List[Any]], Any]) -> Any:
        """Single-column aggregation without touching other columns."""
        return fn(self.column(attr))

    # -- identity -----------------------------------------------------------

    def as_columnar(self) -> ColumnarRelation:
        """The backing run encoding (shared, immutable)."""
        return self._backing

    def canonical(self) -> XSet:
        return self._backing.canonical()

    def to_relation(self) -> Relation:
        return self._backing.to_relation()

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnRepresentation":
        return cls._wrap(ColumnarRelation.from_relation(relation))


def same_identity(*representations) -> bool:
    """Do these physical layouts denote the same extended set?

    Decided by content digest of the canonical form -- the executable
    version of "all data representations have a mathematical identity"
    (§12).
    """
    digests = {digest(rep.canonical()) for rep in representations}
    return len(digests) <= 1
