"""Many physical representations, one mathematical identity.

The XSP programme's sharpest systems claim (paper §12, refs [3]/[4])
is that *data representations* -- row layouts, column layouts,
whatever the hardware likes -- all have a mathematical identity as
extended sets, so the system can change representation freely and
prove it changed nothing.  This module demonstrates the claim
executably:

* :class:`RowRepresentation` -- tuples in row-major order (the record
  layout);
* :class:`ColumnRepresentation` -- one array per attribute (the
  column layout);
* both implement the same operations natively in their own layout
  (selection walks rows; column projection slices one array), and

* both *canonicalize* to the same :class:`~repro.xst.xset.XSet` --
  ``representation.canonical()`` -- so equality of representations is
  set equality, and :func:`same_identity` decides "are these two
  physical layouts the same data?" by content digest.

The benchmark suite measures the layouts' complementary strengths
(row selection vs column projection); the tests assert that every
operation result, canonicalized, is identical across layouts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.builders import xrecord, xset
from repro.xst.serialization import digest
from repro.xst.xset import XSet

__all__ = [
    "RowRepresentation",
    "ColumnRepresentation",
    "same_identity",
]


class RowRepresentation:
    """Row-major physical layout: a list of value tuples."""

    def __init__(self, names: Sequence[str], rows: Sequence[Sequence[Any]]):
        self._heading = names if isinstance(names, Heading) else Heading(names)
        width = len(self._heading)
        self._rows: List[Tuple[Any, ...]] = []
        for row in rows:
            values = tuple(row)
            if len(values) != width:
                raise SchemaError(
                    "row %r has %d values for %d attributes"
                    % (values, len(values), width)
                )
            self._rows.append(values)

    @property
    def heading(self) -> Heading:
        return self._heading

    def __len__(self) -> int:
        return len(self._rows)

    # -- native operations (row-at-a-time over the row layout) -----------

    def select(self, attr: str, value: Any) -> "RowRepresentation":
        position = self._heading.names.index(
            self._heading.require([attr])[0]
        )
        kept = [row for row in self._rows if row[position] == value]
        return RowRepresentation(self._heading, kept)

    def project(self, attrs: Sequence[str]) -> "RowRepresentation":
        wanted = self._heading.require(attrs)
        positions = [self._heading.names.index(attr) for attr in wanted]
        seen = set()
        kept = []
        for row in self._rows:
            projected = tuple(row[position] for position in positions)
            if projected not in seen:
                seen.add(projected)
                kept.append(projected)
        return RowRepresentation(Heading(wanted), kept)

    # -- identity -----------------------------------------------------------

    def canonical(self) -> XSet:
        """The mathematical identity: the set of attribute-scoped rows."""
        return xset(
            xrecord(dict(zip(self._heading.names, row))) for row in self._rows
        )

    def to_relation(self) -> Relation:
        return Relation(self._heading, self.canonical())

    @classmethod
    def from_relation(cls, relation: Relation) -> "RowRepresentation":
        return cls(relation.heading, relation.to_rows())


class ColumnRepresentation:
    """Column-major physical layout: one parallel array per attribute."""

    def __init__(self, columns: Dict[str, Sequence[Any]]):
        self._heading = Heading(columns)
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(
                "ragged columns: %s" % sorted(lengths.items())
            )
        self._columns: Dict[str, List[Any]] = {
            name: list(values) for name, values in columns.items()
        }
        self._length = next(iter(lengths.values())) if lengths else 0

    @property
    def heading(self) -> Heading:
        return self._heading

    def __len__(self) -> int:
        return self._length

    def column(self, attr: str) -> List[Any]:
        self._heading.require([attr])
        return list(self._columns[attr])

    # -- native operations (array-at-a-time over the column layout) ------

    def select(self, attr: str, value: Any) -> "ColumnRepresentation":
        self._heading.require([attr])
        keep = [
            index
            for index, cell in enumerate(self._columns[attr])
            if cell == value
        ]
        return ColumnRepresentation(
            {
                name: [values[index] for index in keep]
                for name, values in self._columns.items()
            }
        )

    def project(self, attrs: Sequence[str]) -> "ColumnRepresentation":
        """Column projection: slice the arrays, then deduplicate."""
        wanted = self._heading.require(attrs)
        seen = set()
        keep = []
        arrays = [self._columns[attr] for attr in wanted]
        for index in range(self._length):
            key = tuple(array[index] for array in arrays)
            if key not in seen:
                seen.add(key)
                keep.append(index)
        return ColumnRepresentation(
            {
                attr: [self._columns[attr][index] for index in keep]
                for attr in wanted
            }
        )

    def aggregate_column(self, attr: str, fn: Callable[[List[Any]], Any]) -> Any:
        """Single-column aggregation without touching other columns."""
        return fn(self.column(attr))

    # -- identity -----------------------------------------------------------

    def canonical(self) -> XSet:
        names = self._heading.names
        return xset(
            xrecord(
                {name: self._columns[name][index] for name in names}
            )
            for index in range(self._length)
        )

    def to_relation(self) -> Relation:
        return Relation(self._heading, self.canonical())

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnRepresentation":
        names = relation.heading.names
        columns: Dict[str, List[Any]] = {name: [] for name in names}
        for record in relation.iter_dicts():
            for name in names:
                columns[name].append(record[name])
        return cls(columns)


def same_identity(*representations) -> bool:
    """Do these physical layouts denote the same extended set?

    Decided by content digest of the canonical form -- the executable
    version of "all data representations have a mathematical identity"
    (§12).
    """
    digests = {digest(rep.canonical()) for rep in representations}
    return len(digests) <= 1
