"""Storage engines: set processing vs record processing (ref [4]).

The paper's reference [4] ("Set Processing vs Record Processing,
Dynamic Data Restructuring vs Prestructured Data Storage") contrasts
two disciplines for the same stored data.  Both are implemented here
behind one protocol so benchmarks compare disciplines, not API
shapes:

* :class:`RecordStore` -- the classical record-processing engine: a
  list of row dicts, every operation a Python loop touching one
  record at a time, no auxiliary structure.
* :class:`SetStore` -- the extended-set-processing engine: rows live
  in one :class:`~repro.xst.xset.XSet`; lookups go through hash
  indexes from attribute values to row sets, built on demand and
  reused (the "dynamic data restructuring" of ref [4]); selections
  and joins are single set operations.

Both engines answer ``lookup`` / ``project`` / ``equijoin_count``
identically (asserted in tests); the benchmark suite measures the gap
(``benchmarks/bench_set_vs_record.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.builders import xset
from repro.xst.domain import sigma_domain
from repro.xst.xset import XSet

__all__ = ["RecordStore", "SetStore"]


class RecordStore:
    """Record-at-a-time storage: a list of dicts, scanned per query."""

    def __init__(self, names: Sequence[str], rows: Iterable[Mapping[str, Any]]):
        self._heading = names if isinstance(names, Heading) else Heading(names)
        wanted = frozenset(self._heading.names)
        self._rows: List[Dict[str, Any]] = []
        for row in rows:
            if frozenset(row) != wanted:
                raise SchemaError(
                    "row keys %s do not match heading %r"
                    % (sorted(row), self._heading)
                )
            self._rows.append(dict(row))

    @property
    def heading(self) -> Heading:
        return self._heading

    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterable[Dict[str, Any]]:
        """Yield every record; the only access path this engine has."""
        return iter(self._rows)

    def lookup(self, attr: str, value: Any) -> List[Dict[str, Any]]:
        """Equality selection by full scan."""
        self._heading.require([attr])
        return [row for row in self._rows if row[attr] == value]

    def project(self, attrs: Sequence[str]) -> List[Tuple[Any, ...]]:
        """Distinct projected tuples, accumulated record by record."""
        wanted = self._heading.require(attrs)
        seen = set()
        out = []
        for row in self._rows:
            projected = tuple(row[attr] for attr in wanted)
            if projected not in seen:
                seen.add(projected)
                out.append(projected)
        return out

    def equijoin_count(self, other: "RecordStore", attr: str) -> int:
        """Nested-loop equijoin; returns the match count."""
        self._heading.require([attr])
        other.heading.require([attr])
        count = 0
        for left in self._rows:
            for right in other._rows:
                if left[attr] == right[attr]:
                    count += 1
        return count


class SetStore:
    """Set-at-a-time storage over an extended set with hash indexes."""

    def __init__(self, names: Sequence[str], rows: Iterable[Mapping[str, Any]]):
        self._relation = Relation.from_dicts(names, rows)
        self._indexes: Dict[str, Dict[Any, List[XSet]]] = {}

    @property
    def heading(self) -> Heading:
        return self._relation.heading

    @property
    def relation(self) -> Relation:
        return self._relation

    def __len__(self) -> int:
        return len(self._relation)

    def _index(self, attr: str) -> Dict[Any, List[XSet]]:
        """Build (once) and return the value -> rows index for ``attr``.

        This is the dynamic restructuring move: the stored set is
        re-keyed by whichever scope access patterns demand, without
        touching the canonical row set.
        """
        self._relation.heading.require([attr])
        index = self._indexes.get(attr)
        if index is None:
            index = {}
            for row, _ in self._relation.rows.pairs():
                for value in row.elements_at(attr):
                    index.setdefault(value, []).append(row)
            self._indexes[attr] = index
        return index

    def lookup(self, attr: str, value: Any) -> List[Dict[str, Any]]:
        """Equality selection through the attribute index.

        Result dicts present attributes in heading order, matching
        what :class:`RecordStore` returns for the same rows.
        """
        names = self._relation.heading.names
        out = []
        for row in self._index(attr).get(value, []):
            record = row.as_record()
            out.append({name: record[name] for name in names})
        return out

    def lookup_rows(self, attr: str, value: Any) -> XSet:
        """Index lookup returning a fresh row set (canonicalized)."""
        return xset(self._index(attr).get(value, []))

    def probe(self, attr: str, value: Any) -> List[XSet]:
        """Zero-copy index probe: references to the matching rows.

        The comparison-fair counterpart of :meth:`RecordStore.lookup`,
        which also returns references; use :meth:`lookup` /
        :meth:`lookup_rows` when materialized dicts or a canonical set
        are actually needed.
        """
        return self._index(attr).get(value, [])

    def project(self, attrs: Sequence[str]) -> List[Tuple[Any, ...]]:
        """One sigma-domain call; duplicates collapse inside the set."""
        wanted = self._relation.heading.require(attrs)
        sigma = XSet((attr, attr) for attr in wanted)
        projected = sigma_domain(self._relation.rows, sigma)
        out = []
        for row, _ in projected.pairs():
            record = row.as_record()
            out.append(tuple(record[attr] for attr in wanted))
        return out

    def equijoin_count(self, other: "SetStore", attr: str) -> int:
        """Index-to-index equijoin; returns the match count."""
        left_index = self._index(attr)
        right_index = other._index(attr)
        # Probe with the smaller index, classical hash-join style.
        if len(left_index) > len(right_index):
            left_index, right_index = right_index, left_index
        count = 0
        for value, left_rows in left_index.items():
            right_rows = right_index.get(value)
            if right_rows:
                count += len(left_rows) * len(right_rows)
        return count
