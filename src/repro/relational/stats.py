"""Statistics catalog: data-grounded cardinality evidence for planning.

Section 12's optimization argument -- whole-plan compositions can be
rewritten before anything executes -- is only as good as the planner's
cardinality guesses.  Until now those guesses were magic constants
(one-in-ten for every equality selection, ``max(left, right)`` for
every join).  This module replaces guessing with *measurement*: an
``ANALYZE`` pass over a relation collects, per attribute,

* a **distinct-value estimate** from a deterministic KMV (k minimum
  values) sketch -- the k smallest :func:`repro.xst.ordering.
  canonical_hash` values seen; with fewer than k distinct hashes the
  count is exact, beyond that the classical ``(k - 1) / max_kth``
  estimator applies;
* an **equi-depth histogram** over the canonical total ordering
  (:func:`repro.xst.ordering.canonical_key`), so selectivities of
  range-shaped predicates and uniform-part equality lookups read off
  bucket densities;
* a **most-common-value list** (top frequencies, ties broken by
  canonical order) for skew-aware equality selectivity;
* the **null fraction** (``None`` values).

Everything is deterministic: no wall clock, no salted hashing, and the
optional row-sampling path draws from a seeded ``random.Random``
following the repo's workload-seed convention, so two ANALYZE runs over
equal relations produce byte-identical catalogs.

Staleness: a :class:`StatsCatalog` tracks mutations applied to each
relation since its last ANALYZE (fed by
:class:`~repro.relational.tx.TransactionManager`).  Past a threshold
(a fraction of the analyzed row count, floor ``STALE_MIN_MUTATIONS``)
the entry is *invalidated*: :meth:`StatsCatalog.get` returns ``None``
and the planner falls back to the heuristic constants until a fresh
ANALYZE.  Catalogs serialize to/from canonical XSet values so
:class:`~repro.relational.disk.DiskRelationStore` checkpoints persist
them next to the data they describe.

Execution feedback: the observability loop (:mod:`repro.obs.feedback`)
can install *observed* cardinalities -- what a predicate actually
returned at run time -- as a bounded **overlay** keyed by
``(relation, feedback_key(conditions))``.  The overlay never touches
the ANALYZE ground truth in ``_entries``: corrections live beside it,
are consulted first by the cost model, are dropped the moment the
relation is re-ANALYZEd, and are runtime-only (they do not serialize).
Severe, repeated misestimates can additionally *force* an entry stale
via :meth:`StatsCatalog.mark_stale`, steering the owner toward a
fresh ANALYZE.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.xst.builders import xtuple
from repro.xst.ordering import canonical_hash, canonical_key
from repro.xst.xset import XSet

__all__ = [
    "AttributeStats",
    "RelationStats",
    "StatsCatalog",
    "analyze_relation",
    "KMV_SIZE",
    "HISTOGRAM_BUCKETS",
    "MCV_SIZE",
    "STALE_FRACTION",
    "STALE_MIN_MUTATIONS",
    "FEEDBACK_MAX_ENTRIES",
    "feedback_key",
]

#: KMV sketch size: the k smallest canonical hashes kept per attribute.
KMV_SIZE = 64

#: Equi-depth histogram bucket count.
HISTOGRAM_BUCKETS = 8

#: Most-common-value list length.
MCV_SIZE = 8

#: An entry goes stale when mutations since ANALYZE exceed this
#: fraction of the analyzed row count...
STALE_FRACTION = 0.2

#: ...with this floor, so tiny relations aren't invalidated by a
#: single insert.
STALE_MIN_MUTATIONS = 16

#: Upper bound on feedback-overlay entries per catalog; the oldest
#: correction is evicted first (FIFO), so a long-running workload's
#: overlay stays a cache, not a second catalog.
FEEDBACK_MAX_ENTRIES = 128

#: Hash range of :func:`canonical_hash` (32 bits), for the KMV
#: estimator's unit-interval normalization.
_HASH_SPACE = float(1 << 32)


def feedback_key(conditions: Mapping[str, Any]) -> str:
    """Canonical overlay key for an equality-predicate set.

    Attribute-sorted ``repr`` pairs, so ``{"a": 1, "b": 2}`` and
    ``{"b": 2, "a": 1}`` key identically and the key is a plain string
    that survives JSONL round trips through digests.
    """
    return ",".join(
        "%s=%r" % (name, conditions[name]) for name in sorted(conditions)
    )


def _kmv_estimate(hashes: Sequence[int], exact_distinct: int) -> int:
    """Distinct-value estimate from the k smallest hashes.

    ``hashes`` is the sorted KMV synopsis; ``exact_distinct`` is the
    number of distinct hashes actually observed (exact while the
    sketch is not full).  The classical estimator ``(k - 1) / U_k``
    (``U_k`` the k-th minimum normalized to the unit interval) applies
    only once the sketch saturates.
    """
    if exact_distinct < KMV_SIZE or len(hashes) < KMV_SIZE:
        return exact_distinct
    kth = hashes[KMV_SIZE - 1] / _HASH_SPACE
    if kth <= 0.0:
        return exact_distinct
    return int(round((KMV_SIZE - 1) / kth))


class AttributeStats:
    """Collected statistics for one attribute of one relation."""

    __slots__ = ("distinct", "null_fraction", "mcvs", "histogram", "rows")

    def __init__(
        self,
        rows: int,
        distinct: int,
        null_fraction: float,
        mcvs: Sequence[Tuple[Any, int]],
        histogram: Sequence[Tuple[Any, Any, int]],
    ):
        self.rows = rows
        self.distinct = distinct
        self.null_fraction = null_fraction
        #: ``(value, count)`` pairs, most frequent first.
        self.mcvs: Tuple[Tuple[Any, int], ...] = tuple(
            (value, count) for value, count in mcvs
        )
        #: Equi-depth buckets ``(low, high, rows_in_bucket)`` in
        #: canonical order; ``high`` is inclusive.
        self.histogram: Tuple[Tuple[Any, Any, int], ...] = tuple(
            (low, high, count) for low, high, count in histogram
        )

    # -- selectivity reads ---------------------------------------------

    def eq_selectivity(self, value: Any) -> float:
        """Estimated fraction of rows with ``attr == value``.

        MCV hit: the exact tracked frequency.  Otherwise: the non-MCV,
        non-null mass spread uniformly over the remaining distinct
        values -- the textbook formula, grounded in this relation's
        measured skew instead of a constant.
        """
        if self.rows <= 0:
            return 0.0
        if value is None:
            return self.null_fraction
        for mcv_value, count in self.mcvs:
            if mcv_value == value:
                return count / self.rows
        mcv_rows = sum(count for _, count in self.mcvs)
        remaining_rows = self.rows * (1.0 - self.null_fraction) - mcv_rows
        remaining_distinct = self.distinct - len(self.mcvs)
        if remaining_rows <= 0 or remaining_distinct <= 0:
            # Every value is accounted for by the MCV list; an unseen
            # literal matches nothing (but never estimate a hard 0 --
            # the answer, not the estimate, decides emptiness).
            return 1.0 / max(1, self.rows)
        return max(
            1.0 / max(1, self.rows),
            (remaining_rows / remaining_distinct) / self.rows,
        )

    def range_selectivity(self, low: Any, high: Any) -> float:
        """Estimated fraction of rows in ``[low, high]`` (canonical order).

        Linear in the histogram bucket count; partially-covered end
        buckets contribute half their mass (the equi-depth analog of
        interpolation without assuming a value metric).
        """
        if self.rows <= 0 or not self.histogram:
            return 1.0 / 3.0
        low_key = canonical_key(low)
        high_key = canonical_key(high)
        covered = 0.0
        for bucket_low, bucket_high, count in self.histogram:
            b_low, b_high = canonical_key(bucket_low), canonical_key(bucket_high)
            if b_high < low_key or b_low > high_key:
                continue
            if low_key <= b_low and b_high <= high_key:
                covered += count
            else:
                covered += count / 2.0
        return min(1.0, covered / self.rows)

    # -- serialization --------------------------------------------------

    def to_xset(self) -> XSet:
        return xtuple([
            self.rows,
            self.distinct,
            self.null_fraction,
            xtuple([xtuple([value, count]) for value, count in self.mcvs]),
            xtuple([
                xtuple([low, high, count])
                for low, high, count in self.histogram
            ]),
        ])

    @classmethod
    def from_xset(cls, value: XSet) -> "AttributeStats":
        rows, distinct, null_fraction, mcvs, histogram = value.as_tuple()
        return cls(
            rows,
            distinct,
            null_fraction,
            [tuple(pair.as_tuple()) for pair in mcvs.as_tuple()],
            [tuple(bucket.as_tuple()) for bucket in histogram.as_tuple()],
        )

    def __repr__(self) -> str:
        return (
            "AttributeStats(distinct=%d, nulls=%.3f, mcvs=%d, buckets=%d)"
            % (self.distinct, self.null_fraction, len(self.mcvs),
               len(self.histogram))
        )


class RelationStats:
    """Row count plus per-attribute statistics for one relation."""

    __slots__ = ("rows", "attributes")

    def __init__(self, rows: int, attributes: Mapping[str, AttributeStats]):
        self.rows = rows
        self.attributes: Dict[str, AttributeStats] = dict(attributes)

    def attribute(self, name: str) -> Optional[AttributeStats]:
        return self.attributes.get(name)

    def to_xset(self) -> XSet:
        return xtuple([
            self.rows,
            xtuple([
                xtuple([name, self.attributes[name].to_xset()])
                for name in sorted(self.attributes)
            ]),
        ])

    @classmethod
    def from_xset(cls, value: XSet) -> "RelationStats":
        rows, attributes = value.as_tuple()
        decoded = {}
        for entry in attributes.as_tuple():
            name, attr_stats = entry.as_tuple()
            decoded[name] = AttributeStats.from_xset(attr_stats)
        return cls(rows, decoded)

    def __repr__(self) -> str:
        return "RelationStats(%d rows, %d attributes)" % (
            self.rows, len(self.attributes)
        )


def analyze_relation(
    relation: Relation,
    sample_rows: Optional[int] = None,
    seed: int = 0,
) -> RelationStats:
    """One ANALYZE pass: scan (or seeded-sample) a relation once.

    ``sample_rows`` caps the rows inspected for the histogram/MCV/
    sketch scan; rows are chosen by a seeded ``random.Random(seed)``
    (the workload-seed convention), so sampling is reproducible.  The
    row *count* is always exact -- only per-attribute structure is
    sampled.  Iteration follows the relation's canonical pair order,
    so two runs see identical rows in identical order.
    """
    rows = list(relation.iter_dicts())
    total = len(rows)
    inspected = rows
    if sample_rows is not None and 0 < sample_rows < total:
        rng = random.Random(seed)
        inspected = [rows[i] for i in sorted(rng.sample(range(total), sample_rows))]
    scale = total / len(inspected) if inspected else 1.0
    attributes: Dict[str, AttributeStats] = {}
    for attr in relation.heading.names:
        values = [row[attr] for row in inspected]
        nulls = sum(1 for value in values if value is None)
        present = [value for value in values if value is not None]
        # Frequency table drives distinct count, MCVs and histogram
        # alike; canonical_key gives the total order over mixed types.
        frequency: Dict[Any, int] = {}
        for value in present:
            frequency[value] = frequency.get(value, 0) + 1
        hashes = sorted({canonical_hash(value) for value in frequency})
        distinct = _kmv_estimate(hashes[:KMV_SIZE], len(frequency))
        if scale > 1.0 and present:
            # Sample extrapolation: an attribute whose sample is mostly
            # unique scales with the relation (keys); one whose sample
            # repeats has (almost) shown its whole value set (labels).
            if distinct >= len(inspected) // 2:
                distinct = int(round(distinct * scale))
        ranked = sorted(
            frequency.items(),
            key=lambda item: (-item[1], canonical_key(item[0])),
        )
        mcvs = [
            (value, int(round(count * scale)))
            for value, count in ranked[:MCV_SIZE]
            if count > 1 or len(ranked) <= MCV_SIZE
        ]
        histogram = _equi_depth(present, HISTOGRAM_BUCKETS, scale)
        attributes[attr] = AttributeStats(
            rows=total,
            distinct=max(1, distinct) if present else 0,
            null_fraction=(nulls / len(values)) if values else 0.0,
            mcvs=mcvs,
            histogram=histogram,
        )
    return RelationStats(total, attributes)


def _equi_depth(
    values: List[Any], buckets: int, scale: float
) -> List[Tuple[Any, Any, int]]:
    """Equi-depth buckets ``(low, high, rows)`` over canonical order."""
    if not values:
        return []
    ordered = sorted(values, key=canonical_key)
    count = len(ordered)
    bucket_count = min(buckets, count)
    out = []
    for index in range(bucket_count):
        start = (index * count) // bucket_count
        stop = ((index + 1) * count) // bucket_count
        if stop <= start:
            continue
        out.append((
            ordered[start],
            ordered[stop - 1],
            int(round((stop - start) * scale)),
        ))
    return out


class StatsCatalog:
    """Named relation statistics plus mutation-driven staleness.

    The catalog is the planner's one lookup point: ``get(name)``
    returns ``None`` for unknown *or stale* entries, which is the
    signal to fall back to the heuristic constants.  Mutation counts
    arrive from :class:`~repro.relational.tx.TransactionManager` (or
    any caller of :meth:`record_mutations`).
    """

    def __init__(
        self,
        stale_fraction: float = STALE_FRACTION,
        stale_min: int = STALE_MIN_MUTATIONS,
        feedback_max: int = FEEDBACK_MAX_ENTRIES,
    ):
        self._entries: Dict[str, RelationStats] = {}
        self._mutations: Dict[str, int] = {}
        self._stale_fraction = stale_fraction
        self._stale_min = stale_min
        # Runtime-only execution-feedback state: cardinality overlay
        # keyed by (relation, feedback_key-or-None) in insertion order
        # (FIFO eviction), plus the force-stale set.  Neither
        # serializes -- restored catalogs start with a clean overlay.
        self._feedback: Dict[Tuple[str, Optional[str]], int] = {}
        self._feedback_max = feedback_max
        self._force_stale: set = set()

    # -- population -----------------------------------------------------

    def analyze(
        self,
        name: str,
        relation: Relation,
        sample_rows: Optional[int] = None,
        seed: int = 0,
    ) -> RelationStats:
        """Collect and install fresh statistics for one relation."""
        stats = analyze_relation(relation, sample_rows=sample_rows, seed=seed)
        self._entries[name] = stats
        self._mutations[name] = 0
        # Fresh ground truth supersedes every runtime correction.
        self._discard_feedback(name)
        return stats

    def install(self, name: str, stats: RelationStats) -> None:
        self._entries[name] = stats
        self._mutations.setdefault(name, 0)
        self._discard_feedback(name)

    def drop(self, name: str) -> None:
        self._entries.pop(name, None)
        self._mutations.pop(name, None)
        self._discard_feedback(name)

    def _discard_feedback(self, name: str) -> None:
        self._force_stale.discard(name)
        stale_keys = [entry for entry in self._feedback if entry[0] == name]
        for entry in stale_keys:
            del self._feedback[entry]

    # -- reads ----------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._entries)

    def get(self, name: str, allow_stale: bool = False) -> Optional[RelationStats]:
        """The entry for ``name``; ``None`` when absent or stale."""
        stats = self._entries.get(name)
        if stats is None:
            return None
        if not allow_stale and self.is_stale(name):
            return None
        return stats

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        return len(self._entries)

    # -- staleness ------------------------------------------------------

    def record_mutations(self, name: str, count: int) -> None:
        """Account ``count`` inserted/deleted rows against ``name``."""
        if count < 0:
            raise SchemaError("mutation counts only accumulate")
        if name in self._entries:
            self._mutations[name] = self._mutations.get(name, 0) + count

    def mutations_since_analyze(self, name: str) -> int:
        return self._mutations.get(name, 0)

    def stale_threshold(self, name: str) -> int:
        stats = self._entries.get(name)
        rows = stats.rows if stats is not None else 0
        return max(self._stale_min, int(rows * self._stale_fraction))

    def is_stale(self, name: str) -> bool:
        if name not in self._entries:
            return False
        if name in self._force_stale:
            return True
        return self._mutations.get(name, 0) > self.stale_threshold(name)

    def mark_stale(self, name: str) -> None:
        """Force ``name`` stale regardless of its mutation ledger.

        The feedback loop calls this after repeated *severe*
        misestimates: the ANALYZE entry is evidently wrong about the
        live data even though no mutations were recorded through the
        transaction layer.  A fresh :meth:`analyze` clears the mark.
        """
        if name in self._entries:
            self._force_stale.add(name)

    def stale_names(self) -> List[str]:
        return sorted(name for name in self._entries if self.is_stale(name))

    # -- execution feedback overlay -------------------------------------

    def record_feedback(
        self, name: str, key: Optional[str], rows: int
    ) -> None:
        """Install one observed cardinality: ``rows`` for ``key``.

        ``key`` is a :func:`feedback_key` string for an equality
        predicate over ``name``, or ``None`` for the relation's own
        observed row count (a Scan correction).  The overlay is FIFO
        bounded at ``feedback_max`` entries and never touches the
        ANALYZE ground truth.
        """
        if rows < 0:
            raise SchemaError("observed cardinalities are non-negative")
        entry = (name, key)
        if entry not in self._feedback and \
                len(self._feedback) >= self._feedback_max:
            oldest = next(iter(self._feedback))
            del self._feedback[oldest]
        self._feedback[entry] = int(rows)

    def feedback_rows(self, name: str, key: Optional[str]) -> Optional[int]:
        """The overlay correction for ``(name, key)``, or ``None``."""
        return self._feedback.get((name, key))

    def feedback_entries(self) -> Dict[Tuple[str, Optional[str]], int]:
        """A copy of the live overlay (insertion order preserved)."""
        return dict(self._feedback)

    def clear_feedback(self, name: Optional[str] = None) -> None:
        """Drop the overlay (for one relation, or entirely)."""
        if name is None:
            self._feedback.clear()
            self._force_stale.clear()
        else:
            self._discard_feedback(name)

    # -- serialization --------------------------------------------------

    def to_xset(self) -> XSet:
        """The whole catalog as one canonical XSet value.

        Mutation counters travel too: a checkpointed catalog restored
        after recovery keeps its staleness accounting.
        """
        return xtuple([
            xtuple([
                name,
                self._entries[name].to_xset(),
                self._mutations.get(name, 0),
            ])
            for name in sorted(self._entries)
        ])

    @classmethod
    def from_xset(cls, value: XSet) -> "StatsCatalog":
        catalog = cls()
        for entry in value.as_tuple():
            name, stats, mutations = entry.as_tuple()
            catalog._entries[name] = RelationStats.from_xset(stats)
            catalog._mutations[name] = mutations
        return catalog

    def __repr__(self) -> str:
        return "StatsCatalog(%s)" % ", ".join(
            "%s=%dr" % (name, self._entries[name].rows)
            for name in sorted(self._entries)
        ) if self._entries else "StatsCatalog(empty)"
