"""Instrumented plan execution: per-operator rows and timings.

``explain()`` shows a plan's shape; :func:`execute_profiled` shows its
*behavior*: every operator's output cardinality and wall time, as a
tree mirroring the plan.  The optimizer benchmarks use it to attribute
speedups to specific rewrites, and the examples print it as a
poor-man's EXPLAIN ANALYZE.

:func:`profile_cluster` does the same for distributed queries: it runs
one :class:`~repro.relational.distributed.Cluster` query and renders
the per-bucket read trace -- which replica served each bucket, how
many rows it returned, and where failovers landed -- so the fault
benchmarks can attribute recovery cost to specific buckets.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.relational.query import (
    Database,
    Difference,
    Join,
    Plan,
    Project,
    Rename,
    Scan,
    SelectEq,
    SelectPred,
    Union,
)
from repro.relational import algebra
from repro.relational.relation import Relation

__all__ = ["NodeProfile", "execute_profiled", "profile_cluster"]


class NodeProfile:
    """One operator's measured execution."""

    __slots__ = ("describe", "rows", "seconds", "children")

    def __init__(self, describe: str, rows: int, seconds: float,
                 children: List["NodeProfile"]):
        self.describe = describe
        self.rows = rows
        self.seconds = seconds
        self.children = children

    def total_rows(self) -> int:
        """Rows produced by this operator and everything under it."""
        return self.rows + sum(child.total_rows() for child in self.children)

    def render(self, indent: int = 0) -> str:
        lines = [
            "%s%-40s %6d rows  %8.3f ms"
            % ("  " * indent, self.describe, self.rows, self.seconds * 1000)
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "NodeProfile(%s, %d rows)" % (self.describe, self.rows)


def execute_profiled(db: Database, plan: Plan) -> Tuple[Relation, NodeProfile]:
    """Set-at-a-time execution with per-operator measurement.

    The result relation is identical to ``db.execute(plan)``; the
    profile tree mirrors the plan tree.  Per-node time is *inclusive*
    of children (subtract to attribute), matching how EXPLAIN ANALYZE
    output is conventionally read.
    """
    started = time.perf_counter()
    if isinstance(plan, Scan):
        result = db.relation(plan.name)
        children: List[NodeProfile] = []
    elif isinstance(plan, SelectEq):
        child_result, child_profile = execute_profiled(db, plan.child)
        result = algebra.select_eq(child_result, plan.conditions)
        children = [child_profile]
    elif isinstance(plan, SelectPred):
        child_result, child_profile = execute_profiled(db, plan.child)
        result = algebra.select(child_result, plan.predicate)
        children = [child_profile]
    elif isinstance(plan, Project):
        child_result, child_profile = execute_profiled(db, plan.child)
        result = algebra.project(child_result, plan.attrs)
        children = [child_profile]
    elif isinstance(plan, Rename):
        child_result, child_profile = execute_profiled(db, plan.child)
        result = algebra.rename(child_result, plan.mapping)
        children = [child_profile]
    elif isinstance(plan, (Join, Union, Difference)):
        left_result, left_profile = execute_profiled(db, plan.left)
        right_result, right_profile = execute_profiled(db, plan.right)
        if isinstance(plan, Join):
            result = algebra.join(left_result, right_result)
        elif isinstance(plan, Union):
            result = algebra.union(left_result, right_result)
        else:
            result = algebra.difference(left_result, right_result)
        children = [left_profile, right_profile]
    else:
        raise TypeError("unknown plan node %r" % (plan,))
    elapsed = time.perf_counter() - started
    profile = NodeProfile(
        plan.describe(), result.cardinality(), elapsed, children
    )
    return result, profile


def profile_cluster(cluster, query, *args, **kwargs):
    """Run one distributed query and return ``(result, profile)``.

    ``query`` is a :class:`~repro.relational.distributed.Cluster`
    method name (``"scan"``, ``"select_eq"``, ``"join"``,
    ``"aggregate"``) or a bound callable.  The profile's children are
    the cluster's per-bucket read trace: one leaf per bucket access,
    labeled ``table[bucket] @ node``, so a failover shows up as the
    bucket served by a non-primary node.  The root's time is real wall
    time; per-leaf times are each bucket's serve time.
    """
    bound = getattr(cluster, query) if isinstance(query, str) else query
    started = time.perf_counter()
    result = bound(*args, **kwargs)
    elapsed = time.perf_counter() - started
    children = [
        NodeProfile(describe, rows, seconds, [])
        for describe, rows, seconds in cluster.last_query_events
    ]
    rows = result.cardinality() if isinstance(result, Relation) else 0
    profile = NodeProfile(
        cluster.last_query_describe or "cluster query", rows, elapsed, children
    )
    return result, profile
