"""Instrumented plan execution: per-operator rows and timings.

``explain()`` shows a plan's shape; :func:`execute_profiled` shows its
*behavior*: every operator's output cardinality and wall time, as a
tree mirroring the plan.  The optimizer benchmarks use it to attribute
speedups to specific rewrites, and the examples print it as a
poor-man's EXPLAIN ANALYZE.

Since the observability layer landed, profiling is span-based: the
generic walker :func:`execute_spanned` wraps each
:meth:`~repro.relational.query.Database.execute_node` call in a
:class:`repro.obs.trace.Span`, and :class:`NodeProfile` is a *view*
over the resulting span tree -- one measurement substrate for local
plans, cluster queries, and the exported ``repro obs-trace`` output.

:func:`profile_cluster` does the same for distributed queries: it runs
one :class:`~repro.relational.distributed.Cluster` query and renders
the per-bucket read trace -- which replica served each bucket, how
many rows it returned, and where failovers landed -- so the fault
benchmarks can attribute recovery cost to specific buckets.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.obs import instrument, metrics
from repro.obs.trace import Span, Tracer
from repro.obs.trace import tracer as global_tracer
from repro.relational.columnar import ColumnarRelation, materialize
from repro.relational.query import Database, Plan, Scan, SelectEq
from repro.relational.relation import Relation
from repro.relational.stats import feedback_key

__all__ = [
    "NodeProfile",
    "execute_profiled",
    "execute_spanned",
    "profile_cluster",
]


class NodeProfile:
    """One operator's measured execution (a view over one span).

    Semantics worth reading twice:

    * ``seconds`` is *inclusive* of children, matching how EXPLAIN
      ANALYZE output is conventionally read; use
      :meth:`exclusive_seconds` to attribute time to one operator.
    * :meth:`total_rows` sums every operator's *output* cardinality,
      so rows flowing through a deep plan are deliberately counted at
      each materialization point -- it measures total set traffic, not
      distinct rows.
    """

    __slots__ = ("describe", "rows", "seconds", "children", "est_rows")

    def __init__(self, describe: str, rows: int, seconds: float,
                 children: List["NodeProfile"],
                 est_rows: Optional[int] = None):
        self.describe = describe
        self.rows = rows
        self.seconds = seconds
        self.children = children
        #: Planner estimate for this operator's output, when the span
        #: was recorded against a database with statistics (else None).
        self.est_rows = est_rows

    @classmethod
    def from_span(cls, span: Span) -> "NodeProfile":
        """Build the profile view over a finished span tree."""
        est = span.attrs.get("est_rows")
        return cls(
            span.name,
            int(span.attrs.get("rows", 0)),
            span.duration_s,
            [cls.from_span(child) for child in span.children],
            est_rows=int(est) if est is not None else None,
        )

    def total_rows(self) -> int:
        """Rows produced by this operator and everything under it.

        Each operator's output is counted once, so a row surviving N
        operators contributes N times -- the number measures set
        traffic through the plan (the quantity set-at-a-time execution
        economizes), not distinct rows.
        """
        return self.rows + sum(child.total_rows() for child in self.children)

    def exclusive_seconds(self) -> float:
        """Time spent in this operator alone, children subtracted.

        Clamped at 0.0: clock granularity can make a parent's
        inclusive time read fractionally below its children's sum.
        This is the number optimizer benchmarks should attribute
        rewrites with; ``seconds`` stays inclusive.
        """
        return max(
            0.0,
            self.seconds - sum(child.seconds for child in self.children),
        )

    def render(self, indent: int = 0) -> str:
        suffix = "" if self.est_rows is None else "  (est %d)" % self.est_rows
        lines = [
            "%s%-40s %6d rows  %8.3f ms%s"
            % ("  " * indent, self.describe, self.rows,
               self.seconds * 1000, suffix)
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "NodeProfile(%s, %d rows)" % (self.describe, self.rows)


def execute_spanned(
    db: Database, plan: Plan, tracer: Optional[Tracer] = None
) -> Tuple[Relation, Span]:
    """Execute a plan with one span per operator; returns the root span.

    This is the generic walker behind both :func:`execute_profiled`
    and the production hook in :meth:`Database.execute` under
    ``REPRO_OBS=1``: it recurses over ``plan.children()`` and
    evaluates each node through
    :meth:`~repro.relational.query.Database.execute_node`, so there is
    no per-node-type measurement code to fall out of sync with the
    executor.  ``tracer`` defaults to the process-global tracer.
    """
    active_tracer = global_tracer() if tracer is None else tracer
    recording = instrument.enabled()
    registry = metrics.registry() if recording else None
    # When the database carries a populated statistics catalog, every
    # span additionally records the planner's estimate next to the
    # measured cardinality (``est_rows`` / ``q_error`` attributes, plus
    # the ``repro_opt_qerror`` histogram) -- EXPLAIN ANALYZE data on
    # the production path.  ``_stats`` is read without triggering the
    # lazy catalog creation, so stats-less databases pay nothing.
    estimator = None
    catalog = getattr(db, "_stats", None)
    if catalog is not None and len(catalog):
        from repro.relational.cost import CardinalityEstimator

        estimator = CardinalityEstimator(db)

    root_holder: List[Span] = []

    def walk(node: Plan) -> Relation:
        if not isinstance(node, Plan):
            raise TypeError("unknown plan node %r" % (node,))
        with active_tracer.span(
            node.describe(), node=type(node).__name__
        ) as span:
            if not root_holder:
                root_holder.append(span)
            inputs = [walk(child) for child in node.children()]
            result = db.execute_node(node, inputs)
            rows = result.cardinality()
            span.set("rows", rows)
            # Structured anchors for digests and the feedback loop:
            # which backend served this node, and -- for the shapes
            # feedback can learn -- which base relation / predicate the
            # measured cardinality belongs to.
            span.set(
                "backend",
                "columnar"
                if isinstance(result, ColumnarRelation) else "row",
            )
            if isinstance(node, Scan):
                span.set("relation", node.name)
            elif isinstance(node, SelectEq) and \
                    isinstance(node.child, Scan):
                span.set("relation", node.child.name)
                span.set("conditions", feedback_key(node.conditions))
            if estimator is not None:
                from repro.relational.cost import qerror

                estimated = estimator.estimate(node)
                error = qerror(estimated, rows)
                span.set("est_rows", int(round(estimated)))
                span.set("q_error", round(error, 4))
                if registry is not None:
                    registry.histogram(
                        "repro_opt_qerror",
                        "Per-node q-error of executed plans.",
                        buckets=(1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0),
                    ).observe(error)
            if registry is not None:
                node_name = type(node).__name__
                registry.counter(
                    "repro_plan_node_total",
                    "Plan operator executions.", ("node",),
                ).inc(node=node_name)
                registry.counter(
                    "repro_plan_rows_total",
                    "Plan operator output rows.", ("node",),
                ).inc(rows, node=node_name)
        return result

    # Intermediates stay in whatever backend produced them (columnar
    # results are never canonicalized mid-plan); only the answer the
    # caller sees is collapsed to the canonical row model.
    result = materialize(walk(plan))
    return result, root_holder[0]


def execute_profiled(
    db: Database, plan: Plan, tracer: Optional[Tracer] = None
) -> Tuple[Relation, NodeProfile]:
    """Set-at-a-time execution with per-operator measurement.

    The result relation is identical to ``db.execute(plan)``; the
    profile tree mirrors the plan tree.  Per-node time is *inclusive*
    of children (see :meth:`NodeProfile.exclusive_seconds` to
    attribute), matching how EXPLAIN ANALYZE output is conventionally
    read.  Profiling always measures, regardless of the ``REPRO_OBS``
    switch -- the switch gates the zero-config production hooks, not
    an explicit request to profile.
    """
    result, root = execute_spanned(db, plan, tracer)
    return result, NodeProfile.from_span(root)


def profile_cluster(cluster, query, *args, **kwargs):
    """Run one distributed query and return ``(result, profile)``.

    ``query`` is a :class:`~repro.relational.distributed.Cluster`
    method name (``"scan"``, ``"select_eq"``, ``"join"``,
    ``"aggregate"``) or a bound callable.  The profile's children are
    the cluster's per-bucket read spans: one leaf per bucket access,
    labeled ``table[bucket] @ node``, so a failover shows up as the
    bucket served by a non-primary node.  The root's time is real wall
    time; per-leaf times are each bucket's serve time.

    A cluster that has never run a query (or a cluster-like object
    without trace fields at all) profiles to an empty-children tree
    rather than raising.
    """
    bound = getattr(cluster, query) if isinstance(query, str) else query
    started = time.perf_counter()
    result = bound(*args, **kwargs)
    elapsed = time.perf_counter() - started
    events = getattr(cluster, "last_query_events", None) or []
    describe = getattr(cluster, "last_query_describe", "") or "cluster query"
    children = [
        NodeProfile(event_describe, rows, seconds, [])
        for event_describe, rows, seconds in events
    ]
    rows = result.cardinality() if isinstance(result, Relation) else 0
    return result, NodeProfile(describe, rows, elapsed, children)
