"""Data management on extended sets: the VLDB-1977 substrate.

======================  =============================================
module                  contents
======================  =============================================
``schema``              :class:`Heading` -- attribute alphabets
``relation``            :class:`Relation` -- rows as scoped records
``algebra``             select / project / rename / join / semijoin /
                        product / union / difference / intersection,
                        each one kernel call
``query``               plan AST, :class:`Database`, set-at-a-time and
                        record-at-a-time executors
``optimizer``           composition-theorem plan rewrites
``stats``               ANALYZE-built statistics catalog (KMV distinct
                        sketches, equi-depth histograms, MCVs)
``cost``                cardinality estimation, operator cost model,
                        DP join-order enumeration
``columnar``            sorted-run columnar fast path: binary-search
                        restriction, merge-intersection join
``storage``             :class:`SetStore` vs :class:`RecordStore`
                        (the ref [4] comparison)
======================  =============================================
"""

from repro.relational.aggregate import AGGREGATES, aggregate, group_by
from repro.relational.columnar import (
    ColumnarRelation,
    SortedRun,
    encode,
    materialize,
)
from repro.relational.algebra import (
    difference,
    intersection,
    join,
    product,
    project,
    rename,
    select,
    select_eq,
    semijoin,
    union,
)
from repro.relational.constraints import (
    CheckConstraint,
    ForeignKeyConstraint,
    IntegrityError,
    KeyConstraint,
    Table,
)
from repro.relational.csvio import dumps_csv, loads_csv, read_csv, write_csv
from repro.relational.index import IndexedRelation, SortedIndex
from repro.relational.ivm import (
    Delta,
    DeltaPropagator,
    DeltaUnsupported,
    QueryResultCache,
    plan_cache_key,
    scan_tables,
)
from repro.relational.views import View, ViewCatalog
from repro.relational.disk import DiskRelationStore, PageCache
from repro.relational.distributed import Cluster, NetworkStats, Node
from repro.relational.faults import (
    FaultInjector,
    FaultPlan,
    NodeDownError,
    ShipmentCorruptedError,
    ShipmentLostError,
)
from repro.relational.replication import ReplicaPlacement, replica_indices
from repro.relational.optimizer import estimate_rows, optimize
from repro.relational.cost import (
    CardinalityEstimator,
    explain_analyze,
    qerror,
    reorder_joins,
)
from repro.relational.stats import (
    AttributeStats,
    RelationStats,
    StatsCatalog,
    analyze_relation,
)
from repro.relational.query import (
    Database,
    Difference,
    Join,
    Plan,
    Project,
    Rename,
    Scan,
    SelectEq,
    SelectPred,
    Union,
)
from repro.relational.profile import (
    NodeProfile,
    execute_profiled,
    profile_cluster,
)
from repro.relational.relation import Relation
from repro.relational.representations import (
    ColumnRepresentation,
    RowRepresentation,
    same_identity,
)
from repro.relational.schema import Heading
from repro.relational.sql import compile_query, parse_query, run, run_rows
from repro.relational.tx import TransactionManager
from repro.relational.storage import RecordStore, SetStore
from repro.relational.wal import (
    CorruptLogError,
    CorruptSegmentError,
    CrashPoint,
    SimulatedCrashError,
    WriteAheadLog,
)

__all__ = [
    "Heading",
    "Relation",
    # algebra
    "select_eq",
    "select",
    "project",
    "rename",
    "join",
    "semijoin",
    "product",
    "union",
    "difference",
    "intersection",
    # query
    "Plan",
    "Scan",
    "SelectEq",
    "SelectPred",
    "Project",
    "Rename",
    "Join",
    "Union",
    "Difference",
    "Database",
    # optimizer
    "optimize",
    "estimate_rows",
    # statistics & cost-based planning
    "StatsCatalog",
    "RelationStats",
    "AttributeStats",
    "analyze_relation",
    "CardinalityEstimator",
    "reorder_joins",
    "explain_analyze",
    "qerror",
    # storage
    "RecordStore",
    "SetStore",
    "DiskRelationStore",
    "PageCache",
    # aggregation
    "group_by",
    "aggregate",
    "AGGREGATES",
    # constraints
    "Table",
    "KeyConstraint",
    "ForeignKeyConstraint",
    "CheckConstraint",
    "IntegrityError",
    # sql
    "run",
    "run_rows",
    "parse_query",
    "compile_query",
    # transactions
    "TransactionManager",
    # durability
    "WriteAheadLog",
    "CrashPoint",
    "SimulatedCrashError",
    "CorruptLogError",
    "CorruptSegmentError",
    # distributed
    "Cluster",
    "Node",
    "NetworkStats",
    # replication & faults
    "ReplicaPlacement",
    "replica_indices",
    "FaultPlan",
    "FaultInjector",
    "NodeDownError",
    "ShipmentLostError",
    "ShipmentCorruptedError",
    # csv
    "read_csv",
    "write_csv",
    "loads_csv",
    "dumps_csv",
    # indexes & views
    "SortedIndex",
    "IndexedRelation",
    "View",
    "ViewCatalog",
    # incremental view maintenance & result cache
    "Delta",
    "DeltaPropagator",
    "DeltaUnsupported",
    "QueryResultCache",
    "plan_cache_key",
    "scan_tables",
    # representations & profiling
    "RowRepresentation",
    "ColumnRepresentation",
    "same_identity",
    # columnar fast path
    "ColumnarRelation",
    "SortedRun",
    "encode",
    "materialize",
    "execute_profiled",
    "profile_cluster",
    "NodeProfile",
]
