"""Cost-based planning: estimation, operator costs, join-order search.

This is the consumer of :mod:`repro.relational.stats`: where the
heuristic optimizer guesses with constants, the cost-based planner
*reads the catalog*.

Three layers, each usable alone:

* :class:`CardinalityEstimator` -- estimated output rows for every
  plan node.  Equality selectivity comes from MCV lists and distinct
  counts, join selectivity from ``1 / max(distinct_left,
  distinct_right)`` per shared attribute, and any relation without a
  (fresh) catalog entry falls back to the exact heuristic constants in
  :func:`repro.relational.optimizer.estimate_rows` -- so the planner
  degrades attribute-by-attribute, never all-or-nothing.

* **Operator cost formulas** (:meth:`CardinalityEstimator.cost`) --
  one weighted-rows term per operator, calibrated against the shapes
  the kernel benchmarks measure (``bench_join``: hash join builds
  buckets over its *right* operand then probes with the left;
  ``bench_kernel``: re-scoping and restriction are linear per row
  with restriction cheaper than predicate evaluation).  The constants
  are documented in ``docs/optimizer.md``; only their *ratios* steer
  planning.

* **Join-order enumeration** (:func:`reorder_joins`) -- bottom-up
  dynamic programming over the join lattice (bushy trees), replacing
  the single build-side swap.  Up to :data:`DP_MAX_RELATIONS` leaves
  the search is exact over connected splits (cartesian splits are
  admitted only when a lattice cell has no connected split); beyond
  that, or when the enumeration exceeds its step budget, it degrades
  gracefully to a greedy smallest-result-first order.  Every lattice
  level passes a ``checkpoint("optimizer.dp")`` so an ambient
  :class:`repro.gov.Governor` can cancel a pathological search
  mid-enumeration.

Determinism: estimates are pure functions of the catalog, ties break
on the subset enumeration order, and nothing reads a clock -- the same
plan and the same statistics give the same join order on every run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.gov.governor import checkpoint as _gov_checkpoint
from repro.obs import metrics as _metrics
from repro.obs.instrument import enabled as _obs_enabled
from repro.relational.columnar import materialize as _materialize
from repro.relational.query import (
    Database,
    Difference,
    Join,
    Plan,
    Project,
    Rename,
    Scan,
    SelectEq,
    SelectPred,
    Union,
)
from repro.relational.stats import (
    AttributeStats,
    RelationStats,
    StatsCatalog,
    feedback_key,
)

__all__ = [
    "CardinalityEstimator",
    "reorder_joins",
    "explain_analyze",
    "qerror",
    "DP_MAX_RELATIONS",
    "DP_STEP_BUDGET",
    "estimate_shard_rows",
    "broadcast_join_cost",
    "shuffle_join_cost",
]

#: Largest join-leaf count searched exhaustively (bushy DP); beyond it
#: ordering falls back to the greedy heuristic.
DP_MAX_RELATIONS = 8

#: Enumeration step budget: DP degrades to greedy past this many
#: candidate splits, bounding planning time on adversarial lattices.
DP_STEP_BUDGET = 4096

#: Heuristic fallback selectivities (the pre-stats constants, kept
#: bit-identical so a stats-less estimate matches
#: :func:`repro.relational.optimizer.estimate_rows`).
_FALLBACK_EQ_SELECTIVITY = 0.1
_FALLBACK_PRED_SELECTIVITY = 1.0 / 3.0

# ----------------------------------------------------------------------
# Operator cost constants (weighted rows; ratios calibrated against
# the kernel benchmark shapes -- see docs/optimizer.md).
# ----------------------------------------------------------------------

_COST_SCAN = 0.05        # a Scan returns the stored relation; near-free
_COST_SELECT_EQ = 1.0    # kernel restriction, one pass
_COST_SELECT_PRED = 1.6  # Python predicate per row beats restriction cost
_COST_RESCOPE = 1.2      # project/rename rebuild every row
_COST_JOIN_PROBE = 1.0   # per probe-side (left) row
_COST_JOIN_BUILD = 1.5   # per build-side (right) row: bucketing costs more
_COST_OUT_ROW = 1.0      # per produced row, any operator
_COST_SET_MERGE = 0.6    # union/difference per input row

# Columnar (sorted-run) variants, applied only when every base relation
# under a node carries a run encoding -- then the whole subtree runs on
# the batch kernels of :mod:`repro.relational.columnar` and the row
# constants above overstate it.  Ratios from bench_kernel's
# columnar-vs-row cases: binary-search restriction touches candidates,
# not the relation; merge-intersection replaces both the hash build and
# the per-probe bucket lookups; rename is a column re-key.
_COST_COLUMNAR_SELECT_EQ = 0.12  # log-search + verify candidates
_COST_COLUMNAR_PROJECT = 0.6     # value-tuple dedup, no row rebuild
_COST_COLUMNAR_RENAME = 0.05     # re-key columns; runs carry over
_COST_MERGE_JOIN_INPUT = 0.4     # per input row of a merge walk, each side


def estimate_shard_rows(
    base_rows: float,
    conditions: Dict[str, Any],
    predicate_count: int,
    stats: Optional["RelationStats"] = None,
) -> float:
    """Rows one shard-side pipeline ships, after its pushed filters.

    The distributed coordinator's sizing primitive: ``base_rows`` is
    the per-table total from the cluster's insert-maintained bucket
    counts (an upper bound), shrunk by the selectivity of every
    pushed equality (ANALYZE statistics when the table has them,
    the heuristic fallback otherwise -- the *same* constants the
    local planner uses, so distributed and local estimates agree)
    and by the fallback factor per opaque predicate.
    """
    selectivity = 1.0
    for attr, value in conditions.items():
        attr_stats = stats.attribute(attr) if stats is not None else None
        if attr_stats is not None:
            selectivity *= attr_stats.eq_selectivity(value)
        else:
            selectivity *= _FALLBACK_EQ_SELECTIVITY
    selectivity *= _FALLBACK_PRED_SELECTIVITY ** predicate_count
    return max(1.0, base_rows * selectivity)


def broadcast_join_cost(small_rows: float, bucket_count: int) -> float:
    """Shipped rows for a broadcast join: the small side to every bucket."""
    return small_rows * max(1, bucket_count)


def shuffle_join_cost(moving_rows: float) -> float:
    """Shipped rows for a shuffle join: the re-keyed side moves once."""
    return moving_rows


def qerror(estimated: float, actual: float) -> float:
    """The q-error ``max(est/act, act/est)``, floored at one row each.

    1.0 is a perfect estimate; the factor is symmetric in over- and
    under-estimation, which is what makes it the standard plan-quality
    metric.
    """
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


class CardinalityEstimator:
    """Statistics-grounded row estimates (and costs) for plan nodes.

    One instance memoizes per plan-node identity, so estimating a
    whole tree is linear.  ``catalog`` defaults to the database's own
    (:attr:`Database.stats`); pass an empty catalog to get the pure
    heuristic numbers from the same code path.
    """

    def __init__(self, db: Database, catalog: Optional[StatsCatalog] = None):
        self._db = db
        self._catalog = db.stats if catalog is None else catalog
        # Memo caches key on node identity; the node itself is stored
        # alongside the value so the id cannot be recycled by the
        # allocator while the cache entry lives.
        self._rows: Dict[int, Tuple[Plan, float]] = {}
        self._costs: Dict[int, Tuple[Plan, float]] = {}
        self._encoded: Dict[int, Tuple[Plan, bool]] = {}

    # -- catalog access -------------------------------------------------

    def has_stats(self, plan: Plan) -> bool:
        """True when any base relation under ``plan`` has fresh stats."""
        if isinstance(plan, Scan):
            return self._catalog.get(plan.name) is not None
        return any(self.has_stats(child) for child in plan.children())

    def runs_encoded(self, plan: Plan) -> bool:
        """True when this node will execute on the columnar backend.

        Every plan operator has a columnar kernel, so the dispatch rule
        in :meth:`Database._evaluate_node` reduces to: the subtree runs
        columnar iff every base relation under it carries a run
        encoding (mixed trees promote the row side, which is what the
        ``any``-sticky dispatch does; costing that conservatively as
        row keeps the model honest about the encode it would pay).
        """
        key = id(plan)
        cached = self._encoded.get(key)
        if cached is None or cached[0] is not plan:
            if isinstance(plan, Scan):
                has = getattr(self._db, "has_columnar", None)
                value = bool(has is not None and has(plan.name))
            else:
                children = plan.children()
                value = bool(children) and all(
                    self.runs_encoded(child) for child in children
                )
            cached = (plan, value)
            self._encoded[key] = cached
        return cached[1]

    def _attribute_stats(self, plan: Plan, attr: str) -> Optional[AttributeStats]:
        """The base-relation statistics backing ``attr`` at this node."""
        if isinstance(plan, Scan):
            entry = self._catalog.get(plan.name)
            return None if entry is None else entry.attribute(attr)
        if isinstance(plan, Rename):
            reverse = {new: old for old, new in plan.mapping.items()}
            return self._attribute_stats(plan.child, reverse.get(attr, attr))
        if isinstance(plan, (SelectEq, SelectPred, Project)):
            return self._attribute_stats(plan.child, attr)
        if isinstance(plan, (Join, Union, Difference)):
            for side in (plan.left, plan.right):
                if attr in self._db._heading_of(side):
                    found = self._attribute_stats(side, attr)
                    if found is not None:
                        return found
        return None

    def distinct(self, plan: Plan, attr: str) -> Optional[float]:
        """Estimated distinct values of ``attr`` in this node's output.

        The base relation's distinct count, capped by the node's own
        estimated cardinality (a 40-row intermediate cannot carry 500
        distinct keys) and collapsed to one when an equality selection
        below this node pins the attribute to a single literal.
        """
        stats = self._attribute_stats(plan, attr)
        if stats is None or stats.distinct <= 0:
            return None
        if self._is_pinned(plan, attr):
            return 1.0
        return min(float(stats.distinct), max(1.0, self.estimate(plan)))

    def _is_pinned(self, plan: Plan, attr: str) -> bool:
        """True when a SelectEq under this node fixes ``attr``'s value."""
        if isinstance(plan, SelectEq):
            if attr in plan.conditions:
                return True
            return self._is_pinned(plan.child, attr)
        if isinstance(plan, (SelectPred, Project)):
            return self._is_pinned(plan.child, attr)
        if isinstance(plan, Rename):
            reverse = {new: old for old, new in plan.mapping.items()}
            return self._is_pinned(plan.child, reverse.get(attr, attr))
        if isinstance(plan, Join):
            # The natural join equates shared attributes, so a pin on
            # either side pins the joined column.
            return any(
                attr in self._db._heading_of(side)
                and self._is_pinned(side, attr)
                for side in (plan.left, plan.right)
            )
        return False

    # -- cardinality ----------------------------------------------------

    def estimate(self, plan: Plan) -> float:
        key = id(plan)
        cached = self._rows.get(key)
        if cached is None or cached[0] is not plan:
            cached = (plan, max(0.0, self._estimate(plan)))
            self._rows[key] = cached
        return cached[1]

    def _estimate(self, plan: Plan) -> float:
        # The execution-feedback overlay wins over every other source:
        # an *observed* cardinality from a prior run of the same shape
        # is strictly better evidence than any estimate derived from
        # (possibly sampled) statistics.  With an empty overlay these
        # lookups miss and the estimates below are byte-identical to
        # the feedback-off planner.
        if isinstance(plan, Scan):
            observed = self._catalog.feedback_rows(plan.name, None)
            if observed is not None:
                return float(observed)
            entry = self._catalog.get(plan.name)
            if entry is not None:
                return float(entry.rows)
            return float(self._db.relation(plan.name).cardinality())
        if isinstance(plan, SelectEq):
            if isinstance(plan.child, Scan):
                observed = self._catalog.feedback_rows(
                    plan.child.name, feedback_key(plan.conditions)
                )
                if observed is not None:
                    return float(observed)
            child_rows = self.estimate(plan.child)
            selectivity = 1.0
            for attr, value in sorted(plan.conditions.items()):
                stats = self._attribute_stats(plan.child, attr)
                if stats is not None:
                    selectivity *= stats.eq_selectivity(value)
                else:
                    selectivity *= _FALLBACK_EQ_SELECTIVITY
            return max(1.0, child_rows * selectivity) if child_rows else 0.0
        if isinstance(plan, SelectPred):
            return max(1.0, self.estimate(plan.child) * _FALLBACK_PRED_SELECTIVITY)
        if isinstance(plan, (Project, Rename)):
            return self.estimate(plan.child)
        if isinstance(plan, Join):
            return self.join_rows(plan.left, plan.right)
        if isinstance(plan, Union):
            return self.estimate(plan.left) + self.estimate(plan.right)
        if isinstance(plan, Difference):
            return self.estimate(plan.left)
        raise TypeError("unknown plan node %r" % (plan,))

    def join_rows(self, left: Plan, right: Plan) -> float:
        """Estimated natural-join output of two subplans.

        ``|L| * |R| / prod(max(d_left(a), d_right(a)))`` over shared
        attributes -- the containment-of-values assumption.  Any shared
        attribute without statistics on either side drops the whole
        estimate to the heuristic ``max(|L|, |R|)`` bound, so partial
        catalogs never mix formulas silently.
        """
        left_rows = self.estimate(left)
        right_rows = self.estimate(right)
        shared = self._db._heading_of(left).common(self._db._heading_of(right))
        if not shared:
            return left_rows * right_rows  # cartesian
        divisor = 1.0
        for attr in shared:
            left_distinct = self.distinct(left, attr)
            right_distinct = self.distinct(right, attr)
            if left_distinct is None or right_distinct is None:
                return float(max(left_rows, right_rows))
            divisor *= max(left_distinct, right_distinct, 1.0)
        return max(1.0, left_rows * right_rows / divisor)

    # -- cost -----------------------------------------------------------

    def cost(self, plan: Plan) -> float:
        """Total estimated cost (weighted rows) of executing ``plan``."""
        key = id(plan)
        cached = self._costs.get(key)
        if cached is None or cached[0] is not plan:
            cached = (plan, self._cost(plan))
            self._costs[key] = cached
        return cached[1]

    def _cost(self, plan: Plan) -> float:
        rows = self.estimate(plan)
        columnar = self.runs_encoded(plan)
        if isinstance(plan, Scan):
            return rows * _COST_SCAN
        if isinstance(plan, SelectEq):
            per_row = _COST_COLUMNAR_SELECT_EQ if columnar else _COST_SELECT_EQ
            return (self.cost(plan.child)
                    + self.estimate(plan.child) * per_row
                    + rows * _COST_OUT_ROW)
        if isinstance(plan, SelectPred):
            # An opaque predicate pays per-row Python on either backend.
            return (self.cost(plan.child)
                    + self.estimate(plan.child) * _COST_SELECT_PRED
                    + rows * _COST_OUT_ROW)
        if isinstance(plan, Project):
            per_row = _COST_COLUMNAR_PROJECT if columnar else _COST_RESCOPE
            return (self.cost(plan.child)
                    + self.estimate(plan.child) * per_row
                    + rows * _COST_OUT_ROW)
        if isinstance(plan, Rename):
            per_row = _COST_COLUMNAR_RENAME if columnar else _COST_RESCOPE
            return (self.cost(plan.child)
                    + self.estimate(plan.child) * per_row
                    + rows * _COST_OUT_ROW)
        if isinstance(plan, Join):
            return (self.cost(plan.left) + self.cost(plan.right)
                    + self._join_step(plan.left, plan.right, rows))
        if isinstance(plan, (Union, Difference)):
            return (self.cost(plan.left) + self.cost(plan.right)
                    + (self.estimate(plan.left) + self.estimate(plan.right))
                    * _COST_SET_MERGE
                    + rows * _COST_OUT_ROW)
        raise TypeError("unknown plan node %r" % (plan,))

    def _join_step(self, left: Plan, right: Plan, out_rows: float) -> float:
        """The join-step cost between two subplans, backend-aware.

        Both sides columnar -> merge-intersection of sorted runs; any
        row side -> the hash path (build right, probe left).  Used by
        :meth:`_cost` and the DP enumeration, so a fully encoded
        database steers the join search with merge economics.
        """
        if self.runs_encoded(left) and self.runs_encoded(right):
            return self.merge_join_step_cost(
                self.estimate(left), self.estimate(right), out_rows
            )
        return self.join_step_cost(
            self.estimate(left), self.estimate(right), out_rows
        )

    @staticmethod
    def join_step_cost(left_rows: float, right_rows: float,
                       out_rows: float) -> float:
        """One hash join step: probe left, build right, emit out.

        ``relative_product`` buckets its *second* operand, so build
        cost lands on the right input -- which is why a cheaper plan
        puts the smaller side right, recovering the old build-side
        swap as a special case of cost comparison.
        """
        return (left_rows * _COST_JOIN_PROBE
                + right_rows * _COST_JOIN_BUILD
                + out_rows * _COST_OUT_ROW)

    @staticmethod
    def merge_join_step_cost(left_rows: float, right_rows: float,
                             out_rows: float) -> float:
        """One merge join step over two sorted runs.

        Symmetric in its inputs (both sides are walked once; neither
        builds anything), which is exactly why it undercuts the hash
        path: no build side, no per-probe bucket chasing.
        """
        return ((left_rows + right_rows) * _COST_MERGE_JOIN_INPUT
                + out_rows * _COST_OUT_ROW)


# ----------------------------------------------------------------------
# Join-order enumeration
# ----------------------------------------------------------------------


def reorder_joins(plan: Plan, db: Database,
                  estimator: Optional[CardinalityEstimator] = None) -> Plan:
    """Reorder every maximal join region of ``plan`` by estimated cost.

    Walks the tree; each contiguous cluster of Join nodes is flattened
    to its leaves (which are recursively reordered first) and rebuilt
    bottom-up: exact bushy DP up to :data:`DP_MAX_RELATIONS` leaves,
    greedy smallest-result-first beyond that or past the step budget.
    Non-join operators are preserved in place, so selections already
    pushed into join inputs stay exactly where the rewrite passes put
    them.
    """
    if estimator is None:
        estimator = CardinalityEstimator(db)
    return _reorder(plan, db, estimator)


def _reorder(plan: Plan, db: Database, est: CardinalityEstimator) -> Plan:
    if isinstance(plan, Scan):
        return plan
    if isinstance(plan, Join):
        leaves = []
        _flatten(plan, leaves)
        leaves = [_reorder(leaf, db, est) for leaf in leaves]
        return _order_leaves(leaves, db, est)
    if isinstance(plan, SelectEq):
        return SelectEq(_reorder(plan.child, db, est), plan.conditions)
    if isinstance(plan, SelectPred):
        return SelectPred(
            _reorder(plan.child, db, est), plan.predicate, plan.label
        )
    if isinstance(plan, Project):
        return Project(_reorder(plan.child, db, est), plan.attrs)
    if isinstance(plan, Rename):
        return Rename(_reorder(plan.child, db, est), plan.mapping)
    if isinstance(plan, Union):
        return Union(_reorder(plan.left, db, est), _reorder(plan.right, db, est))
    if isinstance(plan, Difference):
        return Difference(
            _reorder(plan.left, db, est), _reorder(plan.right, db, est)
        )
    raise TypeError("unknown plan node %r" % (plan,))


def _flatten(plan: Plan, leaves: List[Plan]) -> None:
    """Collect the non-Join leaves of a maximal Join subtree."""
    if isinstance(plan, Join):
        _flatten(plan.left, leaves)
        _flatten(plan.right, leaves)
    else:
        leaves.append(plan)


def _record_search(kind: str) -> None:
    if _obs_enabled():
        _metrics.registry().counter(
            "repro_opt_join_search_total",
            "Join-order searches by strategy.", ("strategy",),
        ).inc(strategy=kind)


def _order_leaves(leaves: List[Plan], db: Database,
                  est: CardinalityEstimator) -> Plan:
    if len(leaves) == 1:
        return leaves[0]
    if len(leaves) > DP_MAX_RELATIONS:
        _record_search("greedy")
        return _greedy(leaves, db, est)
    ordered = _dp(leaves, db, est)
    if ordered is None:
        _record_search("greedy_budget")
        return _greedy(leaves, db, est)
    _record_search("dp")
    return ordered


def _connected(db: Database, left: Plan, right: Plan) -> bool:
    return bool(
        db._heading_of(left).common(db._heading_of(right))
    )


def _dp(leaves: List[Plan], db: Database,
        est: CardinalityEstimator) -> Optional[Plan]:
    """Bushy dynamic programming over the join lattice.

    ``best[mask]`` holds ``(cost, plan)`` for the leaf subset encoded
    by ``mask``.  Cells are filled level by level (subset cardinality
    order); each level passes a governor checkpoint so a deadline or
    budget can cancel the search mid-lattice, and the step counter
    degrades to greedy (return ``None``) past
    :data:`DP_STEP_BUDGET` candidate splits.
    """
    count = len(leaves)
    best: Dict[int, Tuple[float, Plan]] = {}
    for index, leaf in enumerate(leaves):
        best[1 << index] = (est.cost(leaf), leaf)
    steps = 0
    # Group masks by popcount so the lattice fills strictly bottom-up.
    by_level: Dict[int, List[int]] = {}
    for mask in range(1, 1 << count):
        by_level.setdefault(bin(mask).count("1"), []).append(mask)
    for level in range(2, count + 1):
        _gov_checkpoint("optimizer.dp")
        for mask in by_level.get(level, ()):
            candidates: List[Tuple[float, Plan]] = []
            cartesian: List[Tuple[float, Plan]] = []
            submask = (mask - 1) & mask
            while submask:
                rest = mask ^ submask
                if rest and submask in best and rest in best:
                    steps += 1
                    if steps > DP_STEP_BUDGET:
                        return None
                    left_cost, left_plan = best[submask]
                    right_cost, right_plan = best[rest]
                    out_rows = est.join_rows(left_plan, right_plan)
                    total = (left_cost + right_cost
                             + est._join_step(left_plan, right_plan, out_rows))
                    bucket = (
                        candidates
                        if _connected(db, left_plan, right_plan)
                        else cartesian
                    )
                    bucket.append((total, Join(left_plan, right_plan)))
                submask = (submask - 1) & mask
            # Cartesian splits only when the cell has no connected one.
            pool = candidates or cartesian
            if pool:
                best[mask] = min(pool, key=lambda item: item[0])
    full = (1 << count) - 1
    return best[full][1] if full in best else None


def _greedy(leaves: List[Plan], db: Database,
            est: CardinalityEstimator) -> Plan:
    """Smallest-estimated-result-first pairing (connected preferred).

    O(n^3) and deterministic: at each step join the pair with the
    smallest estimated output (ties to the earliest pair in input
    order), placing the smaller input on the build (right) side --
    the old single-swap heuristic generalized to n relations.
    """
    working = list(leaves)
    while len(working) > 1:
        _gov_checkpoint("optimizer.dp")
        best_pair: Optional[Tuple[int, int]] = None
        best_rows = 0.0
        best_connected = False
        for i in range(len(working)):
            for j in range(i + 1, len(working)):
                connected = _connected(db, working[i], working[j])
                rows = est.join_rows(working[i], working[j])
                better = (
                    best_pair is None
                    or (connected and not best_connected)
                    or (connected == best_connected and rows < best_rows)
                )
                if better:
                    best_pair, best_rows = (i, j), rows
                    best_connected = connected
        i, j = best_pair  # type: ignore[misc]
        left, right = working[i], working[j]
        if est.estimate(left) < est.estimate(right):
            left, right = right, left  # smaller side builds (right)
        joined = Join(left, right)
        working = [
            node for k, node in enumerate(working) if k not in (i, j)
        ] + [joined]
    return working[0]


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------


def explain_analyze(db: Database, plan: Plan,
                    optimized: bool = True) -> Tuple[Any, str]:
    """Execute a plan and render per-node ``est_rows`` vs ``actual_rows``.

    Returns ``(result_relation, text)``.  The text mirrors
    ``Plan.explain()`` with one measurement suffix per line plus a
    closing q-error summary -- the plan-quality report the E23
    experiment records.  With ``optimized=True`` the plan goes through
    :func:`repro.relational.optimizer.optimize` first (which consults
    the catalog exactly as production execution would).
    """
    if optimized:
        from repro.relational.optimizer import optimize

        plan = optimize(plan, db)
    est = CardinalityEstimator(db)
    lines: List[str] = []
    errors: List[float] = []
    # Execute bottom-up but render top-down: collect actuals first.
    actuals: Dict[int, int] = {}

    def execute(node: Plan) -> Any:
        inputs = [execute(child) for child in node.children()]
        result = db.execute_node(node, inputs)
        actuals[id(node)] = result.cardinality()
        return result

    result = _materialize(execute(plan))

    def render(node: Plan, indent: int) -> None:
        estimated = est.estimate(node)
        actual = actuals[id(node)]
        error = qerror(estimated, actual)
        errors.append(error)
        lines.append(
            "%s%-44s est_rows=%-8d actual_rows=%-8d q=%.2f"
            % ("  " * indent, node.describe(), int(round(estimated)),
               actual, error)
        )
        for child in node.children():
            render(child, indent + 1)

    render(plan, 0)
    worst = max(errors)
    mean = sum(errors) / len(errors)
    lines.append(
        "q-error: max=%.2f mean=%.2f over %d nodes (%s)"
        % (worst, mean, len(errors),
           "stats" if est.has_stats(plan) else "heuristic fallback")
    )
    if _obs_enabled():
        registry = _metrics.registry()
        for error in errors:
            registry.histogram(
                "repro_opt_qerror",
                "Per-node q-error of executed plans.",
                buckets=(1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0),
            ).observe(error)
    return result, "\n".join(lines)
