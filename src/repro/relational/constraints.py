"""Integrity constraints and a transactional table.

Section 1 of the paper claims extended set processing "allows building
intrinsically reliable systems".  The executable content of that claim
is that integrity rules are *set equations* checked by the same kernel
operations that run queries:

* a **key constraint** holds when projecting onto the key loses no
  rows -- ``|D_key(R)| == |R|``;
* a **foreign-key constraint** holds when the referencing rows survive
  a semijoin (Def 7.6 restriction) against the referenced relation --
  the violating rows are literally ``R ~ (R |_key S)``;
* a **check constraint** is separation by predicate.

:class:`Table` wraps a relation with declared constraints and applies
every mutation copy-on-write: the new row set is validated *before*
the table's pointer moves, so a failed insert/delete/update leaves the
visible state untouched (all-or-nothing at statement granularity).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError, XSTError
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.builders import xrecord, xset
from repro.xst.domain import sigma_domain
from repro.xst.restrict import sigma_restrict
from repro.xst.xset import XSet

__all__ = [
    "IntegrityError",
    "KeyConstraint",
    "ForeignKeyConstraint",
    "CheckConstraint",
    "Table",
]


class IntegrityError(XSTError, ValueError):
    """A mutation would violate a declared constraint."""


def _attribute_identity(attrs: Sequence[str]) -> XSet:
    return XSet((attr, attr) for attr in attrs)


class KeyConstraint:
    """Attributes that must determine rows uniquely."""

    def __init__(self, attrs: Sequence[str], name: str = ""):
        self.attrs = tuple(attrs)
        self.name = name or "key(%s)" % ", ".join(self.attrs)

    def check(self, relation: Relation) -> None:
        relation.heading.require(self.attrs)
        keys = sigma_domain(relation.rows, _attribute_identity(self.attrs))
        if len(keys) != len(relation.rows):
            raise IntegrityError(
                "%s violated: %d rows share %d distinct keys"
                % (self.name, len(relation.rows), len(keys))
            )

    def __repr__(self) -> str:
        return "KeyConstraint(%s)" % ", ".join(self.attrs)


class ForeignKeyConstraint:
    """Referencing attributes must resolve in a referenced table.

    ``referenced`` is a callable returning the current referenced
    :class:`Relation`, so the constraint always checks against live
    state rather than a snapshot.
    """

    def __init__(
        self,
        attrs: Sequence[str],
        referenced: Callable[[], Relation],
        referenced_attrs: Optional[Sequence[str]] = None,
        name: str = "",
    ):
        self.attrs = tuple(attrs)
        self.referenced = referenced
        self.referenced_attrs = tuple(referenced_attrs or attrs)
        if len(self.attrs) != len(self.referenced_attrs):
            raise SchemaError("foreign key attribute lists differ in length")
        self.name = name or "fk(%s)" % ", ".join(self.attrs)

    def violations(self, relation: Relation) -> Relation:
        """The referencing rows with no partner: ``R ~ (R |_key S)``."""
        relation.heading.require(self.attrs)
        target = self.referenced()
        target.heading.require(self.referenced_attrs)
        # Re-scope the referenced keys into the referencing alphabet.
        key_sigma = XSet(zip(self.referenced_attrs, self.attrs))
        target_keys = sigma_domain(target.rows, key_sigma)
        surviving = sigma_restrict(
            relation.rows, target_keys, _attribute_identity(self.attrs)
        )
        return Relation(relation.heading, relation.rows - surviving)

    def check(self, relation: Relation) -> None:
        dangling = self.violations(relation)
        if dangling:
            example = next(iter(dangling.iter_dicts()))
            raise IntegrityError(
                "%s violated by %d rows, e.g. %r"
                % (self.name, dangling.cardinality(), example)
            )

    def __repr__(self) -> str:
        return "ForeignKeyConstraint(%s -> %s)" % (
            ", ".join(self.attrs),
            ", ".join(self.referenced_attrs),
        )


class CheckConstraint:
    """A row predicate every row must satisfy."""

    def __init__(self, predicate: Callable[[Dict[str, Any]], bool], name: str):
        self.predicate = predicate
        self.name = name

    def check(self, relation: Relation) -> None:
        for row in relation.iter_dicts():
            if not self.predicate(row):
                raise IntegrityError(
                    "check %r violated by %r" % (self.name, row)
                )

    def __repr__(self) -> str:
        return "CheckConstraint(%s)" % self.name


class Table:
    """A mutable, constraint-guarded view over immutable relations.

    Every mutation builds a candidate relation, validates it against
    all constraints, and only then replaces the current state -- a
    failed statement changes nothing.  The underlying relations remain
    immutable values, so old states can be held, compared or diffed
    for free (:meth:`snapshot`).
    """

    def __init__(
        self,
        names: Sequence[str],
        rows: Iterable[Mapping[str, Any]] = (),
        constraints: Sequence[object] = (),
    ):
        self._heading = names if isinstance(names, Heading) else Heading(names)
        self._constraints: List[object] = list(constraints)
        self._deferred = False
        candidate = Relation.from_dicts(self._heading, rows)
        self._validate(candidate)
        self._current = candidate

    # -- constraint plumbing --------------------------------------------

    def add_constraint(self, constraint: object) -> None:
        """Declare a constraint; current rows must already satisfy it."""
        constraint.check(self._current)
        self._constraints.append(constraint)

    def _validate(self, candidate: Relation) -> None:
        if self._deferred:
            return
        for constraint in self._constraints:
            constraint.check(candidate)

    def defer_validation(self, deferred: bool) -> None:
        """Suspend/resume per-statement checking (transactions use this).

        While deferred, mutations apply without constraint checks;
        call :meth:`check_now` (or let the transaction manager do it
        at commit) to validate the accumulated state.
        """
        self._deferred = bool(deferred)

    def check_now(self) -> None:
        """Validate the current state against every constraint."""
        for constraint in self._constraints:
            constraint.check(self._current)

    @property
    def constraints(self) -> Tuple[object, ...]:
        return tuple(self._constraints)

    # -- state ------------------------------------------------------------

    @property
    def heading(self) -> Heading:
        return self._heading

    def snapshot(self) -> Relation:
        """The current state as an immutable relation value."""
        return self._current

    def __len__(self) -> int:
        return self._current.cardinality()

    # -- mutations ----------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> None:
        new_row = Relation.from_dicts(self._heading, [row])
        candidate = Relation(self._heading, self._current.rows | new_row.rows)
        if candidate.cardinality() == self._current.cardinality():
            raise IntegrityError("row already present: %r" % (dict(row),))
        self._validate(candidate)
        self._current = candidate

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """All-or-nothing bulk insert; returns the number added."""
        addition = Relation.from_dicts(self._heading, rows)
        candidate = Relation(self._heading, self._current.rows | addition.rows)
        added = candidate.cardinality() - self._current.cardinality()
        self._validate(candidate)
        self._current = candidate
        return added

    def delete(self, conditions: Mapping[str, Any]) -> int:
        """Delete rows matching attribute equalities; returns the count."""
        attrs = self._heading.require(conditions)
        key = xset([xrecord({attr: conditions[attr] for attr in attrs})])
        doomed = sigma_restrict(
            self._current.rows, key, _attribute_identity(attrs)
        )
        candidate = Relation(self._heading, self._current.rows - doomed)
        self._validate(candidate)
        removed = self._current.cardinality() - candidate.cardinality()
        self._current = candidate
        return removed

    def update(
        self,
        conditions: Mapping[str, Any],
        changes: Mapping[str, Any],
    ) -> int:
        """Set attributes on matching rows; returns rows changed."""
        self._heading.require(changes)
        attrs = self._heading.require(conditions)
        key = xset([xrecord({attr: conditions[attr] for attr in attrs})])
        matched = sigma_restrict(
            self._current.rows, key, _attribute_identity(attrs)
        )
        if not matched:
            return 0
        rewritten = []
        for row, _ in matched.pairs():
            record = dict(row.as_record())
            record.update(changes)
            rewritten.append(xrecord(record))
        candidate_rows = (self._current.rows - matched) | xset(rewritten)
        candidate = Relation(self._heading, candidate_rows)
        self._validate(candidate)
        changed = len(matched)
        self._current = candidate
        return changed

    def __repr__(self) -> str:
        return "Table(%r, %d rows, %d constraints)" % (
            self._heading, len(self), len(self._constraints)
        )
