"""Crash-safe durability: a checksummed write-ahead log.

The 1977 programme promises *intrinsically reliable* backend systems,
and PR 1 made network failures reproducible on demand.  This module
extends that discipline to the remaining failure class -- process
crashes and torn writes -- with the classic database answer sized to
this reproduction: because relations are immutable values, a redo log
of *relation deltas* plus periodic snapshots is almost free.

Three pieces:

* :class:`WriteAheadLog` -- an append-only file of length-prefixed,
  CRC32-checksummed frames, each framing one canonically-serialized
  XST record.  Two record kinds matter to recovery: ``commit`` (one
  atomic frame per transaction, carrying per-table inserted/deleted
  row sets) and ``checkpoint`` (a marker that the store held the full
  state as of this point).  Appends optionally fsync, so a commit is
  durable the moment :meth:`~WriteAheadLog.append` returns.

* Recovery predicates -- :meth:`WriteAheadLog.scan` reads a log
  tolerantly and classifies its tail: an *incomplete* final frame is
  a **torn tail** (the expected residue of a crash mid-append; it is
  truncated and the log is prefix-complete), while a checksum failure
  on a *complete* frame is **corruption** and raises the typed
  :class:`CorruptLogError` -- a torn write can never masquerade as a
  shorter valid log, and flipped bits can never replay.

* :class:`CrashPoint` -- the deterministic crash-injection shim, in
  the spirit of :class:`repro.relational.faults.FaultPlan`: a writer
  budget (bytes, write calls, or fsyncs) that lets exactly that much
  I/O reach the file and then raises :class:`SimulatedCrashError`,
  leaving the torn prefix behind exactly as a power cut would.
  Seeded schedules come from :meth:`FaultPlan.crash
  <repro.relational.faults.FaultPlan.crash>` /
  :meth:`FaultPlan.crash_sweep
  <repro.relational.faults.FaultPlan.crash_sweep>`.

The replay rule that makes recovery robust even to crashes *during a
checkpoint*: applying a commit delta is last-touch-wins
(``state = (state - deleted) | inserted``), so replaying the commit
suffix after the last durable checkpoint record onto any per-table
snapshot at least that old -- mixed vintages included -- lands on
exactly the state of the last durable commit.  The proof is spelled
out in ``docs/durability.md``.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import XSTError, notify_error
from repro.xst.builders import xrecord, xtuple
from repro.xst.serialization import dumps, loads
from repro.xst.xset import XSet

__all__ = [
    "CorruptLogError",
    "CorruptSegmentError",
    "SimulatedCrashError",
    "CrashPoint",
    "LogScan",
    "WriteAheadLog",
    "COMMIT",
    "CHECKPOINT",
    "EPOCH",
]

MAGIC = b"XSTWAL1\n"
_FRAME = struct.Struct(">II")  # payload length, CRC32(payload)

#: Record kinds understood by recovery.
COMMIT = "commit"
CHECKPOINT = "checkpoint"
#: Shard-map epoch swings are logged for audit (``repro fsck``, the
#: flight recorder) but carry no row data: recovery's replay loop only
#: applies COMMIT records, so EPOCH markers are read and skipped.
EPOCH = "epoch"


class CorruptLogError(XSTError, ValueError):
    """A complete log frame failed its checksum (mid-log corruption).

    Distinct from a torn tail: a torn tail is an *incomplete* final
    frame, the normal residue of a crash mid-append, and recovery
    silently truncates it.  Corruption means bytes inside the valid
    prefix changed, so no prefix of the log can be trusted blindly
    and recovery refuses to guess.

    Construction notifies the flight-recorder hook (see
    :func:`repro.errors.set_error_listener`), matching the
    availability family: corrupt durable state is exactly the failure
    an incident snapshot should capture context for.
    """

    def __init__(self, *args):
        super().__init__(*args)
        notify_error(self)


class CorruptSegmentError(XSTError, ValueError):
    """A segment file's footer checksum or framing failed."""


class SimulatedCrashError(XSTError, RuntimeError):
    """The process 'died' at an injected crash point.

    Raised by :class:`CrashPoint` writers once their I/O budget is
    exhausted; everything written before the crash point is on disk
    (torn final write included), everything after is lost -- exactly
    the state a real crash leaves behind.
    """


class _CrashFile:
    """A file wrapper that spends a shared :class:`CrashPoint` budget."""

    def __init__(self, fh, point: "CrashPoint"):
        self._fh = fh
        self._point = point

    def write(self, data: bytes) -> int:
        allowed = self._point._admit_write(len(data))
        if allowed >= len(data):
            return self._fh.write(data)
        # Torn write: the prefix reaches the disk, then the lights go out.
        if allowed:
            self._fh.write(data[:allowed])
        self._fh.flush()
        raise SimulatedCrashError(
            "crash point reached after %d of %d bytes" % (allowed, len(data))
        )

    def sync(self) -> None:
        self._point._admit_sync()
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except (OSError, ValueError):  # pragma: no cover - odd filesystems
            pass

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "_CrashFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CrashPoint:
    """A deterministic I/O budget: die after N bytes/writes/fsyncs.

    Use as the ``opener`` of a :class:`WriteAheadLog` or
    :class:`~repro.relational.disk.DiskRelationStore`; every file
    opened through one CrashPoint draws down the *same* budget, so a
    single schedule spans log appends and segment rewrites alike::

        point = CrashPoint(after_bytes=517)
        log = WriteAheadLog(path, opener=point.open)
        ...                      # 517 bytes land, then
        SimulatedCrashError      # the 518th write byte "crashes"

    Budgets compose: the first one exhausted triggers the crash.  A
    CrashPoint with no budgets never fires (pass-through).
    """

    def __init__(
        self,
        after_bytes: Optional[int] = None,
        after_writes: Optional[int] = None,
        after_syncs: Optional[int] = None,
    ):
        for name, value in (("after_bytes", after_bytes),
                            ("after_writes", after_writes),
                            ("after_syncs", after_syncs)):
            if value is not None and value < 0:
                raise ValueError("%s must be non-negative" % name)
        self.after_bytes = after_bytes
        self.after_writes = after_writes
        self.after_syncs = after_syncs
        self.bytes_written = 0
        self.writes = 0
        self.syncs = 0

    def _admit_write(self, size: int) -> int:
        """How many of ``size`` bytes may land; counts the attempt."""
        if (
            self.after_writes is not None
            and self.writes >= self.after_writes
        ):
            raise SimulatedCrashError(
                "crash point reached after %d writes" % self.writes
            )
        self.writes += 1
        allowed = size
        if self.after_bytes is not None:
            allowed = min(allowed, self.after_bytes - self.bytes_written)
        self.bytes_written += max(0, allowed)
        return allowed

    def _admit_sync(self) -> None:
        if self.after_syncs is not None and self.syncs >= self.after_syncs:
            raise SimulatedCrashError(
                "crash point reached after %d fsyncs" % self.syncs
            )
        self.syncs += 1

    def open(self, path: str, mode: str = "ab") -> _CrashFile:
        """The injectable opener: a real file behind the budget."""
        return _CrashFile(open(path, mode), self)

    def __repr__(self) -> str:
        return "CrashPoint(bytes=%r, writes=%r, syncs=%r)" % (
            self.after_bytes, self.after_writes, self.after_syncs
        )


class LogScan:
    """The tolerant reading of one log file.

    ``records`` holds ``(lsn, record)`` pairs for every complete,
    checksum-valid frame (``record`` is ``None`` when the scan was
    asked not to decode payloads).  ``valid_bytes`` is the length of
    the durable prefix; ``torn_bytes`` counts trailing bytes of an
    incomplete final frame; ``corrupt_at`` is the byte offset of a
    complete-but-checksum-failed frame, or ``None`` for a clean log.
    """

    __slots__ = ("records", "valid_bytes", "torn_bytes", "corrupt_at",
                 "total_bytes")

    def __init__(self, records, valid_bytes, torn_bytes, corrupt_at,
                 total_bytes):
        self.records: List[Tuple[int, Optional[XSet]]] = records
        self.valid_bytes = valid_bytes
        self.torn_bytes = torn_bytes
        self.corrupt_at = corrupt_at
        self.total_bytes = total_bytes

    @property
    def lsn(self) -> int:
        """The last durable log sequence number (0 for an empty log)."""
        return len(self.records)

    def last_checkpoint(self) -> Tuple[int, Optional[XSet]]:
        """(index into records, record) of the last checkpoint, or (-1, None)."""
        for index in range(len(self.records) - 1, -1, -1):
            record = self.records[index][1]
            if record is not None and record_kind(record) == CHECKPOINT:
                return index, record
        return -1, None

    def __repr__(self) -> str:
        return "LogScan(%d records, %d valid bytes, %d torn, corrupt_at=%r)" % (
            len(self.records), self.valid_bytes, self.torn_bytes,
            self.corrupt_at,
        )


def record_kind(record: XSet) -> str:
    """The ``kind`` field of a log record."""
    kinds = record.elements_at("kind")
    if len(kinds) != 1 or not isinstance(kinds[0], str):
        raise CorruptLogError("log record has no kind: %r" % (record,))
    return kinds[0]


def _field(record: XSet, name: str) -> Any:
    values = record.elements_at(name)
    if len(values) != 1:
        raise CorruptLogError(
            "log record field %r missing or ambiguous" % (name,)
        )
    return values[0]


def commit_tx_id(record: XSet) -> int:
    """The transaction id a commit record carries.

    With a :class:`~repro.relational.tx.TransactionManager` attached,
    this number *is* the MVCC commit version: the durable log and the
    snapshot-isolation history share one numbering.
    """
    return _field(record, "tx")


def commit_record(tx_id: int,
                  changes: Mapping[str, Tuple[Sequence[str], XSet, XSet]]
                  ) -> XSet:
    """Build one atomic commit record.

    ``changes`` maps table name to ``(heading names, inserted rows,
    deleted rows)``; the heading rides along so recovery can rebuild
    tables that were born after the last checkpoint.
    """
    entries = [
        xrecord({
            "table": name,
            "heading": xtuple(list(heading)),
            "inserted": inserted,
            "deleted": deleted,
        })
        for name, (heading, inserted, deleted) in sorted(changes.items())
    ]
    return xrecord({"kind": COMMIT, "tx": tx_id, "changes": xtuple(entries)})


def checkpoint_record(table_names: Sequence[str]) -> XSet:
    """Build a checkpoint marker listing the snapshotted tables."""
    return xrecord({
        "kind": CHECKPOINT,
        "tables": xtuple(sorted(table_names)),
    })


def commit_changes(record: XSet) -> List[Tuple[str, Tuple[str, ...], XSet, XSet]]:
    """Decode a commit record into (table, heading, inserted, deleted)."""
    out = []
    for entry in _field(record, "changes").as_tuple():
        heading = tuple(_field(entry, "heading").as_tuple())
        out.append((
            _field(entry, "table"),
            heading,
            _field(entry, "inserted"),
            _field(entry, "deleted"),
        ))
    return out


def checkpoint_tables(record: XSet) -> Tuple[str, ...]:
    """Decode a checkpoint record into its table names."""
    return tuple(_field(record, "tables").as_tuple())


def epoch_record(table: str, epoch: int) -> XSet:
    """Build a shard-epoch marker: ``table`` swung to ``epoch``.

    Appended (and fsynced, like any record) when a rebalance, split,
    or merge installs a new shard map, giving the log a durable,
    ordered account of every placement generation.  Replay ignores
    these markers -- placement itself recovers from the store's
    ``shards.map`` catalog -- but fsck and post-mortem tooling read
    them to date a torn swing against the commits around it.
    """
    return xrecord({"kind": EPOCH, "table": table, "epoch": epoch})


def epoch_change(record: XSet) -> Tuple[str, int]:
    """Decode an epoch marker into ``(table, epoch)``."""
    return _field(record, "table"), _field(record, "epoch")


def scan_bytes(data: bytes, decode: bool = True) -> LogScan:
    """Classify raw log bytes: valid prefix, torn tail, or corruption.

    With ``decode=False`` payloads are CRC-verified but not
    deserialized (records carry ``None``), which makes exhaustive
    crash-offset sweeps cheap.
    """
    total = len(data)
    if total == 0:
        return LogScan([], 0, 0, None, 0)
    if total < len(MAGIC):
        # A crash during the very first header write.
        if MAGIC.startswith(data):
            return LogScan([], 0, total, None, total)
        raise CorruptLogError("log header is not a WAL header")
    if data[: len(MAGIC)] != MAGIC:
        raise CorruptLogError("log header is not a WAL header")
    records: List[Tuple[int, Optional[XSet]]] = []
    offset = len(MAGIC)
    while offset < total:
        if total - offset < _FRAME.size:
            return LogScan(records, offset, total - offset, None, total)
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if total - start < length:
            return LogScan(records, offset, total - offset, None, total)
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            return LogScan(records, offset, 0, offset, total)
        if decode:
            try:
                record = loads(payload)
            except XSTError:
                return LogScan(records, offset, 0, offset, total)
            records.append((len(records) + 1, record))
        else:
            records.append((len(records) + 1, None))
        offset = start + length
    return LogScan(records, offset, 0, None, total)


class WriteAheadLog:
    """An append-only, checksummed, length-prefixed transaction log.

    Frame format after the 8-byte file header (``XSTWAL1\\n``)::

        u32 payload length | u32 CRC32(payload) | payload

    where the payload is the canonical serialization of one XST
    record.  Appends go through an injectable ``opener`` (the
    :class:`CrashPoint` hook) and fsync by default, so a returned LSN
    is durable.

    Opening an existing log truncates any torn tail (crash residue)
    and refuses -- with :class:`CorruptLogError` -- to append past
    mid-log corruption.
    """

    def __init__(
        self,
        path: str,
        sync: bool = True,
        opener: Optional[Callable[[str, str], Any]] = None,
    ):
        self._path = path
        self._sync = sync
        self._opener = opener if opener is not None else _plain_open
        self._fh: Optional[Any] = None
        self._lsn = 0
        if os.path.exists(path):
            scan = self.scan()
            if scan.corrupt_at is not None:
                raise CorruptLogError(
                    "cannot append to %r: corrupt frame at byte %d"
                    % (path, scan.corrupt_at)
                )
            self._lsn = scan.lsn
            if scan.torn_bytes:
                self.truncate_torn_tail(scan)

    @property
    def path(self) -> str:
        return self._path

    @property
    def lsn(self) -> int:
        """The sequence number of the last appended record."""
        return self._lsn

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _ensure_open(self):
        if self._fh is None:
            fresh = not os.path.exists(self._path) or \
                os.path.getsize(self._path) == 0
            self._fh = self._opener(self._path, "ab")
            if fresh:
                self._fh.write(MAGIC)
        return self._fh

    def append(self, record: XSet) -> int:
        """Append one record atomically; returns its LSN.

        The frame is written in a single ``write`` call, so a crash
        either leaves the whole frame (the record is durable) or a
        torn tail that recovery truncates (it never happened).
        """
        payload = dumps(record)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        fh = self._ensure_open()
        fh.write(frame)
        if self._sync:
            _sync_file(fh)
        self._lsn += 1
        return self._lsn

    def commit(self, tx_id: int,
               changes: Mapping[str, Tuple[Sequence[str], XSet, XSet]]
               ) -> int:
        """Append one commit record; see :func:`commit_record`."""
        return self.append(commit_record(tx_id, changes))

    def checkpoint(self, table_names: Sequence[str]) -> int:
        """Append a checkpoint marker *after* the store is durable."""
        return self.append(checkpoint_record(table_names))

    def epoch(self, table: str, epoch: int) -> int:
        """Append a shard-epoch marker; see :func:`epoch_record`."""
        return self.append(epoch_record(table, epoch))

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # Reading and repair
    # ------------------------------------------------------------------

    def _read(self) -> bytes:
        try:
            with open(self._path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def scan(self, decode: bool = True) -> LogScan:
        """Tolerant read: classify the file without modifying it."""
        return scan_bytes(self._read(), decode=decode)

    def replay(self) -> List[XSet]:
        """Every durable record, in order.

        Raises :class:`CorruptLogError` on mid-log corruption; a torn
        tail is silently ignored (truncate it with
        :meth:`truncate_torn_tail`).
        """
        scan = self.scan()
        if scan.corrupt_at is not None:
            raise CorruptLogError(
                "corrupt frame at byte %d of %r"
                % (scan.corrupt_at, self._path)
            )
        return [record for _, record in scan.records]

    def truncate_torn_tail(self, scan: Optional[LogScan] = None) -> int:
        """Trim an incomplete final frame; returns bytes dropped."""
        if scan is None:
            scan = self.scan(decode=False)
        if scan.corrupt_at is not None:
            raise CorruptLogError(
                "corrupt frame at byte %d of %r"
                % (scan.corrupt_at, self._path)
            )
        if not scan.torn_bytes:
            return 0
        self.close()
        with open(self._path, "r+b") as fh:
            fh.truncate(scan.valid_bytes)
        return scan.torn_bytes

    def compact(self) -> int:
        """Drop records before the last checkpoint; returns the count.

        Rewrites the log atomically (temp file + ``os.replace``) so a
        crash mid-compaction leaves the original intact.  The
        checkpoint record itself is kept so recovery still finds its
        replay start.
        """
        records = self.replay()
        start = 0
        for index in range(len(records) - 1, -1, -1):
            if record_kind(records[index]) == CHECKPOINT:
                start = index
                break
        if start == 0:
            return 0
        self.close()
        tmp = self._path + ".tmp"
        fh = self._opener(tmp, "wb")
        try:
            fh.write(MAGIC)
            for record in records[start:]:
                payload = dumps(record)
                fh.write(_FRAME.pack(len(payload), zlib.crc32(payload))
                         + payload)
            _sync_file(fh)
        finally:
            fh.close()
        os.replace(tmp, self._path)
        self._lsn = len(records) - start
        return start

    def __repr__(self) -> str:
        return "WriteAheadLog(%r, lsn=%d)" % (self._path, self._lsn)


def _plain_open(path: str, mode: str):
    return open(path, mode)


def _sync_file(fh) -> None:
    if hasattr(fh, "sync"):
        fh.sync()
        return
    fh.flush()
    try:
        os.fsync(fh.fileno())
    except (OSError, ValueError):  # pragma: no cover - pipes, odd FS
        pass


# ----------------------------------------------------------------------
# Replay: applying commit deltas to relation states
# ----------------------------------------------------------------------

def apply_commit(state: Dict[str, Any], record: XSet) -> None:
    """Apply one commit record to a name->Relation state, in place.

    Last-touch-wins per row: ``rows = (rows - deleted) | inserted``.
    Idempotent enough that replaying a commit suffix onto any equal-
    or-newer checkpoint snapshot converges on the same final state
    (see the module docstring).
    """
    from repro.relational.relation import Relation
    from repro.relational.schema import Heading
    from repro.xst.builders import xset

    for name, heading, inserted, deleted in commit_changes(record):
        current = state.get(name)
        if current is None:
            current = Relation(Heading(list(heading)), xset([]))
        rows = (current.rows - deleted) | inserted
        state[name] = Relation(current.heading, rows)


def recover_state(
    records: Sequence[XSet],
    base: Optional[Dict[str, Any]] = None,
    loader: Optional[Callable[[str], Any]] = None,
) -> Tuple[Dict[str, Any], int]:
    """Replay a record sequence into a name->Relation state.

    Starts from the last checkpoint record (loading each listed table
    through ``loader``) and replays every later commit.  Returns the
    recovered state and the number of commit records replayed.
    """
    state: Dict[str, Any] = dict(base or {})
    start = 0
    for index in range(len(records) - 1, -1, -1):
        if record_kind(records[index]) == CHECKPOINT:
            start = index + 1
            if loader is not None:
                for name in checkpoint_tables(records[index]):
                    state[name] = loader(name)
            break
    replayed = 0
    for record in records[start:]:
        if record_kind(record) == COMMIT:
            apply_commit(state, record)
            replayed += 1
    return state, replayed


def record_recovery_metrics(kind: str, seconds: float, records: int,
                            byte_count: int) -> None:
    """Export one recovery pass through :mod:`repro.obs` (if enabled)."""
    from repro.obs.instrument import record_recovery

    record_recovery(kind, seconds, records, byte_count)
