"""XQL: a small SQL-flavoured surface over the plan algebra.

The 1977 pitch is that a backend's *query language* can compile to
set-theoretic operations whose behavior is provable.  XQL is the
demonstration: a deliberately small SELECT dialect that parses to the
exact plan nodes of :mod:`repro.relational.query`, so every XQL query
runs under both executors and through the optimizer unchanged.

Grammar::

    query   :=  select | analyze
    select  :=  SELECT columns FROM source (JOIN source)*
                [WHERE condition (AND condition)*]
                [GROUP BY names]
                [ORDER BY name [ASC | DESC]]
                [LIMIT number]
                [TIMEOUT seconds]
                [BUDGET rows]
    analyze :=  ANALYZE [relation_name]
    columns :=  '*' | column (',' column)*
    column  :=  name | name AS name | agg '(' name ')' AS name
    agg     :=  COUNT | SUM | AVG | MIN | MAX
    source  :=  relation_name
    condition := name ('=' | '!=' | '<' | '<=' | '>' | '>=') literal

Restrictions (on purpose): joins are natural joins; aggregates require
GROUP BY; literals are integers, floats and quoted strings.  Keywords
are case-insensitive; names are case-sensitive.

``ANALYZE`` collects planner statistics (see
:mod:`repro.relational.stats`) for one relation, or for every relation
when no name is given, and returns a one-row-per-relation summary of
the refreshed catalog.

``TIMEOUT``/``BUDGET`` are the per-query resource-governance clauses:
execution runs inside a :func:`repro.gov.governed` scope with the
given deadline (seconds, fractional allowed) and/or materialized-row
budget, so a runaway query raises a typed
:class:`~repro.errors.DeadlineExceededError` /
:class:`~repro.errors.BudgetExceededError` mid-operator instead of
running unbounded.  Note the distinction from ``LIMIT``: LIMIT trims
the finished answer, BUDGET bounds the rows *materialized while
computing* it.

Usage::

    from repro.relational.sql import run
    run(db, "SELECT name, dname FROM emp JOIN dept WHERE dept = 3")
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import NotationError, SchemaError
from repro.gov.governor import governed
from repro.relational.aggregate import aggregate
from repro.relational.optimizer import optimize
from repro.relational.query import (
    Database,
    Join,
    Plan,
    Project,
    Rename,
    Scan,
    SelectEq,
    SelectPred,
)
from repro.relational.relation import Relation

__all__ = ["parse_query", "compile_query", "run", "run_rows", "Query"]

_TOKEN = re.compile(
    r"""
    (?P<name>[A-Za-z_][A-Za-z_0-9]*) |
    (?P<number>-?\d+\.\d+|-?\d+)     |
    (?P<string>'[^']*')              |
    (?P<op><=|>=|!=|=|<|>)           |
    (?P<punct>[(),*])                |
    (?P<space>\s+)                   |
    (?P<bad>.)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "join", "where", "and", "group", "by", "as",
    "count", "sum", "avg", "min", "max", "order", "asc", "desc", "limit",
    "timeout", "budget", "analyze",
    "create", "materialized", "view", "refresh", "drop",
}

_AGGREGATES = {"count", "sum", "avg", "min", "max"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    out = []
    for match in _TOKEN.finditer(text):
        kind = match.lastgroup
        lexeme = match.group()
        if kind == "space":
            continue
        if kind == "bad":
            raise NotationError(
                "XQL: unexpected character %r at %d" % (lexeme, match.start())
            )
        if kind == "name" and lexeme.lower() in _KEYWORDS:
            out.append(("kw", lexeme.lower()))
        else:
            out.append((kind, lexeme))
    return out


class Query:
    """A parsed XQL query: columns, sources, conditions, grouping."""

    def __init__(self):
        self.star = False
        self.columns: List[Tuple[str, Optional[str]]] = []       # (name, alias)
        self.aggregates: List[Tuple[str, str, str]] = []         # (fn, src, alias)
        self.sources: List[str] = []
        self.conditions: List[Tuple[str, str, Any]] = []          # (attr, op, value)
        self.group_by: List[str] = []
        self.order_by: Optional[Tuple[str, bool]] = None          # (attr, descending)
        self.limit: Optional[int] = None
        self.timeout_s: Optional[float] = None
        self.budget_rows: Optional[int] = None

    def __repr__(self) -> str:
        return "Query(sources=%s, columns=%s, aggregates=%s)" % (
            self.sources, self.columns, self.aggregates
        )


class _Parser:
    def __init__(self, text: str = "", tokens=None):
        self._stream = _tokenize(text) if tokens is None else list(tokens)
        self._position = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._position >= len(self._stream):
            return None
        return self._stream[self._position]

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise NotationError("XQL: unexpected end of query")
        self._position += 1
        return token

    def _expect_kw(self, word: str) -> None:
        kind, lexeme = self._next()
        if kind != "kw" or lexeme != word:
            raise NotationError("XQL: expected %s, found %r" % (word.upper(), lexeme))

    def _expect_name(self) -> str:
        kind, lexeme = self._next()
        if kind != "name":
            raise NotationError("XQL: expected a name, found %r" % (lexeme,))
        return lexeme

    def _at_kw(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token == ("kw", word)

    def parse(self) -> Query:
        query = Query()
        self._expect_kw("select")
        self._columns(query)
        self._expect_kw("from")
        query.sources.append(self._expect_name())
        while self._at_kw("join"):
            self._next()
            query.sources.append(self._expect_name())
        if self._at_kw("where"):
            self._next()
            query.conditions.append(self._condition())
            while self._at_kw("and"):
                self._next()
                query.conditions.append(self._condition())
        if self._at_kw("group"):
            self._next()
            self._expect_kw("by")
            query.group_by.append(self._expect_name())
            while self._peek() == ("punct", ","):
                self._next()
                query.group_by.append(self._expect_name())
        if self._at_kw("order"):
            self._next()
            self._expect_kw("by")
            attr = self._expect_name()
            descending = False
            if self._at_kw("desc"):
                self._next()
                descending = True
            elif self._at_kw("asc"):
                self._next()
            query.order_by = (attr, descending)
        if self._at_kw("limit"):
            self._next()
            kind, literal = self._next()
            if kind != "number" or "." in literal or int(literal) < 0:
                raise NotationError(
                    "XQL: LIMIT needs a non-negative integer, found %r"
                    % (literal,)
                )
            query.limit = int(literal)
        if self._at_kw("timeout"):
            self._next()
            kind, literal = self._next()
            if kind != "number" or float(literal) < 0:
                raise NotationError(
                    "XQL: TIMEOUT needs a non-negative number of seconds, "
                    "found %r" % (literal,)
                )
            query.timeout_s = float(literal)
        if self._at_kw("budget"):
            self._next()
            kind, literal = self._next()
            if kind != "number" or "." in literal or int(literal) < 0:
                raise NotationError(
                    "XQL: BUDGET needs a non-negative integer row count, "
                    "found %r" % (literal,)
                )
            query.budget_rows = int(literal)
        leftover = self._peek()
        if leftover is not None:
            raise NotationError("XQL: trailing input at %r" % (leftover[1],))
        if query.aggregates and not query.group_by:
            raise NotationError("XQL: aggregates require GROUP BY")
        return query

    def _columns(self, query: Query) -> None:
        if self._peek() == ("punct", "*"):
            self._next()
            query.star = True
            return
        self._column(query)
        while self._peek() == ("punct", ","):
            self._next()
            self._column(query)

    def _column(self, query: Query) -> None:
        kind, lexeme = self._next()
        if kind == "kw" and lexeme in _AGGREGATES:
            fn_name = lexeme
            if self._next() != ("punct", "("):
                raise NotationError("XQL: expected ( after %s" % fn_name.upper())
            source = self._expect_name()
            if self._next() != ("punct", ")"):
                raise NotationError("XQL: expected ) in aggregate")
            self._expect_kw("as")
            alias = self._expect_name()
            query.aggregates.append((fn_name, source, alias))
            return
        if kind != "name":
            raise NotationError("XQL: expected a column, found %r" % (lexeme,))
        alias = None
        if self._at_kw("as"):
            self._next()
            alias = self._expect_name()
        query.columns.append((lexeme, alias))

    def _condition(self) -> Tuple[str, str, Any]:
        attr = self._expect_name()
        kind, operator = self._next()
        if kind != "op":
            raise NotationError("XQL: expected an operator, found %r" % (operator,))
        kind, literal = self._next()
        if kind == "number":
            value: Any = float(literal) if "." in literal else int(literal)
        elif kind == "string":
            value = literal[1:-1]
        else:
            raise NotationError("XQL: expected a literal, found %r" % (literal,))
        return (attr, operator, value)


def parse_query(text: str) -> Query:
    """Parse XQL text into a :class:`Query` description."""
    return _Parser(text).parse()


_PREDICATES = {
    "=": lambda left, right: left == right,
    "!=": lambda left, right: left != right,
    "<": lambda left, right: left < right,
    "<=": lambda left, right: left <= right,
    ">": lambda left, right: left > right,
    ">=": lambda left, right: left >= right,
}


def compile_query(query: Query) -> Plan:
    """Lower a parsed query to plan nodes (aggregation handled by run)."""
    plan: Plan = Scan(query.sources[0])
    for source in query.sources[1:]:
        plan = Join(plan, Scan(source))
    equalities = {}
    for attr, operator, value in query.conditions:
        if operator == "=" and attr not in equalities:
            equalities[attr] = value
        else:
            test = _PREDICATES[operator]
            condition = "%s %s %r" % (attr, operator, value)
            plan = SelectPred(
                plan,
                lambda row, a=attr, t=test, v=value: t(row[a], v),
                label=condition,
                # The condition text IS the predicate's semantics, so
                # compiled queries are result-cacheable.
                cache_key=condition,
            )
    if equalities:
        plan = SelectEq(plan, equalities)
    if query.aggregates or query.group_by:
        return plan  # projection/aggregation applied after grouping
    if not query.star:
        renames = {
            name: alias for name, alias in query.columns if alias
        }
        plan = Project(plan, [name for name, _ in query.columns])
        if renames:
            plan = Rename(plan, renames)
    return plan


def _maybe_run_analyze(db: Database, text: str) -> Optional[Relation]:
    """Handle an ANALYZE statement; ``None`` when ``text`` is a SELECT."""
    stream = _tokenize(text)
    if not stream or stream[0] != ("kw", "analyze"):
        return None
    if len(stream) == 1:
        targets = None
    elif len(stream) == 2 and stream[1][0] == "name":
        targets = [stream[1][1]]
    else:
        raise NotationError("XQL: ANALYZE takes at most one relation name")
    analyzed = db.analyze(targets)
    from repro.relational.schema import Heading

    rows = []
    for name in analyzed:
        entry = db.stats.get(name, allow_stale=True)
        rows.append({
            "relation": name,
            "rows": entry.rows,
            "attributes": len(entry.attributes),
        })
    return Relation.from_dicts(
        Heading(["relation", "rows", "attributes"]), rows
    )


def _maybe_run_view_statement(text: str, views) -> Optional[Relation]:
    """Handle CREATE/REFRESH/DROP VIEW; ``None`` for anything else.

    Grammar::

        CREATE [MATERIALIZED] VIEW name AS select
        REFRESH VIEW name
        DROP VIEW name

    View bodies are plain SELECTs (no GROUP BY / ORDER BY / LIMIT /
    TIMEOUT / BUDGET -- a view is a relation-valued plan, and those
    clauses describe result presentation or one execution).  A
    materialized view is computed immediately, so it is fresh -- and
    incrementally maintained, when the catalog has a manager -- from
    the moment the statement returns.
    """
    from repro.relational.schema import Heading

    stream = _tokenize(text)
    if not stream:
        return None
    head = stream[0]
    if head == ("kw", "create"):
        index = 1
        materialized = False
        if index < len(stream) and stream[index] == ("kw", "materialized"):
            materialized = True
            index += 1
        if index >= len(stream) or stream[index] != ("kw", "view"):
            raise NotationError("XQL: expected VIEW after CREATE")
        index += 1
        if index >= len(stream) or stream[index][0] != "name":
            raise NotationError("XQL: CREATE VIEW needs a view name")
        name = stream[index][1]
        index += 1
        if index >= len(stream) or stream[index] != ("kw", "as"):
            raise NotationError("XQL: expected AS in CREATE VIEW")
        index += 1
        _require_views(views, "CREATE VIEW")
        body = _Parser(tokens=stream[index:]).parse()
        if (
            body.aggregates or body.group_by or body.limit is not None
            or body.order_by is not None or body.timeout_s is not None
            or body.budget_rows is not None
        ):
            raise NotationError(
                "XQL: view bodies are plain SELECTs (no GROUP BY, ORDER "
                "BY, LIMIT, TIMEOUT or BUDGET)"
            )
        views.define(name, compile_query(body), materialized=materialized)
        return Relation.from_dicts(
            Heading(["view", "kind", "rows"]),
            [{
                "view": name,
                "kind": "materialized" if materialized else "virtual",
                "rows": views.read(name).cardinality(),
            }],
        )
    if head in (("kw", "refresh"), ("kw", "drop")):
        if (
            len(stream) != 3 or stream[1] != ("kw", "view")
            or stream[2][0] != "name"
        ):
            raise NotationError(
                "XQL: expected %s VIEW name" % head[1].upper()
            )
        name = stream[2][1]
        _require_views(views, "%s VIEW" % head[1].upper())
        if head[1] == "refresh":
            refreshed = views.refresh(name)
            return Relation.from_dicts(
                Heading(["view", "rows"]),
                [{"view": name, "rows": refreshed.cardinality()}],
            )
        views.drop(name)
        return Relation.from_dicts(
            Heading(["view", "dropped"]), [{"view": name, "dropped": 1}]
        )
    return None


def _require_views(views, statement: str) -> None:
    if views is None:
        raise SchemaError(
            "XQL: %s needs a view catalog (pass views=)" % statement
        )


def run(
    db: Database, text: str, optimized: bool = True, views=None
) -> Relation:
    """Parse, compile, (optionally) optimize and execute an XQL query.

    With ``views`` (a :class:`~repro.relational.views.ViewCatalog`)
    the CREATE/REFRESH/DROP VIEW statements work and SELECT sources
    may name views, which resolve through the catalog.
    """
    analyzed = _maybe_run_analyze(db, text)
    if analyzed is not None:
        return analyzed
    handled = _maybe_run_view_statement(text, views)
    if handled is not None:
        return handled
    query = parse_query(text)
    if query.timeout_s is not None or query.budget_rows is not None:
        # TIMEOUT/BUDGET clauses execute the query under a governor so
        # the kernel's cancellation checkpoints can stop it mid-operator.
        with governed(timeout_s=query.timeout_s, max_rows=query.budget_rows):
            return _run_parsed(db, query, optimized, views)
    return _run_parsed(db, query, optimized, views)


def _run_parsed(
    db: Database, query: Query, optimized: bool, views=None
) -> Relation:
    plan = compile_query(query)
    if views is not None:
        db = views.database
        plan = views._resolve_plan(plan)
    if optimized:
        plan = optimize(plan, db)
    result = db.execute(plan)
    if query.aggregates:
        aggregations = {
            alias: (fn_name, source)
            for fn_name, source, alias in query.aggregates
        }
        result = aggregate(result, query.group_by, aggregations)
        if query.columns:
            wanted = [name for name, _ in query.columns] + list(aggregations)
            missing = [
                name for name in (n for n, _ in query.columns)
                if name not in query.group_by
            ]
            if missing:
                raise SchemaError(
                    "XQL: non-grouped columns in aggregate query: %s" % missing
                )
            from repro.relational.algebra import project

            result = project(result, wanted)
    elif query.group_by:
        from repro.relational.algebra import project

        result = project(result, query.group_by)
    if query.limit is not None:
        rows = _ordered_rows(result, query)[: query.limit]
        result = Relation.from_dicts(result.heading, rows)
    return result


def _ordered_rows(relation: Relation, query: Query) -> List[Dict[str, Any]]:
    """Rows as dicts in the query's order (canonical order otherwise)."""
    rows = list(relation.iter_dicts())
    if query.order_by is not None:
        attr, descending = query.order_by
        relation.heading.require([attr])
        rows.sort(key=lambda row: row[attr], reverse=descending)
    return rows


def run_rows(
    db: Database, text: str, optimized: bool = True, views=None
) -> List[Dict[str, Any]]:
    """Like :func:`run`, but returns an ordered list of row dicts.

    A relation is a set and cannot carry row order; when a query says
    ORDER BY, this is the entry point that honors it end to end
    (including LIMIT).  Without ORDER BY the canonical row order is
    used, which is deterministic but not meaningful.
    """
    analyzed = _maybe_run_analyze(db, text)
    if analyzed is not None:
        return list(analyzed.iter_dicts())
    handled = _maybe_run_view_statement(text, views)
    if handled is not None:
        return list(handled.iter_dicts())
    query = parse_query(text)
    relation = run(db, text, optimized=optimized, views=views)
    rows = _ordered_rows(relation, query)
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows
