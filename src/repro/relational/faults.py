"""Deterministic fault injection for the simulated cluster.

The reliability claims of the 1977 programme ("intrinsically reliable
... very large, distributed, backend information systems") are only
testable if failures can be *produced on demand and reproduced
exactly*.  This module is that harness: a :class:`FaultPlan` is a
seeded, inspectable schedule of fault events keyed by the cluster's
operation counter, and a :class:`FaultInjector` applies it through two
hooks that :class:`repro.relational.distributed.Cluster` calls on its
ordinary execution path -- so the production code is exercised
unmodified, with faults arriving at exact, replayable instants.

Event kinds:

* ``kill`` / ``revive`` -- a node becomes unreachable / reachable
  (its storage survives, modeling a crash with durable disks);
* ``delay`` -- a node answers, but every access charges simulated
  latency (visible in ``NetworkStats`` and to query timeouts);
* ``drop`` -- one shipment is lost in flight (the sender retries);
* ``corrupt`` -- one shipment arrives bit-flipped; the receiver's
  checksum comparison detects it and the sender retries.

Determinism: the cluster ticks the injector once per bucket-access
attempt and once per shipment, so for a fixed query sequence the
operation numbering -- hence the entire failure history -- is
bit-identical across runs.  :meth:`FaultPlan.chaos` derives a random
plan from an explicit seed for fuzzing with the same guarantee.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import XSTError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.distributed import Cluster, Node

__all__ = [
    "NodeDownError",
    "ShipmentLostError",
    "ShipmentCorruptedError",
    "FaultPlan",
    "FaultInjector",
    "NO_FAULTS",
]


class NodeDownError(XSTError, ConnectionError):
    """A node is unreachable.  Transient: callers fail over."""


class ShipmentLostError(XSTError, ConnectionError):
    """A shipment was dropped in flight.  Transient: callers retry."""


class ShipmentCorruptedError(ShipmentLostError):
    """A shipment failed its checksum on arrival.  Transient."""


# Event kinds, in the order ties at one operation count are applied.
_KILL, _REVIVE, _DELAY, _DROP, _CORRUPT = (
    "kill", "revive", "delay", "drop", "corrupt"
)


class FaultPlan:
    """A deterministic schedule of fault events.

    Build one with the chainable methods, or :meth:`chaos` for a
    seeded random plan.  Operation counts are the cluster's own tick
    numbers (one tick per bucket access attempt, one per shipment);
    an event ``at_op=k`` fires on the first tick where the counter
    reaches ``k``.
    """

    def __init__(self):
        # (at_op, sequence, kind, node_name, payload)
        self._events: List[Tuple[int, int, str, Optional[str], float]] = []

    # -- builders ------------------------------------------------------

    def _add(self, at_op: int, kind: str, node: Optional[str],
             payload: float = 0.0) -> "FaultPlan":
        if at_op < 0:
            raise ValueError("fault operation counts start at 0")
        self._events.append((at_op, len(self._events), kind, node, payload))
        return self

    def kill(self, node: str, at_op: int = 0) -> "FaultPlan":
        """Make ``node`` unreachable from operation ``at_op`` on."""
        return self._add(at_op, _KILL, node)

    def revive(self, node: str, at_op: int = 0) -> "FaultPlan":
        """Bring ``node`` back (its stored partitions intact)."""
        return self._add(at_op, _REVIVE, node)

    def delay(self, node: str, seconds: float, at_op: int = 0) -> "FaultPlan":
        """Charge ``seconds`` of simulated latency per access to ``node``.

        A later ``delay(node, 0.0)`` clears it.
        """
        return self._add(at_op, _DELAY, node, seconds)

    def drop_shipment(self, at_op: int) -> "FaultPlan":
        """Lose the first shipment at or after operation ``at_op``."""
        return self._add(at_op, _DROP, None)

    def corrupt_shipment(self, at_op: int) -> "FaultPlan":
        """Bit-flip the first shipment at or after operation ``at_op``."""
        return self._add(at_op, _CORRUPT, None)

    # -- seeded fuzzing ------------------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int,
        node_names: Sequence[str],
        horizon: int = 200,
        kills: int = 1,
        drops: int = 2,
        corruptions: int = 1,
        max_delay: float = 0.0,
    ) -> "FaultPlan":
        """A random-but-reproducible plan drawn from an explicit seed.

        Every kill is paired with a later revive, so chaos plans never
        permanently lose capacity -- availability tests control
        permanent loss explicitly with :meth:`kill`.
        """
        rng = random.Random(seed)
        plan = cls()
        for _ in range(kills):
            victim = rng.choice(list(node_names))
            down = rng.randrange(horizon)
            up = down + 1 + rng.randrange(max(1, horizon - down))
            plan.kill(victim, at_op=down)
            plan.revive(victim, at_op=up)
        for _ in range(drops):
            plan.drop_shipment(rng.randrange(horizon))
        for _ in range(corruptions):
            plan.corrupt_shipment(rng.randrange(horizon))
        if max_delay > 0.0:
            laggard = rng.choice(list(node_names))
            plan.delay(laggard, rng.uniform(0.0, max_delay),
                       at_op=rng.randrange(horizon))
        return plan

    # -- inspection ----------------------------------------------------

    def events(self) -> List[Tuple[int, str, Optional[str], float]]:
        """The schedule in firing order: (at_op, kind, node, payload)."""
        return [
            (at_op, kind, node, payload)
            for at_op, _, kind, node, payload in sorted(self._events)
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return "FaultPlan(%d events)" % len(self._events)


class FaultInjector:
    """Applies a :class:`FaultPlan` through the cluster's two hooks.

    The cluster calls :meth:`tick` once per operation (advancing the
    clock and applying due kill/revive/delay events) and
    :meth:`on_ship` once per shipment (which may consume a due drop or
    corrupt event).  Everything else is ordinary execution.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan
        self.operations = 0
        self._pending = sorted(plan._events) if plan is not None else []
        self._oneshots: List[str] = []

    # -- hooks called by Cluster ---------------------------------------

    def tick(self, cluster: "Cluster") -> None:
        """One operation happened: apply every event now due."""
        self.operations += 1
        while self._pending and self._pending[0][0] <= self.operations:
            _, _, kind, node_name, payload = self._pending.pop(0)
            if kind in (_DROP, _CORRUPT):
                self._oneshots.append(kind)
                continue
            node = cluster.node_named(node_name)
            if kind == _KILL:
                node.alive = False
            elif kind == _REVIVE:
                node.alive = True
            elif kind == _DELAY:
                node.delay_s = payload

    def on_ship(self, node: "Node", data: bytes) -> bytes:
        """A shipment is leaving ``node``; lose or damage it if due."""
        if self._oneshots:
            kind = self._oneshots.pop(0)
            if kind == _DROP:
                raise ShipmentLostError(
                    "shipment from %s lost in flight (injected)" % node.name
                )
            # Corrupt: flip a byte so the receiver's checksum fails.
            if data:
                data = data[:-1] + bytes([data[-1] ^ 0xFF])
        return data

    def __repr__(self) -> str:
        return "FaultInjector(op=%d, pending=%d)" % (
            self.operations, len(self._pending)
        )


class _NoFaults(FaultInjector):
    """The default injector: pure pass-through, zero bookkeeping."""

    def __init__(self):
        super().__init__(None)

    def tick(self, cluster: "Cluster") -> None:
        pass

    def on_ship(self, node: "Node", data: bytes) -> bytes:
        return data


NO_FAULTS = _NoFaults()
