"""Deterministic fault injection for the simulated cluster.

The reliability claims of the 1977 programme ("intrinsically reliable
... very large, distributed, backend information systems") are only
testable if failures can be *produced on demand and reproduced
exactly*.  This module is that harness: a :class:`FaultPlan` is a
seeded, inspectable schedule of fault events keyed by the cluster's
operation counter, and a :class:`FaultInjector` applies it through two
hooks that :class:`repro.relational.distributed.Cluster` calls on its
ordinary execution path -- so the production code is exercised
unmodified, with faults arriving at exact, replayable instants.

Event kinds:

* ``kill`` / ``revive`` -- a node becomes unreachable / reachable
  (its storage survives, modeling a crash with durable disks);
* ``delay`` -- a node answers, but every access charges simulated
  latency (visible in ``NetworkStats`` and to query timeouts);
* ``drop`` -- one shipment is lost in flight (the sender retries);
* ``corrupt`` -- one shipment arrives bit-flipped; the receiver's
  checksum comparison detects it and the sender retries.

Determinism: the cluster ticks the injector once per bucket-access
attempt and once per shipment, so for a fixed query sequence the
operation numbering -- hence the entire failure history -- is
bit-identical across runs.  :meth:`FaultPlan.chaos` derives a random
plan from an explicit seed for fuzzing with the same guarantee.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import XSTError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.distributed import Cluster, Node

__all__ = [
    "NodeDownError",
    "ShipmentLostError",
    "ShipmentCorruptedError",
    "FaultPlan",
    "FaultInjector",
    "NetworkFaultInjector",
    "NO_FAULTS",
    "NO_NETWORK_FAULTS",
]


class NodeDownError(XSTError, ConnectionError):
    """A node is unreachable.  Transient: callers fail over."""


class ShipmentLostError(XSTError, ConnectionError):
    """A shipment was dropped in flight.  Transient: callers retry."""


class ShipmentCorruptedError(ShipmentLostError):
    """A shipment failed its checksum on arrival.  Transient."""


# Event kinds, in the order ties at one operation count are applied.
_KILL, _REVIVE, _DELAY, _DROP, _CORRUPT, _CRASH = (
    "kill", "revive", "delay", "drop", "corrupt", "crash"
)

# Network (wire-level) event kinds, keyed by *frame* counts rather
# than cluster operation counts and consumed by NetworkFaultInjector.
_NET_DROP, _NET_TEAR, _NET_DELAY = ("net_drop", "net_tear", "net_delay")
_NET_KINDS = frozenset((_NET_DROP, _NET_TEAR, _NET_DELAY))


class FaultPlan:
    """A deterministic schedule of fault events.

    Build one with the chainable methods, or :meth:`chaos` for a
    seeded random plan.  Operation counts are the cluster's own tick
    numbers (one tick per bucket access attempt, one per shipment);
    an event ``at_op=k`` fires on the first tick where the counter
    reaches ``k``.
    """

    def __init__(self):
        # (at_op, sequence, kind, node_name, payload)
        self._events: List[Tuple[int, int, str, Optional[str], float]] = []

    # -- builders ------------------------------------------------------

    def _add(self, at_op: int, kind: str, node: Optional[str],
             payload: float = 0.0) -> "FaultPlan":
        if at_op < 0:
            raise ValueError("fault operation counts start at 0")
        self._events.append((at_op, len(self._events), kind, node, payload))
        return self

    def kill(self, node: str, at_op: int = 0) -> "FaultPlan":
        """Make ``node`` unreachable from operation ``at_op`` on."""
        return self._add(at_op, _KILL, node)

    def revive(self, node: str, at_op: int = 0) -> "FaultPlan":
        """Bring ``node`` back (its stored partitions intact)."""
        return self._add(at_op, _REVIVE, node)

    def delay(self, node: str, seconds: float, at_op: int = 0) -> "FaultPlan":
        """Charge ``seconds`` of simulated latency per access to ``node``.

        A later ``delay(node, 0.0)`` clears it.
        """
        return self._add(at_op, _DELAY, node, seconds)

    def crash(self, node: Optional[str] = None, at_op: int = 0,
              after_bytes: Optional[int] = None) -> "FaultPlan":
        """Schedule a crash.

        With ``node``, the node dies at operation ``at_op`` exactly
        like :meth:`kill` -- but because the cluster also ticks the
        injector on its *write* fan-out path, a crash scheduled inside
        a write window kills the node mid-write: replicas before the
        crash point have the rows, replicas after do not, and only a
        revive-time rebuild from the cluster's write log reconciles
        them.

        With ``after_bytes``, the event instead describes a
        storage-layer crash point (die after that many written bytes);
        consume these with :meth:`crash_points` to build
        :class:`~repro.relational.wal.CrashPoint` writer shims.
        """
        return self._add(at_op, _CRASH, node,
                         0.0 if after_bytes is None else float(after_bytes))

    def crash_points(self) -> List[object]:
        """The plan's byte-budget crashes as WAL writer shims.

        One :class:`~repro.relational.wal.CrashPoint` per
        :meth:`crash` event that carried ``after_bytes``, in schedule
        order -- the bridge between seeded fault plans and the
        storage layer's deterministic crash harness.
        """
        from repro.relational.wal import CrashPoint

        return [
            CrashPoint(after_bytes=int(payload))
            for _, _, kind, node, payload in sorted(self._events)
            if kind == _CRASH and node is None
        ]

    @classmethod
    def crash_sweep(cls, seed: int, total_bytes: int,
                    points: int = 16) -> "FaultPlan":
        """A seeded schedule of byte-budget crash points.

        Draws ``points`` distinct crash offsets in ``[0, total_bytes]``
        from an explicit seed -- the storage-layer analogue of
        :meth:`chaos`, consumed via :meth:`crash_points`.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        rng = random.Random(seed)
        plan = cls()
        population = range(total_bytes + 1)
        for offset in sorted(rng.sample(
            population, min(points, len(population))
        )):
            plan.crash(after_bytes=offset)
        return plan

    def drop_shipment(self, at_op: int) -> "FaultPlan":
        """Lose the first shipment at or after operation ``at_op``."""
        return self._add(at_op, _DROP, None)

    def corrupt_shipment(self, at_op: int) -> "FaultPlan":
        """Bit-flip the first shipment at or after operation ``at_op``."""
        return self._add(at_op, _CORRUPT, None)

    # -- network (wire) events -----------------------------------------

    def drop_connection(self, at_frame: int) -> "FaultPlan":
        """Abort the connection instead of sending frame ``at_frame``.

        Frame counts number every frame the instrumented endpoint
        sends, 0-based, across the whole injector lifetime -- so a
        drop scheduled inside a result stream models
        disconnect-mid-result, and one scheduled at frame 0 models a
        connection that dies before the handshake answer.
        """
        return self._add(at_frame, _NET_DROP, None)

    def tear_frame(self, at_frame: int, keep_fraction: float = 0.5
                   ) -> "FaultPlan":
        """Send only a prefix of frame ``at_frame``, then abort.

        ``keep_fraction`` of the frame's bytes (at least 1, at most
        len-1 for frames of 2+ bytes) go out before the cut -- the
        receiver sees a torn frame: a length prefix promising bytes
        that never arrive, the wire-level analogue of the WAL's torn
        tail.
        """
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be within [0, 1]")
        return self._add(at_frame, _NET_TEAR, None, keep_fraction)

    def delay_frame(self, at_frame: int, seconds: float) -> "FaultPlan":
        """Stall ``seconds`` before sending frame ``at_frame``.

        Models a slow link or a stalled sender: the receiver's read
        blocks, exercising client timeouts and server drain deadlines.
        """
        if seconds < 0:
            raise ValueError("delays are non-negative")
        return self._add(at_frame, _NET_DELAY, None, seconds)

    @classmethod
    def net_chaos(
        cls,
        seed: int,
        horizon: int = 40,
        drops: int = 1,
        tears: int = 1,
        delays: int = 1,
        max_delay: float = 0.002,
    ) -> "FaultPlan":
        """A seeded random schedule of wire faults over ``horizon`` frames.

        The network analogue of :meth:`chaos`: deterministic for a
        fixed seed, so a failing fault schedule replays exactly.
        """
        rng = random.Random(seed)
        plan = cls()
        for _ in range(drops):
            plan.drop_connection(rng.randrange(horizon))
        for _ in range(tears):
            plan.tear_frame(rng.randrange(horizon),
                            keep_fraction=rng.uniform(0.05, 0.95))
        for _ in range(delays):
            plan.delay_frame(rng.randrange(horizon),
                             rng.uniform(0.0, max_delay))
        return plan

    # -- seeded fuzzing ------------------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int,
        node_names: Sequence[str],
        horizon: int = 200,
        kills: int = 1,
        drops: int = 2,
        corruptions: int = 1,
        crashes: int = 0,
        max_delay: float = 0.0,
    ) -> "FaultPlan":
        """A random-but-reproducible plan drawn from an explicit seed.

        Every kill is paired with a later revive, so chaos plans never
        permanently lose capacity -- availability tests control
        permanent loss explicitly with :meth:`kill`.  ``crashes`` adds
        crash/revive pairs: unlike kills, crash events also fire on
        the cluster's write fan-out ticks, so a chaos plan with
        crashes exercises kill-*during*-write (a replica missing rows
        until its revive-time rebuild), not just kill-between-ops.
        """
        rng = random.Random(seed)
        plan = cls()
        for _ in range(kills):
            victim = rng.choice(list(node_names))
            down = rng.randrange(horizon)
            up = down + 1 + rng.randrange(max(1, horizon - down))
            plan.kill(victim, at_op=down)
            plan.revive(victim, at_op=up)
        for _ in range(drops):
            plan.drop_shipment(rng.randrange(horizon))
        for _ in range(corruptions):
            plan.corrupt_shipment(rng.randrange(horizon))
        for _ in range(crashes):
            victim = rng.choice(list(node_names))
            down = rng.randrange(horizon)
            up = down + 1 + rng.randrange(max(1, horizon - down))
            plan.crash(victim, at_op=down)
            plan.revive(victim, at_op=up)
        if max_delay > 0.0:
            laggard = rng.choice(list(node_names))
            plan.delay(laggard, rng.uniform(0.0, max_delay),
                       at_op=rng.randrange(horizon))
        return plan

    @classmethod
    def move_chaos(
        cls,
        seed: int,
        donor: str,
        recipient: str,
        horizon: int = 60,
        kills: int = 2,
    ) -> "FaultPlan":
        """A rebalance-targeted plan: kill the endpoints that matter.

        Generic :meth:`chaos` rarely hits a move's donor or recipient;
        this draws every kill from exactly that pair, with revives
        scheduled inside the horizon so the move can resume.  Because
        rebalance steps tick the shared fault clock once per step, a
        kill at op *k* lands at a deterministic point in the copy /
        catch-up / swing state machine -- the sweep the crash-safety
        contract is stated over.
        """
        rng = random.Random(seed)
        plan = cls()
        for _ in range(kills):
            victim = rng.choice([donor, recipient])
            down = rng.randrange(horizon)
            up = down + 1 + rng.randrange(max(1, horizon - down))
            plan.kill(victim, at_op=down)
            plan.revive(victim, at_op=up)
        return plan

    # -- inspection ----------------------------------------------------

    def events(self) -> List[Tuple[int, str, Optional[str], float]]:
        """The schedule in firing order: (at_op, kind, node, payload)."""
        return [
            (at_op, kind, node, payload)
            for at_op, _, kind, node, payload in sorted(self._events)
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return "FaultPlan(%d events)" % len(self._events)


class FaultInjector:
    """Applies a :class:`FaultPlan` through the cluster's two hooks.

    The cluster calls :meth:`tick` once per operation (advancing the
    clock and applying due kill/revive/delay events) and
    :meth:`on_ship` once per shipment (which may consume a due drop or
    corrupt event).  Everything else is ordinary execution.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan
        self.operations = 0
        self._pending = sorted(plan._events) if plan is not None else []
        self._oneshots: List[str] = []

    # -- hooks called by Cluster ---------------------------------------

    def tick(self, cluster: "Cluster", write: bool = False) -> None:
        """One operation happened: apply every event now due.

        ``write=True`` marks a write fan-out tick: only *crash* events
        fire there (a crash can land mid-write and tear the fan-out);
        every other kind is held for the next read-path tick, so
        PR 1 plans keep their exact kill/drop/delay timing.  Revives
        route through :meth:`Cluster.on_revive
        <repro.relational.distributed.Cluster.on_revive>` so a
        returning node is rebuilt from the write log before it serves.
        """
        self.operations += 1
        if not self._pending:
            return
        remaining: List[Tuple[int, int, str, Optional[str], float]] = []
        for index, event in enumerate(self._pending):
            at_op, _, kind, node_name, payload = event
            if at_op > self.operations:
                remaining.extend(self._pending[index:])
                break
            if kind in _NET_KINDS:
                # Wire-level events belong to a NetworkFaultInjector
                # reading the same plan; the cluster injector never
                # consumes them.
                remaining.append(event)
                continue
            if write and kind != _CRASH:
                remaining.append(event)  # held for the next read tick
                continue
            if kind in (_DROP, _CORRUPT):
                self._oneshots.append(kind)
                continue
            node = cluster.node_named(node_name)
            if kind in (_KILL, _CRASH):
                node.alive = False
            elif kind == _REVIVE:
                cluster.on_revive(node)
            elif kind == _DELAY:
                node.delay_s = payload
        self._pending = remaining

    def on_ship(self, node: "Node", data: bytes) -> bytes:
        """A shipment is leaving ``node``; lose or damage it if due."""
        if self._oneshots:
            kind = self._oneshots.pop(0)
            if kind == _DROP:
                raise ShipmentLostError(
                    "shipment from %s lost in flight (injected)" % node.name
                )
            # Corrupt: flip a byte so the receiver's checksum fails.
            if data:
                data = data[:-1] + bytes([data[-1] ^ 0xFF])
        return data

    def __repr__(self) -> str:
        return "FaultInjector(op=%d, pending=%d)" % (
            self.operations, len(self._pending)
        )


class NetworkFaultInjector:
    """Applies a plan's wire-level events at frame-send granularity.

    The server's connection layer asks :meth:`on_frame` before every
    frame it writes; the answer is an action tuple:

    * ``("send", data, delay_s)`` -- write ``data`` (possibly after a
      ``delay_s`` stall);
    * ``("tear", prefix, delay_s)`` -- write only ``prefix`` bytes,
      then abort the connection;
    * ``("drop", b"", delay_s)`` -- abort without writing.

    Frames are numbered 0-based across the injector's lifetime (all
    connections, in send order), so a fixed request sequence yields a
    bit-identical fault history -- the same determinism contract as
    :class:`FaultInjector`, moved to the wire.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan
        self.frames = 0
        self._pending = sorted(
            event for event in (plan._events if plan is not None else [])
            if event[2] in _NET_KINDS
        )

    def on_frame(self, data: bytes) -> Tuple[str, bytes, float]:
        """Decide the fate of the next outgoing frame."""
        frame = self.frames
        self.frames += 1
        action, payload, delay_s = "send", data, 0.0
        remaining: List[Tuple[int, int, str, Optional[str], float]] = []
        for index, event in enumerate(self._pending):
            at_frame, _, kind, _node, value = event
            if at_frame > frame:
                remaining.extend(self._pending[index:])
                break
            if kind == _NET_DELAY:
                delay_s += value
            elif kind == _NET_TEAR and action == "send":
                keep = max(1, min(len(data) - 1, int(len(data) * value))) \
                    if len(data) > 1 else 0
                action, payload = "tear", data[:keep]
            elif kind == _NET_DROP:
                action, payload = "drop", b""
        self._pending = remaining
        return action, payload, delay_s

    @property
    def exhausted(self) -> bool:
        """True once every scheduled wire fault has fired."""
        return not self._pending

    def __repr__(self) -> str:
        return "NetworkFaultInjector(frame=%d, pending=%d)" % (
            self.frames, len(self._pending)
        )


class _NoFaults(FaultInjector):
    """The default injector: pure pass-through, zero bookkeeping."""

    def __init__(self):
        super().__init__(None)

    def tick(self, cluster: "Cluster", write: bool = False) -> None:
        pass

    def on_ship(self, node: "Node", data: bytes) -> bytes:
        return data


class _NoNetworkFaults(NetworkFaultInjector):
    """Pass-through wire injector: zero bookkeeping per frame."""

    def __init__(self):
        super().__init__(None)

    def on_frame(self, data: bytes) -> Tuple[str, bytes, float]:
        return ("send", data, 0.0)


NO_FAULTS = _NoFaults()
NO_NETWORK_FAULTS = _NoNetworkFaults()
