"""Deterministic fault injection for the simulated cluster.

The reliability claims of the 1977 programme ("intrinsically reliable
... very large, distributed, backend information systems") are only
testable if failures can be *produced on demand and reproduced
exactly*.  This module is that harness: a :class:`FaultPlan` is a
seeded, inspectable schedule of fault events keyed by the cluster's
operation counter, and a :class:`FaultInjector` applies it through two
hooks that :class:`repro.relational.distributed.Cluster` calls on its
ordinary execution path -- so the production code is exercised
unmodified, with faults arriving at exact, replayable instants.

Event kinds:

* ``kill`` / ``revive`` -- a node becomes unreachable / reachable
  (its storage survives, modeling a crash with durable disks);
* ``delay`` -- a node answers, but every access charges simulated
  latency (visible in ``NetworkStats`` and to query timeouts);
* ``drop`` -- one shipment is lost in flight (the sender retries);
* ``corrupt`` -- one shipment arrives bit-flipped; the receiver's
  checksum comparison detects it and the sender retries.

Determinism: the cluster ticks the injector once per bucket-access
attempt and once per shipment, so for a fixed query sequence the
operation numbering -- hence the entire failure history -- is
bit-identical across runs.  :meth:`FaultPlan.chaos` derives a random
plan from an explicit seed for fuzzing with the same guarantee.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import XSTError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.distributed import Cluster, Node

__all__ = [
    "NodeDownError",
    "ShipmentLostError",
    "ShipmentCorruptedError",
    "FaultPlan",
    "FaultInjector",
    "NO_FAULTS",
]


class NodeDownError(XSTError, ConnectionError):
    """A node is unreachable.  Transient: callers fail over."""


class ShipmentLostError(XSTError, ConnectionError):
    """A shipment was dropped in flight.  Transient: callers retry."""


class ShipmentCorruptedError(ShipmentLostError):
    """A shipment failed its checksum on arrival.  Transient."""


# Event kinds, in the order ties at one operation count are applied.
_KILL, _REVIVE, _DELAY, _DROP, _CORRUPT, _CRASH = (
    "kill", "revive", "delay", "drop", "corrupt", "crash"
)


class FaultPlan:
    """A deterministic schedule of fault events.

    Build one with the chainable methods, or :meth:`chaos` for a
    seeded random plan.  Operation counts are the cluster's own tick
    numbers (one tick per bucket access attempt, one per shipment);
    an event ``at_op=k`` fires on the first tick where the counter
    reaches ``k``.
    """

    def __init__(self):
        # (at_op, sequence, kind, node_name, payload)
        self._events: List[Tuple[int, int, str, Optional[str], float]] = []

    # -- builders ------------------------------------------------------

    def _add(self, at_op: int, kind: str, node: Optional[str],
             payload: float = 0.0) -> "FaultPlan":
        if at_op < 0:
            raise ValueError("fault operation counts start at 0")
        self._events.append((at_op, len(self._events), kind, node, payload))
        return self

    def kill(self, node: str, at_op: int = 0) -> "FaultPlan":
        """Make ``node`` unreachable from operation ``at_op`` on."""
        return self._add(at_op, _KILL, node)

    def revive(self, node: str, at_op: int = 0) -> "FaultPlan":
        """Bring ``node`` back (its stored partitions intact)."""
        return self._add(at_op, _REVIVE, node)

    def delay(self, node: str, seconds: float, at_op: int = 0) -> "FaultPlan":
        """Charge ``seconds`` of simulated latency per access to ``node``.

        A later ``delay(node, 0.0)`` clears it.
        """
        return self._add(at_op, _DELAY, node, seconds)

    def crash(self, node: Optional[str] = None, at_op: int = 0,
              after_bytes: Optional[int] = None) -> "FaultPlan":
        """Schedule a crash.

        With ``node``, the node dies at operation ``at_op`` exactly
        like :meth:`kill` -- but because the cluster also ticks the
        injector on its *write* fan-out path, a crash scheduled inside
        a write window kills the node mid-write: replicas before the
        crash point have the rows, replicas after do not, and only a
        revive-time rebuild from the cluster's write log reconciles
        them.

        With ``after_bytes``, the event instead describes a
        storage-layer crash point (die after that many written bytes);
        consume these with :meth:`crash_points` to build
        :class:`~repro.relational.wal.CrashPoint` writer shims.
        """
        return self._add(at_op, _CRASH, node,
                         0.0 if after_bytes is None else float(after_bytes))

    def crash_points(self) -> List[object]:
        """The plan's byte-budget crashes as WAL writer shims.

        One :class:`~repro.relational.wal.CrashPoint` per
        :meth:`crash` event that carried ``after_bytes``, in schedule
        order -- the bridge between seeded fault plans and the
        storage layer's deterministic crash harness.
        """
        from repro.relational.wal import CrashPoint

        return [
            CrashPoint(after_bytes=int(payload))
            for _, _, kind, node, payload in sorted(self._events)
            if kind == _CRASH and node is None
        ]

    @classmethod
    def crash_sweep(cls, seed: int, total_bytes: int,
                    points: int = 16) -> "FaultPlan":
        """A seeded schedule of byte-budget crash points.

        Draws ``points`` distinct crash offsets in ``[0, total_bytes]``
        from an explicit seed -- the storage-layer analogue of
        :meth:`chaos`, consumed via :meth:`crash_points`.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        rng = random.Random(seed)
        plan = cls()
        population = range(total_bytes + 1)
        for offset in sorted(rng.sample(
            population, min(points, len(population))
        )):
            plan.crash(after_bytes=offset)
        return plan

    def drop_shipment(self, at_op: int) -> "FaultPlan":
        """Lose the first shipment at or after operation ``at_op``."""
        return self._add(at_op, _DROP, None)

    def corrupt_shipment(self, at_op: int) -> "FaultPlan":
        """Bit-flip the first shipment at or after operation ``at_op``."""
        return self._add(at_op, _CORRUPT, None)

    # -- seeded fuzzing ------------------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int,
        node_names: Sequence[str],
        horizon: int = 200,
        kills: int = 1,
        drops: int = 2,
        corruptions: int = 1,
        crashes: int = 0,
        max_delay: float = 0.0,
    ) -> "FaultPlan":
        """A random-but-reproducible plan drawn from an explicit seed.

        Every kill is paired with a later revive, so chaos plans never
        permanently lose capacity -- availability tests control
        permanent loss explicitly with :meth:`kill`.  ``crashes`` adds
        crash/revive pairs: unlike kills, crash events also fire on
        the cluster's write fan-out ticks, so a chaos plan with
        crashes exercises kill-*during*-write (a replica missing rows
        until its revive-time rebuild), not just kill-between-ops.
        """
        rng = random.Random(seed)
        plan = cls()
        for _ in range(kills):
            victim = rng.choice(list(node_names))
            down = rng.randrange(horizon)
            up = down + 1 + rng.randrange(max(1, horizon - down))
            plan.kill(victim, at_op=down)
            plan.revive(victim, at_op=up)
        for _ in range(drops):
            plan.drop_shipment(rng.randrange(horizon))
        for _ in range(corruptions):
            plan.corrupt_shipment(rng.randrange(horizon))
        for _ in range(crashes):
            victim = rng.choice(list(node_names))
            down = rng.randrange(horizon)
            up = down + 1 + rng.randrange(max(1, horizon - down))
            plan.crash(victim, at_op=down)
            plan.revive(victim, at_op=up)
        if max_delay > 0.0:
            laggard = rng.choice(list(node_names))
            plan.delay(laggard, rng.uniform(0.0, max_delay),
                       at_op=rng.randrange(horizon))
        return plan

    # -- inspection ----------------------------------------------------

    def events(self) -> List[Tuple[int, str, Optional[str], float]]:
        """The schedule in firing order: (at_op, kind, node, payload)."""
        return [
            (at_op, kind, node, payload)
            for at_op, _, kind, node, payload in sorted(self._events)
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return "FaultPlan(%d events)" % len(self._events)


class FaultInjector:
    """Applies a :class:`FaultPlan` through the cluster's two hooks.

    The cluster calls :meth:`tick` once per operation (advancing the
    clock and applying due kill/revive/delay events) and
    :meth:`on_ship` once per shipment (which may consume a due drop or
    corrupt event).  Everything else is ordinary execution.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan
        self.operations = 0
        self._pending = sorted(plan._events) if plan is not None else []
        self._oneshots: List[str] = []

    # -- hooks called by Cluster ---------------------------------------

    def tick(self, cluster: "Cluster", write: bool = False) -> None:
        """One operation happened: apply every event now due.

        ``write=True`` marks a write fan-out tick: only *crash* events
        fire there (a crash can land mid-write and tear the fan-out);
        every other kind is held for the next read-path tick, so
        PR 1 plans keep their exact kill/drop/delay timing.  Revives
        route through :meth:`Cluster.on_revive
        <repro.relational.distributed.Cluster.on_revive>` so a
        returning node is rebuilt from the write log before it serves.
        """
        self.operations += 1
        if not self._pending:
            return
        remaining: List[Tuple[int, int, str, Optional[str], float]] = []
        for index, event in enumerate(self._pending):
            at_op, _, kind, node_name, payload = event
            if at_op > self.operations:
                remaining.extend(self._pending[index:])
                break
            if write and kind != _CRASH:
                remaining.append(event)  # held for the next read tick
                continue
            if kind in (_DROP, _CORRUPT):
                self._oneshots.append(kind)
                continue
            node = cluster.node_named(node_name)
            if kind in (_KILL, _CRASH):
                node.alive = False
            elif kind == _REVIVE:
                cluster.on_revive(node)
            elif kind == _DELAY:
                node.delay_s = payload
        self._pending = remaining

    def on_ship(self, node: "Node", data: bytes) -> bytes:
        """A shipment is leaving ``node``; lose or damage it if due."""
        if self._oneshots:
            kind = self._oneshots.pop(0)
            if kind == _DROP:
                raise ShipmentLostError(
                    "shipment from %s lost in flight (injected)" % node.name
                )
            # Corrupt: flip a byte so the receiver's checksum fails.
            if data:
                data = data[:-1] + bytes([data[-1] ^ 0xFF])
        return data

    def __repr__(self) -> str:
        return "FaultInjector(op=%d, pending=%d)" % (
            self.operations, len(self._pending)
        )


class _NoFaults(FaultInjector):
    """The default injector: pure pass-through, zero bookkeeping."""

    def __init__(self):
        super().__init__(None)

    def tick(self, cluster: "Cluster", write: bool = False) -> None:
        pass

    def on_ship(self, node: "Node", data: bytes) -> bytes:
        return data


NO_FAULTS = _NoFaults()
