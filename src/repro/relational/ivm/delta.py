"""Exact delta propagation through query plans.

A :class:`Delta` is the set-valued diff of one relation: the rows that
appeared and the rows that vanished.  The invariant throughout is the
*exact-diff* law::

    inserted = new \\ old        deleted = old \\ new

so ``inserted`` and ``deleted`` are disjoint, ``inserted`` is a subset
of the new value and ``deleted`` is disjoint from it.  Two
consequences carry the whole module:

1. Applying a delta is exact: ``new == (old - deleted) | inserted``.
2. Inverting one is too: ``old == (new - inserted) | deleted`` -- so
   the propagator never needs a pre-commit database; the old value of
   any subtree is derived from its new value and its own delta.

Per-node rules (all proved exact by the law above; ``C`` is the child,
``L``/``R`` the binary inputs, ``d`` a child delta):

``Scan``
    The base table's commit diff, or empty.
``SelectEq`` / ``SelectPred`` / ``Rename``
    Pointwise operators distribute over set difference: apply the
    operator to ``d.inserted`` and ``d.deleted`` separately.
``Project(attrs)``
    A projected key is inserted iff some inserted row produces it and
    no old row did; deleted iff some deleted row produced it and no
    new row still does.  Both membership tests are one semijoin
    (Def 7.6 restriction) against the candidate keys.
``Union`` / ``Difference``
    Only rows touched by either side's delta can change, so the
    candidate set is the union of both deltas; old and new membership
    of each candidate is decided by set algebra against the (derived)
    old and new input values, and the node delta is the candidate
    membership diff.
``Join``
    A joined row decomposes uniquely into its L- and R-parts, so the
    candidates are ``d_L.ins x R_new``, ``L_new x d_R.ins``,
    ``d_L.del x R_old`` and ``L_old x d_R.del``; membership before and
    after is the join of each side semijoined down to the candidates
    -- never the full join.

Everything runs on XSets, so XST member equality (the typed twins
``1`` / ``1.0`` / ``True`` collapse) is preserved end to end.  New
values come from ``Database.execute``, which means subtrees over
columnar-encoded relations evaluate on the sorted-run kernels for
free.

Any node type without a rule raises :class:`DeltaUnsupported`; callers
(the view catalog) fall back to full recomputation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import SchemaError
from repro.gov.governor import checkpoint as _gov_checkpoint
from repro.relational import algebra
from repro.relational.query import (
    Database,
    Difference,
    Join,
    Plan,
    Project,
    Rename,
    Scan,
    SelectEq,
    SelectPred,
    Union,
)
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.xset import XSet

__all__ = ["Delta", "DeltaPropagator", "DeltaUnsupported"]


class DeltaUnsupported(Exception):
    """No delta rule for this plan node; recompute instead."""


class Delta:
    """An exact relation diff: disjoint inserted and deleted row sets."""

    __slots__ = ("inserted", "deleted")

    def __init__(self, inserted: Relation, deleted: Relation):
        if inserted.heading != deleted.heading:
            raise SchemaError(
                "delta halves disagree: %r vs %r"
                % (inserted.heading, deleted.heading)
            )
        self.inserted = inserted
        self.deleted = deleted

    @classmethod
    def empty(cls, heading: Heading) -> "Delta":
        blank = Relation(heading, XSet())
        return cls(blank, blank)

    @property
    def heading(self) -> Heading:
        return self.inserted.heading

    def is_empty(self) -> bool:
        return (
            self.inserted.cardinality() == 0
            and self.deleted.cardinality() == 0
        )

    def size(self) -> int:
        return self.inserted.cardinality() + self.deleted.cardinality()

    def apply_to(self, relation: Relation) -> Relation:
        """``(relation - deleted) | inserted`` -- exact by the diff law."""
        if relation.heading != self.heading:
            raise SchemaError(
                "cannot apply %r delta to %r relation"
                % (self.heading, relation.heading)
            )
        rows = (relation.rows - self.deleted.rows) | self.inserted.rows
        return Relation(relation.heading, rows)

    def invert_from(self, relation: Relation) -> Relation:
        """Recover the old value from the new: ``(new - ins) | del``."""
        rows = (relation.rows - self.inserted.rows) | self.deleted.rows
        return Relation(relation.heading, rows)

    def __repr__(self) -> str:
        return "Delta(+%d, -%d)" % (
            self.inserted.cardinality(), self.deleted.cardinality()
        )


#: Base deltas as handed to the propagator: table name -> Delta.
BaseDeltas = Mapping[str, Delta]


class DeltaPropagator:
    """Push base-table deltas up through one plan.

    ``db`` holds the *post-commit* relation values; ``base_deltas``
    maps changed table names to their exact commit diffs.  Old values
    are derived, never stored: ``old = (new - inserted) | deleted``.
    Node deltas, new values and derived old values are all memoized by
    plan-node identity, so shared subtrees propagate once.

    Every computed node delta passes a governor checkpoint
    (``ivm.delta``) charged with the delta's row count, so a governed
    maintenance pass dies between nodes like any other query.
    """

    def __init__(self, db: Database, base_deltas: BaseDeltas):
        self._db = db
        self._base: Dict[str, Delta] = dict(base_deltas)
        self._deltas: Dict[int, Delta] = {}
        self._new_vals: Dict[int, Relation] = {}
        self._old_vals: Dict[int, Relation] = {}

    # -- values --------------------------------------------------------

    def new_value(self, plan: Plan) -> Relation:
        key = id(plan)
        value = self._new_vals.get(key)
        if value is None:
            value = self._db.execute(plan)
            self._new_vals[key] = value
        return value

    def old_value(self, plan: Plan) -> Relation:
        key = id(plan)
        value = self._old_vals.get(key)
        if value is None:
            delta = self.delta(plan)
            new = self.new_value(plan)
            value = new if delta.is_empty() else delta.invert_from(new)
            self._old_vals[key] = value
        return value

    def _heading(self, plan: Plan) -> Heading:
        return self._db._heading_of(plan)

    # -- propagation ---------------------------------------------------

    def delta(self, plan: Plan) -> Delta:
        key = id(plan)
        result = self._deltas.get(key)
        if result is None:
            result = self._compute(plan)
            self._deltas[key] = result
            _gov_checkpoint(
                "ivm.delta", result.size(), len(result.heading.names)
            )
        return result

    def _compute(self, plan: Plan) -> Delta:
        if isinstance(plan, Scan):
            base = self._base.get(plan.name)
            if base is not None:
                return base
            return Delta.empty(self._db.relation(plan.name).heading)
        if isinstance(plan, SelectEq):
            return self._pointwise(
                plan, lambda rel: algebra.select_eq(rel, plan.conditions)
            )
        if isinstance(plan, SelectPred):
            return self._pointwise(
                plan, lambda rel: algebra.select(rel, plan.predicate)
            )
        if isinstance(plan, Rename):
            return self._pointwise(
                plan, lambda rel: algebra.rename(rel, plan.mapping)
            )
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, (Union, Difference)):
            return self._combine(plan)
        if isinstance(plan, Join):
            return self._join(plan)
        raise DeltaUnsupported(
            "no delta rule for plan node %s" % type(plan).__name__
        )

    def _pointwise(self, plan: Plan, op) -> Delta:
        child = self.delta(plan.child)
        if child.is_empty():
            return Delta.empty(self._heading(plan))
        return Delta(op(child.inserted), op(child.deleted))

    def _project(self, plan: Project) -> Delta:
        child = self.delta(plan.child)
        heading = self._heading(plan)
        if child.is_empty():
            return Delta.empty(heading)
        attrs = plan.attrs
        if not attrs:
            # Zero-attribute projection is DEE/DUM territory: the
            # result flips between the empty row and nothing, so diff
            # the (at most one-row) projections directly.
            old = algebra.project(self.old_value(plan.child), attrs)
            new = algebra.project(self.new_value(plan.child), attrs)
            return Delta(
                Relation(heading, new.rows - old.rows),
                Relation(heading, old.rows - new.rows),
            )
        cand_ins = algebra.project(child.inserted, attrs)
        if cand_ins.cardinality():
            seen_before = algebra.project(
                algebra.semijoin(self.old_value(plan.child), cand_ins), attrs
            )
            inserted = algebra.difference(cand_ins, seen_before)
        else:
            inserted = cand_ins
        cand_del = algebra.project(child.deleted, attrs)
        if cand_del.cardinality():
            still_supported = algebra.project(
                algebra.semijoin(self.new_value(plan.child), cand_del), attrs
            )
            deleted = algebra.difference(cand_del, still_supported)
        else:
            deleted = cand_del
        return Delta(inserted, deleted)

    def _combine(self, plan: Plan) -> Delta:
        left, right = self.delta(plan.left), self.delta(plan.right)
        heading = self._heading(plan)
        if left.is_empty() and right.is_empty():
            return Delta.empty(heading)
        cand = (
            left.inserted.rows | left.deleted.rows
            | right.inserted.rows | right.deleted.rows
        )
        l_new, r_new = self.new_value(plan.left), self.new_value(plan.right)
        l_old, r_old = self.old_value(plan.left), self.old_value(plan.right)
        if isinstance(plan, Union):
            before = (cand & l_old.rows) | (cand & r_old.rows)
            after = (cand & l_new.rows) | (cand & r_new.rows)
        else:
            before = (cand & l_old.rows) - r_old.rows
            after = (cand & l_new.rows) - r_new.rows
        return Delta(
            Relation(heading, after - before),
            Relation(heading, before - after),
        )

    def _join(self, plan: Join) -> Delta:
        left, right = self.delta(plan.left), self.delta(plan.right)
        heading = self._heading(plan)
        if left.is_empty() and right.is_empty():
            return Delta.empty(heading)
        if not self._heading(plan.left).names or not self._heading(
            plan.right
        ).names:
            # A zero-attribute join input (DEE/DUM) has no key to
            # semijoin on; punt to recomputation.
            raise DeltaUnsupported("join over a zero-attribute input")
        l_new, r_new = self.new_value(plan.left), self.new_value(plan.right)
        l_old, r_old = self.old_value(plan.left), self.old_value(plan.right)
        cand = XSet()
        if left.inserted.cardinality():
            cand = cand | algebra.join(left.inserted, r_new).rows
        if right.inserted.cardinality():
            cand = cand | algebra.join(l_new, right.inserted).rows
        if left.deleted.cardinality():
            cand = cand | algebra.join(left.deleted, r_old).rows
        if right.deleted.cardinality():
            cand = cand | algebra.join(l_old, right.deleted).rows
        if not len(cand):
            return Delta.empty(heading)
        cand_rel = Relation(heading, cand)
        before = cand & algebra.join(
            algebra.semijoin(l_old, cand_rel),
            algebra.semijoin(r_old, cand_rel),
        ).rows
        after = cand & algebra.join(
            algebra.semijoin(l_new, cand_rel),
            algebra.semijoin(r_new, cand_rel),
        ).rows
        return Delta(
            Relation(heading, after - before),
            Relation(heading, before - after),
        )
