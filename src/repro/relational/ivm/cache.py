"""Bounded query-result cache keyed on plan identity + MVCC versions.

A cache entry's key is the pair ``(plan key, fingerprint)``:

* the **plan key** is the canonical rendering of the plan tree --
  ``repro.obs.digest.plan_hash`` over a canonical text in which every
  ``SelectPred`` contributes its explicit ``cache_key`` (plans whose
  predicates carry no cache key are *uncacheable*: two different
  lambdas can share a label, and a label is not a semantics), with the
  full canonical text appended so a CRC collision can never alias two
  distinct plans;
* the **fingerprint** is the sorted tuple of ``(table, version)`` for
  every base relation the plan scans, versions being MVCC per-table
  commit versions (or whatever counter the owner wires in).

Because the versions are *part of the key*, correctness never depends
on invalidation: a result computed when ``emp`` was at version 3 is
unreachable by a reader whose ``emp`` is at version 5.  The per-table
diff-stream invalidation (:meth:`QueryResultCache.invalidate_tables`)
exists to reclaim memory promptly and to keep the LRU full of entries
that can still hit.

Metrics: every event increments
``repro_cache_events_total{event,cache}`` when observability is
enabled (``hit`` / ``miss`` / ``stale`` / ``store`` / ``evict`` /
``invalidate``).  A *stale* is a miss for a plan key the cache has
seen before at a different fingerprint -- the signature of data having
moved on underneath a repeated query.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.instrument import enabled as _obs_enabled
from repro.relational.query import Plan, Scan, SelectPred
from repro.relational.relation import Relation

__all__ = ["QueryResultCache", "plan_cache_key", "scan_tables"]

#: (table, version) per scanned base relation, sorted by table name.
Fingerprint = Tuple[Tuple[str, int], ...]


class _Uncacheable(Exception):
    pass


def _canonical(plan: Plan) -> str:
    if isinstance(plan, SelectPred):
        if plan.cache_key is None:
            raise _Uncacheable
        head = "SelectPred{%s}" % plan.cache_key
    else:
        head = plan.describe()
    children = plan.children()
    if not children:
        return head
    return "%s(%s)" % (head, ",".join(_canonical(child) for child in children))


def plan_cache_key(plan: Plan) -> Optional[str]:
    """The canonical cache key for a plan, or ``None`` if uncacheable.

    Uncacheable means some ``SelectPred`` carries no ``cache_key`` --
    an opaque Python callable whose semantics the cache cannot name.
    """
    from repro.obs.digest import plan_hash

    try:
        text = _canonical(plan)
    except _Uncacheable:
        return None
    return "%s:%s" % (plan_hash(text), text)


def scan_tables(plan: Plan) -> Tuple[str, ...]:
    """The base relations a plan scans, sorted and deduplicated."""
    names: Set[str] = set()

    def walk(node: Plan) -> None:
        if isinstance(node, Scan):
            names.add(node.name)
            return
        for child in node.children():
            walk(child)

    walk(plan)
    return tuple(sorted(names))


def _record_event(cache: str, event: str, amount: int = 1) -> None:
    if not amount or not _obs_enabled():
        return
    from repro.obs.metrics import registry

    registry().counter(
        "repro_cache_events_total",
        "Result cache events by type.",
        ("event", "cache"),
    ).inc_key((event, cache), amount)


class QueryResultCache:
    """LRU of immutable query results; never serves across versions.

    Results are :class:`~repro.relational.relation.Relation` values --
    immutable, so entries are shared by reference and a hit is a dict
    lookup.  ``capacity`` bounds the entry count; eviction is LRU.
    One cache instance may back many readers (all server sessions
    share one), because sessions pinned at the same versions produce
    identical fingerprints and therefore share entries.
    """

    def __init__(self, capacity: int = 256, name: str = "db"):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._name = name
        self._entries: "OrderedDict[Tuple[str, Fingerprint], Tuple[Relation, Tuple[str, ...]]]" = OrderedDict()
        self._by_table: Dict[str, Set[Tuple[str, Fingerprint]]] = {}
        # Plan keys ever stored (bounded), for classifying misses as
        # cold vs stale.  Metrics only -- correctness never reads it.
        self._known_plans: "OrderedDict[str, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def name(self) -> str:
        return self._name

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    # -- read/write ----------------------------------------------------

    def lookup(
        self, plan_key: str, fingerprint: Fingerprint
    ) -> Optional[Relation]:
        entry = self._entries.get((plan_key, fingerprint))
        if entry is not None:
            self._entries.move_to_end((plan_key, fingerprint))
            self.hits += 1
            _record_event(self._name, "hit")
            return entry[0]
        if plan_key in self._known_plans:
            self.stale += 1
            _record_event(self._name, "stale")
        else:
            self.misses += 1
            _record_event(self._name, "miss")
        return None

    def store(
        self,
        plan_key: str,
        fingerprint: Fingerprint,
        tables: Iterable[str],
        result: Relation,
    ) -> None:
        key = (plan_key, fingerprint)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (result, tuple(tables))
        for table in self._entries[key][1]:
            self._by_table.setdefault(table, set()).add(key)
        self._known_plans[plan_key] = None
        self._known_plans.move_to_end(plan_key)
        while len(self._known_plans) > 4 * self._capacity:
            self._known_plans.popitem(last=False)
        self.stores += 1
        _record_event(self._name, "store")
        while len(self._entries) > self._capacity:
            victim, (_, victim_tables) = self._entries.popitem(last=False)
            self._unindex(victim, victim_tables)
            self.evictions += 1
            _record_event(self._name, "evict")

    def _unindex(
        self, key: Tuple[str, Fingerprint], tables: Tuple[str, ...]
    ) -> None:
        for table in tables:
            keys = self._by_table.get(table)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_table[table]

    # -- invalidation --------------------------------------------------

    def invalidate_tables(self, tables: Iterable[str]) -> int:
        """Drop every entry whose plan scans any of ``tables``.

        This is memory hygiene, not correctness: entries are keyed by
        version, so a post-commit reader could never hit them anyway.
        Returns the number of entries dropped.
        """
        dropped = 0
        for table in tables:
            for key in list(self._by_table.get(table, ())):
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._unindex(key, entry[1])
                    dropped += 1
        self.invalidations += dropped
        _record_event(self._name, "invalidate", dropped)
        return dropped

    def clear(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        self._by_table.clear()
        self.invalidations += dropped
        _record_event(self._name, "invalidate", dropped)
        return dropped

    # -- introspection -------------------------------------------------

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses + self.stale
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "name": self._name,
            "size": len(self._entries),
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return "QueryResultCache(%s, %d/%d, hit_rate=%.2f)" % (
            self._name, len(self._entries), self._capacity, self.hit_rate
        )
