"""Incremental view maintenance and MVCC-keyed result caching.

Two halves, both fed by the same per-table commit-diff stream the
:class:`~repro.relational.tx.TransactionManager` emits:

* :mod:`~repro.relational.ivm.delta` -- exact set-valued delta
  propagation through query plans, so a materialized view absorbs a
  commit by applying ``(cache - deleted) | inserted`` instead of
  recomputing.
* :mod:`~repro.relational.ivm.cache` -- a bounded LRU of query results
  keyed on (canonical plan key, per-table MVCC versions), so a result
  cached at version V can never be served to a reader whose tables
  moved past V.

Everything rides XST member equality: the diffs are XSets, so the
typed twins 1 / 1.0 / True collapse in deltas exactly as they do in
the base relations.
"""

from repro.relational.ivm.cache import (
    QueryResultCache,
    plan_cache_key,
    scan_tables,
)
from repro.relational.ivm.delta import Delta, DeltaPropagator, DeltaUnsupported

__all__ = [
    "Delta",
    "DeltaPropagator",
    "DeltaUnsupported",
    "QueryResultCache",
    "plan_cache_key",
    "scan_tables",
]
