"""CSV import/export for relations.

A small but necessary on-ramp: real data arrives as delimited text.
Import infers per-column types (int, then float, then string; empty
cells become ``None``) unless explicit converters are given; export
writes heading order deterministically.  Round-tripping a relation
through CSV preserves it whenever its values are ints, floats, strings
or None -- asserted by the tests.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation

__all__ = ["read_csv", "write_csv", "loads_csv", "dumps_csv"]


def _infer(cell: str) -> Any:
    if cell == "":
        return None
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


def loads_csv(
    text: str,
    converters: Optional[Mapping[str, Callable[[str], Any]]] = None,
) -> Relation:
    """Build a relation from CSV text (first row is the heading)."""
    reader = csv.reader(io.StringIO(text))
    try:
        names = next(reader)
    except StopIteration:
        raise SchemaError("CSV input has no heading row") from None
    converters = dict(converters or {})
    unknown = set(converters) - set(names)
    if unknown:
        raise SchemaError("converters for unknown columns: %s" % sorted(unknown))
    rows: List[Dict[str, Any]] = []
    for line_number, cells in enumerate(reader, start=2):
        if not cells:
            continue
        if len(cells) != len(names):
            raise SchemaError(
                "CSV line %d has %d cells for %d columns"
                % (line_number, len(cells), len(names))
            )
        row = {}
        for name, cell in zip(names, cells):
            convert = converters.get(name, _infer)
            row[name] = convert(cell)
        rows.append(row)
    return Relation.from_dicts(names, rows)


def read_csv(
    path: str,
    converters: Optional[Mapping[str, Callable[[str], Any]]] = None,
) -> Relation:
    """Load a relation from a CSV file."""
    with open(path, "r", newline="") as fh:
        return loads_csv(fh.read(), converters)


def dumps_csv(relation: Relation,
              columns: Optional[Sequence[str]] = None) -> str:
    """Render a relation as CSV text in heading (or given) order."""
    names = list(columns) if columns else list(relation.heading.names)
    relation.heading.require(names)
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(names)
    for record in relation.iter_dicts():
        writer.writerow(
            ["" if record[name] is None else record[name] for name in names]
        )
    return out.getvalue()


def write_csv(relation: Relation, path: str,
              columns: Optional[Sequence[str]] = None) -> None:
    """Write a relation to a CSV file."""
    with open(path, "w", newline="") as fh:
        fh.write(dumps_csv(relation, columns))
