"""Relational algebra as direct XST kernel calls.

Every operator here is a thin skin over one kernel operation -- the
point of the 1977 programme is precisely that a data management layer
*is* extended set processing:

=============  ======================================================
operator       kernel realization
=============  ======================================================
``select_eq``  Def 7.6 sigma-restriction by a key-fragment set
``select``     separation over rows (general predicates have no
               set-algebraic key; documented record-level fallback)
``project``    Def 7.4 sigma-domain with an attribute identity sigma
``rename``     Def 7.3 re-scope by scope on every row
``join``       Def 10.1 relative product keyed on shared attributes
``product``    relative product with the empty join key (everything
               matches everything)
``union`` etc  kernel Boolean algebra on the row sets
=============  ======================================================

All operators are set-at-a-time: one kernel call over whole relations,
no per-row interpretation in Python beyond what the kernel itself
performs.  The record-at-a-time equivalents used as the benchmark
baseline live in :mod:`repro.relational.storage` and the record mode
of :mod:`repro.relational.query`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.xst.builders import xrecord, xset
from repro.xst.domain import sigma_domain
from repro.xst.relative_product import relative_product
from repro.xst.rescope import rescope_by_scope
from repro.xst.restrict import sigma_restrict
from repro.xst.xset import XSet

__all__ = [
    "select_eq",
    "select",
    "project",
    "rename",
    "join",
    "semijoin",
    "product",
    "union",
    "difference",
    "intersection",
]


def _attribute_identity(attrs: Sequence[str]) -> XSet:
    """The sigma mapping each attribute scope to itself."""
    return XSet((attr, attr) for attr in attrs)


def select_eq(rel: Relation, conditions: Mapping[str, Any]) -> Relation:
    """Rows whose attributes equal the given values, via restriction.

    The conditions become a one-record key set and a Def 7.6
    restriction does the filtering -- the *set-processing* selection.
    """
    attrs = rel.heading.require(conditions)
    key = xset([xrecord({attr: conditions[attr] for attr in attrs})])
    rows = sigma_restrict(rel.rows, key, _attribute_identity(attrs))
    return Relation(rel.heading, rows)


def select(rel: Relation, predicate: Callable[[Dict[str, Any]], bool]) -> Relation:
    """Rows satisfying an arbitrary Python predicate.

    General predicates carry no extended-set key, so this is honest
    separation: the predicate sees each row as a dict.  Use
    :func:`select_eq` whenever the condition is an equality -- the
    optimizer rewrites eligible selects into restrictions.
    """
    kept = [
        (row, scope)
        for row, scope in rel.rows.pairs()
        if predicate(dict(row.as_record()))
    ]
    return Relation(rel.heading, XSet(kept))


def project(rel: Relation, attrs: Sequence[str]) -> Relation:
    """The sigma-domain over the chosen attributes (duplicates collapse)."""
    wanted = rel.heading.require(attrs)
    rows = sigma_domain(rel.rows, _attribute_identity(wanted))
    return Relation(rel.heading.project(wanted), rows)


def rename(rel: Relation, mapping: Mapping[str, str]) -> Relation:
    """Re-scope every row through an old-name -> new-name sigma."""
    rel.heading.require(mapping)
    new_heading = rel.heading.rename(dict(mapping))
    sigma = XSet(
        (name, mapping.get(name, name)) for name in rel.heading.names
    )
    rows = XSet(
        (rescope_by_scope(row, sigma), scope) for row, scope in rel.rows.pairs()
    )
    return Relation(new_heading, rows)


def join(rel: Relation, other: Relation) -> Relation:
    """Natural join: one Def 10.1 relative product on shared attributes.

    sigma2/omega1 extract the shared attributes as the join key;
    sigma1/omega2 keep each side whole, and the member-level union
    merges matching rows (shared values coincide by construction).
    Joins with no shared attribute degrade to :func:`product`.
    """
    shared = rel.heading.common(other.heading)
    key_sigma = _attribute_identity(shared)
    sigma = (_attribute_identity(rel.heading.names), key_sigma)
    omega = (key_sigma, _attribute_identity(other.heading.names))
    rows = relative_product(rel.rows, other.rows, sigma, omega)
    return Relation(rel.heading.union(other.heading), rows)


def semijoin(rel: Relation, other: Relation) -> Relation:
    """Rows of ``rel`` with at least one join partner in ``other``.

    Realized as a Def 7.6 restriction of ``rel`` by ``other``'s rows
    under the shared-attribute sigma -- restriction *is* semijoin.
    """
    shared = rel.heading.common(other.heading)
    if not shared:
        raise SchemaError("semijoin needs at least one shared attribute")
    rows = sigma_restrict(rel.rows, other.rows, _attribute_identity(shared))
    return Relation(rel.heading, rows)


def product(rel: Relation, other: Relation) -> Relation:
    """Cartesian product of relations with disjoint headings."""
    if not rel.heading.disjoint_from(other.heading):
        raise SchemaError(
            "product requires disjoint headings; shared: %s"
            % list(rel.heading.common(other.heading))
        )
    empty_key = XSet()
    sigma = (_attribute_identity(rel.heading.names), empty_key)
    omega = (empty_key, _attribute_identity(other.heading.names))
    rows = relative_product(rel.rows, other.rows, sigma, omega)
    return Relation(rel.heading.union(other.heading), rows)


def _require_same_heading(rel: Relation, other: Relation) -> None:
    if rel.heading != other.heading:
        raise SchemaError(
            "headings differ: %r vs %r" % (rel.heading, other.heading)
        )


def union(rel: Relation, other: Relation) -> Relation:
    _require_same_heading(rel, other)
    return Relation(rel.heading, rel.rows | other.rows)


def difference(rel: Relation, other: Relation) -> Relation:
    _require_same_heading(rel, other)
    return Relation(rel.heading, rel.rows - other.rows)


def intersection(rel: Relation, other: Relation) -> Relation:
    _require_same_heading(rel, other)
    return Relation(rel.heading, rel.rows & other.rows)
