"""Plan optimization via the composition theorem.

Section 12 argues that because compositions of processes are always
constructible (Theorem 11.2), data management behavior can be
*optimized*: intermediate operations that only relay results can be
eliminated before anything executes.  This optimizer applies that idea
to query plans with four rewrite families:

1. **Unary fusion** -- adjacent Project/Rename stages are one
   re-scoping process each, so their composition is a single stage
   whose sigma is the fused scope map (``Sigma.fused_output``); chains
   collapse to one node and intermediate materializations disappear.
2. **Selection pushdown** -- SelectEq commutes below Project/Rename
   (with attribute names mapped through) and into the matching side
   of a Join, shrinking relative-product inputs.
3. **Adjacent select merging** -- stacked SelectEq nodes merge into
   one restriction key.
4. **Join input ordering** -- the smaller estimated side becomes the
   build side of the hash-join relative product.

When the database carries a populated statistics catalog
(:attr:`Database.stats`, see :mod:`repro.relational.stats`), a fifth
stage runs after the fixed point: cost-based join-order enumeration
from :mod:`repro.relational.cost` replaces the single build-side swap
with a dynamic-programming search over the whole join lattice.  With
no (fresh) statistics the stage is skipped entirely and the output is
byte-identical to the heuristic pipeline.

Rewrites preserve results exactly (asserted in the tests: optimized
and unoptimized plans agree on every generated workload).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.gov.governor import checkpoint as _gov_checkpoint
from repro.obs import metrics as _metrics
from repro.obs.instrument import enabled as _obs_enabled
from repro.relational.query import (
    Database,
    Difference,
    Join,
    Plan,
    Project,
    Rename,
    Scan,
    SelectEq,
    SelectPred,
    Union,
)

__all__ = ["optimize", "estimate_rows", "ShardPipeline", "shard_pipeline"]


def optimize(plan: Plan, db: Database) -> Plan:
    """Apply the rewrite families bottom-up until a fixed point."""
    previous = None
    current = plan
    # Each pass strictly shrinks or reorders the tree; a handful of
    # passes reaches the fixed point on any realistic plan, and the
    # equality check guarantees termination regardless.
    while previous is None or current.explain() != previous.explain():
        _gov_checkpoint("optimizer.pass")
        previous = current
        current = _rewrite(current, db)
    return _maybe_cost_reorder(current, db)


def _maybe_cost_reorder(plan: Plan, db: Database) -> Plan:
    """Cost-based join ordering, applied only when statistics exist.

    The guard is deliberately strict: an empty or entirely-stale
    catalog leaves the heuristic plan untouched (byte-identical), so
    databases that never ran ANALYZE behave exactly as before.
    """
    catalog = getattr(db, "stats", None)
    if catalog is None or not catalog.names():
        _record_plan_mode("heuristic")
        return plan
    # Imported lazily: cost imports this module's sibling query types
    # and would otherwise create an import cycle at load time.
    from repro.relational.cost import CardinalityEstimator, reorder_joins

    estimator = CardinalityEstimator(db)
    if not estimator.has_stats(plan):
        _record_plan_mode("heuristic")
        return plan
    reordered = reorder_joins(plan, db, estimator)
    _record_plan_mode("cost")
    return reordered


def _record_plan_mode(mode: str) -> None:
    if _obs_enabled():
        _metrics.registry().counter(
            "repro_opt_plans_total",
            "Optimized plans by planning mode.", ("mode",),
        ).inc(mode=mode)


def estimate_rows(plan: Plan, db: Database) -> int:
    """Cheap cardinality estimate used for join ordering.

    Base relations report their true size; equality selections assume
    one-in-ten selectivity; joins assume the smaller input bounds the
    result.  Precision is unimportant -- only the relative order of
    join inputs is consumed.
    """
    if isinstance(plan, Scan):
        return db.relation(plan.name).cardinality()
    if isinstance(plan, SelectEq):
        return max(1, estimate_rows(plan.child, db) // 10)
    if isinstance(plan, SelectPred):
        return max(1, estimate_rows(plan.child, db) // 3)
    if isinstance(plan, (Project, Rename)):
        return estimate_rows(plan.child, db)
    if isinstance(plan, Join):
        return max(
            estimate_rows(plan.left, db), estimate_rows(plan.right, db)
        )
    if isinstance(plan, Union):
        return estimate_rows(plan.left, db) + estimate_rows(plan.right, db)
    if isinstance(plan, Difference):
        return estimate_rows(plan.left, db)
    raise TypeError("unknown plan node %r" % (plan,))


# ----------------------------------------------------------------------
# Rewrites
# ----------------------------------------------------------------------


def _rewrite(plan: Plan, db: Database) -> Plan:
    if isinstance(plan, Scan):
        return plan
    if isinstance(plan, SelectEq):
        return _rewrite_select(SelectEq(_rewrite(plan.child, db), plan.conditions), db)
    if isinstance(plan, SelectPred):
        return _rewrite_select_pred(
            SelectPred(
                _rewrite(plan.child, db), plan.predicate, plan.label,
                cache_key=plan.cache_key,
            )
        )
    if isinstance(plan, Project):
        return _rewrite_project(Project(_rewrite(plan.child, db), plan.attrs))
    if isinstance(plan, Rename):
        return _rewrite_rename(Rename(_rewrite(plan.child, db), plan.mapping))
    if isinstance(plan, Join):
        return _rewrite_join(
            Join(_rewrite(plan.left, db), _rewrite(plan.right, db)), db
        )
    if isinstance(plan, Union):
        return Union(_rewrite(plan.left, db), _rewrite(plan.right, db))
    if isinstance(plan, Difference):
        return Difference(_rewrite(plan.left, db), _rewrite(plan.right, db))
    raise TypeError("unknown plan node %r" % (plan,))


def _rewrite_select(plan: SelectEq, db: Database) -> Plan:
    child = plan.child
    # Merge stacked equality selections into one restriction key.
    if isinstance(child, SelectEq):
        merged = dict(child.conditions)
        for attr, value in plan.conditions.items():
            if attr in merged and merged[attr] != value:
                # Contradictory conditions: keep both nodes; the
                # restriction will produce the (empty) answer anyway.
                return plan
            merged[attr] = value
        return _rewrite_select(SelectEq(child.child, merged), db)
    # Push below a projection when the projection keeps the attributes.
    if isinstance(child, Project) and all(
        attr in child.attrs for attr in plan.conditions
    ):
        return Project(
            _rewrite_select(SelectEq(child.child, plan.conditions), db),
            child.attrs,
        )
    # Push below a rename by translating attribute names back.
    if isinstance(child, Rename):
        reverse = {new: old for old, new in child.mapping.items()}
        translated = {
            reverse.get(attr, attr): value
            for attr, value in plan.conditions.items()
        }
        return Rename(
            _rewrite_select(SelectEq(child.child, translated), db),
            child.mapping,
        )
    # Push into every join side that owns condition attributes.  An
    # attribute appearing in *both* headings filters both inputs: the
    # natural join equates shared attributes, so the condition holds on
    # each side independently and both relative-product inputs shrink.
    if isinstance(child, Join):
        left_names = set(_heading(child.left, db).names)
        right_names = set(_heading(child.right, db).names)
        attrs = set(plan.conditions)
        if attrs <= left_names | right_names:
            left_conditions = {
                attr: value
                for attr, value in plan.conditions.items()
                if attr in left_names
            }
            right_conditions = {
                attr: value
                for attr, value in plan.conditions.items()
                if attr in right_names
            }
            new_left = child.left
            if left_conditions:
                new_left = _rewrite_select(
                    SelectEq(child.left, left_conditions), db
                )
            new_right = child.right
            if right_conditions:
                new_right = _rewrite_select(
                    SelectEq(child.right, right_conditions), db
                )
            return Join(new_left, new_right)
    return plan


def _rewrite_select_pred(plan: SelectPred) -> Plan:
    """Push an opaque-predicate selection below re-scoping stages.

    The predicate sees exactly the row it would have seen above the
    stage: below a Project the full row is narrowed back to the
    projected attributes before the original predicate runs, and below
    a Rename the pre-rename row is translated through the scope map.
    Either way the predicate itself is never inspected -- only the row
    it is handed changes shape -- so the rewrite is safe for arbitrary
    Python callables.
    """
    child = plan.child
    if isinstance(child, Project):
        attrs = child.attrs
        predicate = plan.predicate

        def narrowed(row, _predicate=predicate, _attrs=attrs):
            return _predicate({name: row[name] for name in _attrs})

        # The wrapper changed which row shape the predicate sees, so
        # the cache key must say so -- otherwise a directly-built
        # predicate with the same key below this Project would alias.
        cache_key = plan.cache_key
        if cache_key is not None:
            cache_key = "narrow{%s}:%s" % (",".join(attrs), cache_key)
        return Project(
            _rewrite_select_pred(
                SelectPred(
                    child.child, narrowed, plan.label, cache_key=cache_key
                )
            ),
            child.attrs,
        )
    if isinstance(child, Rename):
        mapping = child.mapping
        predicate = plan.predicate

        def translated(row, _predicate=predicate, _mapping=mapping):
            return _predicate(
                {_mapping.get(name, name): value for name, value in row.items()}
            )

        cache_key = plan.cache_key
        if cache_key is not None:
            cache_key = "viarename{%s}:%s" % (
                ",".join(
                    "%s->%s" % item for item in sorted(mapping.items())
                ),
                cache_key,
            )
        return Rename(
            _rewrite_select_pred(
                SelectPred(
                    child.child, translated, plan.label, cache_key=cache_key
                )
            ),
            child.mapping,
        )
    return plan


def _compose_renames(
    inner: Mapping[str, str], outer: Mapping[str, str]
) -> Dict[str, str]:
    """One rename equivalent to ``inner`` followed by ``outer``.

    This is the scope-map composition behind ``Sigma.fused_output``:
    ``a -> m`` then ``m -> z`` becomes ``a -> z``.
    """
    fused = {}
    inner_outputs = set(inner.values())
    for old, mid in inner.items():
        fused[old] = outer.get(mid, mid)
    for old, new in outer.items():
        # Outer renames of attributes inner left untouched pass through;
        # outer keys that are inner *outputs* were already chained above.
        if old not in inner_outputs and old not in inner:
            fused[old] = new
    return {old: new for old, new in fused.items() if old != new}


def _rewrite_project(plan: Project) -> Plan:
    child = plan.child
    # Project o Project collapses to the outer attribute list.
    if isinstance(child, Project):
        return Project(child.child, plan.attrs)
    # Project o Rename: rename only what survives the projection.
    if isinstance(child, Rename):
        reverse = {new: old for old, new in child.mapping.items()}
        inner_attrs = tuple(reverse.get(attr, attr) for attr in plan.attrs)
        surviving = {
            old: new
            for old, new in child.mapping.items()
            if new in plan.attrs
        }
        inner = Project(child.child, inner_attrs)
        return Rename(inner, surviving) if surviving else inner
    return plan


def _rewrite_rename(plan: Rename) -> Plan:
    if not plan.mapping:
        return plan.child
    child = plan.child
    # Rename o Rename fuses into one scope map (composition theorem).
    if isinstance(child, Rename):
        fused = _compose_renames(child.mapping, plan.mapping)
        return Rename(child.child, fused) if fused else child.child
    return plan


def _rewrite_join(plan: Join, db: Database) -> Plan:
    # Build on the smaller estimated input: relative_product buckets
    # its second operand, so put the smaller side on the right.
    # Natural join is symmetric up to attribute order (headings merge
    # by name), so swapping operands is always result-preserving.
    if estimate_rows(plan.right, db) > estimate_rows(plan.left, db):
        return Join(plan.right, plan.left)
    return plan


def _heading(plan: Plan, db: Database):
    return db._heading_of(plan)


# ----------------------------------------------------------------------
# Shard pipelines: the pushdown unit of the distributed coordinator
# ----------------------------------------------------------------------


class ShardPipeline:
    """A select/project chain extracted from a plan, per shard source.

    The distributed coordinator cannot ship arbitrary plan trees to
    nodes -- but a chain of ``SelectEq``/``SelectPred``/``Project``
    over one source *is* shippable: every stage is row-local, so
    applying the chain inside each bucket before the rows leave the
    node preserves the answer while shrinking every shipment.  This
    is the "push selection and projection below the shuffle" rewrite,
    justified by the same composition argument as the local fusion
    rules above.

    ``source`` is the :class:`Scan` (single-table pipelines) or
    :class:`Join` (the coordinator decomposes its inputs recursively)
    the chain bottoms out on.  ``conditions`` merges every SelectEq
    on the way down (first-seen wins; a re-constrained attribute
    falls back to a predicate so conflicting constants still compose
    to the correct empty answer).
    """

    __slots__ = ("source", "conditions", "predicates", "attrs")

    def __init__(self, source: Plan, conditions, predicates, attrs):
        self.source = source
        self.conditions: Dict[str, object] = dict(conditions)
        self.predicates = list(predicates)
        self.attrs = None if attrs is None else tuple(attrs)

    def apply(self, relation):
        """Run the chain on one bucket's rows (node-local, no shipping)."""
        from repro.relational.algebra import project, select, select_eq

        out = relation
        if self.conditions:
            out = select_eq(out, self.conditions)
        for predicate, _label in self.predicates:
            out = select(out, predicate)
        if self.attrs is not None:
            out = project(out, self.attrs)
        return out

    def out_names(self, heading) -> tuple:
        """The attribute names rows carry after the chain runs."""
        return tuple(self.attrs) if self.attrs is not None \
            else tuple(heading.names)

    def describe(self) -> str:
        parts = []
        if self.conditions:
            parts.append(",".join(
                "%s=%r" % item for item in sorted(self.conditions.items())
            ))
        if self.predicates:
            parts.append("pred*%d" % len(self.predicates))
        if self.attrs is not None:
            parts.append("pi(%s)" % ",".join(self.attrs))
        return "[%s]" % " ".join(parts) if parts else "[*]"

    def __repr__(self) -> str:
        return "ShardPipeline(%s %s)" % (
            self.source.describe(), self.describe()
        )


def shard_pipeline(plan: Plan):
    """Decompose ``plan`` into a pushdown chain over a Scan or Join.

    Returns ``None`` when the tree contains a stage the coordinator
    cannot push (Rename, Union, Difference, aggregation wrappers);
    callers fall back or refuse with a schema error.
    """
    conditions: Dict[str, object] = {}
    predicates = []
    attrs = None
    node = plan
    while True:
        if isinstance(node, (Scan, Join)):
            return ShardPipeline(node, conditions, predicates, attrs)
        if isinstance(node, Project):
            # The outermost projection fixes the output columns; any
            # inner ones only narrow what the stages below may touch.
            if attrs is None:
                attrs = node.attrs
        elif isinstance(node, SelectEq):
            for attr, value in node.conditions.items():
                if attr in conditions and conditions[attr] != value:
                    # Conflicting constants: keep correctness via a
                    # predicate (the composition is the empty set).
                    predicates.append((
                        _eq_predicate(attr, value), "%s=%r" % (attr, value)
                    ))
                else:
                    conditions.setdefault(attr, value)
        elif isinstance(node, SelectPred):
            predicates.append((node.predicate, node.label))
        else:
            return None
        node = node.child


def _eq_predicate(attr: str, value):
    def predicate(row, _attr=attr, _value=value):
        return row[_attr] == _value

    return predicate
