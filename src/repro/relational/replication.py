"""Replica placement for the simulated distributed backend.

The VLDB-1977 programme promises *intrinsically reliable* backend
systems (PAPER section 1, section 12).  This module supplies the
placement half of that promise for :class:`repro.relational.distributed.Cluster`:
every hash partition (*bucket*) of a table is stored on
``replication_factor`` distinct nodes, so the loss of up to
``replication_factor - 1`` nodes leaves every bucket readable.

Placement is the classic successor scheme: bucket ``b``'s primary is
node ``b`` and its replicas are the next ``k-1`` nodes around the
ring.  The scheme is deterministic (no coordination state), spreads
replicas evenly, and guarantees that two tables partitioned on the
same attribute with the same factor are *co-replicated* -- each bucket
of both tables shares one replica set, which is what keeps
co-partitioned joins local even under failover.

Since the sharding rework the cluster routes through
:class:`~repro.relational.sharding.ShardMap`, which stores owner
rings as explicit, epoch-versioned *data* so they can change (moves,
splits, merges).  This module remains the formula the default map is
born from -- ``ShardMap.successor_rings`` produces exactly
:func:`replica_indices` geometry -- and :meth:`ReplicaPlacement.to_shard_map`
bridges a formulaic placement into the versioned world.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SchemaError
from repro.obs import metrics as _metrics
from repro.obs.instrument import enabled as _obs_enabled

__all__ = ["ReplicaPlacement", "replica_indices"]


def replica_indices(
    bucket: int, node_count: int, replication_factor: int
) -> Tuple[int, ...]:
    """The ring of node indices holding ``bucket``, primary first."""
    if not 0 <= bucket < node_count:
        raise SchemaError(
            "bucket %d outside the cluster's 0..%d bucket range"
            % (bucket, node_count - 1)
        )
    if not 1 <= replication_factor <= node_count:
        raise SchemaError(
            "replication factor %d needs 1..%d (cluster has %d nodes)"
            % (replication_factor, node_count, node_count)
        )
    return tuple(
        (bucket + offset) % node_count for offset in range(replication_factor)
    )


class ReplicaPlacement:
    """The placement map of one table: buckets -> replica node rings."""

    __slots__ = ("node_count", "replication_factor")

    def __init__(self, node_count: int, replication_factor: int):
        # Validate once up front so a bad factor fails at CREATE time,
        # not at first read.
        replica_indices(0, node_count, replication_factor)
        self.node_count = node_count
        self.replication_factor = replication_factor
        if _obs_enabled():
            # Placement geometry as point-in-time gauges, so an
            # exposition scrape shows what redundancy the running
            # cluster was built with (the copies themselves are priced
            # by the shipping counters in ``distributed.NetworkStats``).
            registry = _metrics.registry()
            registry.gauge(
                "repro_cluster_nodes", "Nodes in the current placement.",
            ).set(node_count)
            registry.gauge(
                "repro_cluster_replication_factor",
                "Copies per bucket in the current placement.",
            ).set(replication_factor)

    def replicas(self, bucket: int) -> Tuple[int, ...]:
        """Node indices holding ``bucket``, primary first."""
        return replica_indices(bucket, self.node_count, self.replication_factor)

    def primary(self, bucket: int) -> int:
        return self.replicas(bucket)[0]

    def ring(self, bucket: int) -> str:
        """The bucket's replica ring as a compact span attribute.

        Primary-first node indices joined with ``>`` (failover order),
        e.g. ``"2>3>0"`` -- stamped on per-bucket read spans so a
        trace shows which failover chain a read walked without
        consulting the placement separately.
        """
        return ">".join(str(index) for index in self.replicas(bucket))

    def buckets_on(self, node_index: int) -> List[int]:
        """Every bucket the given node holds a copy of."""
        return [
            bucket
            for bucket in range(self.node_count)
            if node_index in self.replicas(bucket)
        ]

    def survives(self, dead: frozenset) -> bool:
        """True if every bucket keeps at least one live replica."""
        return all(
            any(index not in dead for index in self.replicas(bucket))
            for bucket in range(self.node_count)
        )

    def to_shard_map(self, attr: str, epoch: int = 1):
        """This formulaic placement as an explicit, versioned map.

        The returned :class:`~repro.relational.sharding.ShardMap`
        reproduces the successor geometry bucket for bucket (epoch 1
        by default) -- the bridge a cluster crosses once, after which
        placement changes are epoch swings on the map, not new
        formulas.
        """
        from repro.relational.sharding import ShardMap

        return ShardMap.successor_rings(
            attr, self.node_count, self.replication_factor, epoch=epoch
        )

    def __repr__(self) -> str:
        return "ReplicaPlacement(%d nodes, factor=%d)" % (
            self.node_count, self.replication_factor
        )
