"""Multi-table transactions over constraint-guarded tables.

:class:`~repro.relational.constraints.Table` makes each *statement*
all-or-nothing; a :class:`TransactionManager` extends the guarantee to
*groups* of statements across tables.  Immutability makes this almost
free: beginning a transaction records each table's current relation
value (a pointer copy), and rollback restores the pointers.  Deferred
constraint checking re-validates every enrolled table at the
*outermost* commit, so mutually-referential updates (insert the
department and its employees in one transaction) order-independently
succeed or fail as a unit.

Usage::

    manager = TransactionManager({"emp": emp_table, "dept": dept_table})
    with manager.transaction():
        dept_table.insert({...})
        emp_table.insert({...})
    # both applied; any exception inside the block rolled both back

Nested transactions are supported as savepoints: the inner context
restores to its own begin-state on failure without disturbing the
outer transaction, and commit-time validation runs exactly once, when
the outermost scope commits.

Durability: pass ``log=`` a
:class:`~repro.relational.wal.WriteAheadLog` and every outermost
commit appends **one atomic record** -- the per-table inserted and
deleted row sets, diffed for free from the immutable begin/end
relation values -- *before* the transaction is considered committed.
A failed append rolls the tables back, so the in-memory state never
runs ahead of the durable log; a crash mid-append leaves a torn tail
that recovery truncates (the transaction never happened).

Statistics: pass ``stats=`` a
:class:`~repro.relational.stats.StatsCatalog` and every committed
insert/delete is counted against the affected relation's catalog
entry -- the same diff that feeds the WAL record feeds staleness
accounting, so a relation churned past its threshold silently drops
off the cost-based planner until the next ANALYZE.

MVCC: because relations are immutable values, snapshot isolation is
pointer bookkeeping.  Every outermost state-changing commit is a
*version* (``current_version``, equal to the WAL transaction id it
logged, so the durable record and the MVCC history share one
numbering).  :meth:`TransactionManager.snapshot` pins the latest
*committed* state -- never in-progress transaction state, so a reader
opened before a nested rollback cannot observe the rolled-back rows --
and arbitrarily many snapshots overlap the writer without blocking
it.  :meth:`TransactionManager.session` opens a read-write
:class:`SnapshotSession` whose mutations are buffered against the
pinned state (read-your-own-writes) and applied at :meth:`~
SnapshotSession.commit` under **first-committer-wins** conflict
detection: if any table the session wrote was committed past the
session's read version, commit raises a typed
:class:`~repro.errors.WriteConflictError` and the committed state is
untouched.  The version horizon is bounded: the manager tracks which
versions open snapshots pin (:meth:`retained_versions`) and a closing
snapshot immediately releases its pin -- old relation values become
garbage the moment the last snapshot reading them closes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Any, Callable, Dict, Iterator, List, Mapping, Optional, Set, Tuple,
)

from repro.errors import SchemaError, WriteConflictError
from repro.gov.governor import checkpoint as _gov_checkpoint
from repro.relational.constraints import Table
from repro.relational.relation import Relation
from repro.relational.wal import WriteAheadLog

__all__ = ["TransactionManager", "Snapshot", "SnapshotSession", "CommitDiff"]

#: What a commit-diff listener receives, per changed table: the
#: heading's attribute names plus the inserted and deleted row sets --
#: the exact payload the WAL record carries, so subscribers (view
#: maintenance, cache invalidation) see the same ground truth
#: durability does.
CommitDiff = Mapping[str, Tuple[Tuple[str, ...], Any, Any]]


class TransactionManager:
    """Groups mutations on several tables into atomic, loggable units."""

    def __init__(self, tables: Mapping[str, Table],
                 log: Optional[WriteAheadLog] = None,
                 stats=None):
        if not tables:
            raise SchemaError("a transaction manager needs at least one table")
        self._tables: Dict[str, Table] = dict(tables)
        self._savepoints: List[Dict[str, object]] = []
        self._deferred_depth = 0
        self._log = log
        self._stats = stats
        self._commits = 0
        # MVCC bookkeeping: the version at which each table last
        # changed (first-committer-wins reads this) and the versions
        # currently pinned by open snapshots (the version horizon).
        self._table_versions: Dict[str, int] = {}
        self._open_snapshots: Dict[int, int] = {}
        self._snapshot_ids = 0
        # Commit-diff subscribers, notified *after* a state-changing
        # outermost commit is fully durable (post-WAL, post-version
        # bump) -- never for rollbacks or no-op transactions.
        self._listeners: List[Callable[[int, CommitDiff], None]] = []
        self._pending_notice: Optional[Tuple[int, Dict]] = None

    @property
    def tables(self) -> Dict[str, Table]:
        return dict(self._tables)

    @property
    def log(self) -> Optional[WriteAheadLog]:
        return self._log

    @property
    def stats(self):
        """The attached statistics catalog, if any."""
        return self._stats

    @property
    def commits(self) -> int:
        """Outermost commits that changed state (each one logged when
        a log is attached)."""
        return self._commits

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError("unknown table %r" % (name,)) from None

    # ------------------------------------------------------------------
    # Savepoint mechanics
    # ------------------------------------------------------------------

    def _capture(self) -> Dict[str, object]:
        return {name: table.snapshot() for name, table in self._tables.items()}

    def _restore(self, savepoint: Dict[str, object]) -> None:
        # Restoring a previously-captured state needs no re-checking:
        # it was the live state when the transaction began.
        for name, relation in savepoint.items():
            self._tables[name]._current = relation

    def in_transaction(self) -> bool:
        return bool(self._savepoints)

    @property
    def depth(self) -> int:
        return len(self._savepoints)

    # ------------------------------------------------------------------
    # The transaction context
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, deferred: bool = False) -> Iterator["TransactionManager"]:
        """Atomic scope: exceptions roll every table back.

        With ``deferred=True``, per-statement constraint checking is
        suspended for the enrolled tables inside the scope and every
        table is validated at the outermost commit instead -- so
        cross-table invariants may be transiently broken (insert the
        employee before its department) as long as the commit state is
        consistent.  Deferral nests: an inner scope ending does not
        resume per-statement checking while any enclosing deferred
        scope is still open, and commit-time validation runs exactly
        once, at the outermost commit.  A failed commit (validation or
        log append) restores the begin-state and re-raises.
        """
        savepoint = self._capture()
        self._savepoints.append(savepoint)
        if deferred:
            self._deferred_depth += 1
            if self._deferred_depth == 1:
                for table in self._tables.values():
                    table.defer_validation(True)
        try:
            yield self
        except BaseException:
            self._restore(savepoint)
            raise
        else:
            if len(self._savepoints) == 1:
                try:
                    # Last cancellation point before the commit becomes
                    # durable: a transaction past its deadline rolls
                    # back here rather than logging a late commit.
                    _gov_checkpoint("tx.commit")
                    for table in self._tables.values():
                        table.check_now()
                    self._log_commit(savepoint)
                except BaseException:
                    self._restore(savepoint)
                    raise
                # The commit is durable and versioned; tell the
                # subscribers.  A listener exception propagates to the
                # caller but can no longer undo the commit.
                self._notify_listeners()
        finally:
            if deferred:
                self._deferred_depth -= 1
                if self._deferred_depth == 0:
                    for table in self._tables.values():
                        table.defer_validation(False)
            self._savepoints.pop()

    def _log_commit(self, savepoint: Dict[str, object]) -> None:
        """Append one atomic commit record for the outermost scope.

        The record carries, per changed table, the inserted and
        deleted row sets (immutable-value diffs) plus the heading, so
        recovery can redo the transaction -- including re-creating
        tables born after the last checkpoint.  No-op transactions log
        nothing.
        """
        changes = {}
        for name in sorted(self._tables):
            before = savepoint[name]
            after = self._tables[name].snapshot()
            if after.rows != before.rows:
                changes[name] = (
                    tuple(after.heading.names),
                    after.rows - before.rows,
                    before.rows - after.rows,
                )
        if not changes:
            return
        if self._log is not None:
            self._log.commit(self._commits + 1, changes)
        if self._stats is not None:
            # The durable diff doubles as staleness accounting: each
            # inserted or deleted row counts one mutation against the
            # relation's catalog entry.
            for name, (_, inserted, deleted) in changes.items():
                self._stats.record_mutations(
                    name, len(inserted) + len(deleted)
                )
        self._commits += 1
        # The WAL record above carries tx id == self._commits: the
        # durable numbering and the MVCC version are the same number.
        for name in changes:
            self._table_versions[name] = self._commits
        if self._listeners:
            # Stash the diff for transaction() to deliver *after* the
            # commit can no longer be rolled back -- firing here would
            # let a listener exception trigger _restore() on tables
            # whose changes the WAL already recorded.
            self._pending_notice = (self._commits, changes)

    def _notify_listeners(self) -> None:
        notice = self._pending_notice
        if notice is None:
            return
        self._pending_notice = None
        version, changes = notice
        for listener in list(self._listeners):
            listener(version, changes)

    # ------------------------------------------------------------------
    # Commit-diff subscriptions
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable[[int, CommitDiff], None]) -> None:
        """Call ``listener(version, changes)`` after each state-changing
        outermost commit.

        ``changes`` maps each changed table to ``(heading_names,
        inserted, deleted)`` -- the same immutable-diff payload the WAL
        record carries.  Listeners fire after the commit is durable and
        versioned; an exception from a listener propagates to the
        committer but never rolls the commit back.  Rollbacks and no-op
        transactions notify nothing.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[int, CommitDiff], None]) -> None:
        """Stop notifying ``listener``; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # MVCC: snapshots, sessions, and the version horizon
    # ------------------------------------------------------------------

    @property
    def current_version(self) -> int:
        """The version of the latest committed state (0 = initial)."""
        return self._commits

    def table_version(self, name: str) -> int:
        """The commit version at which ``name`` last changed (0: never
        through this manager)."""
        self.table(name)  # raise SchemaError on unknown names
        return self._table_versions.get(name, 0)

    def _committed_state(self) -> Dict[str, Relation]:
        """Pointer copies of the latest *committed* relation values.

        While a transaction is in progress the live table pointers
        hold uncommitted work, so the committed state is the outermost
        savepoint -- the begin-state of the open transaction.  With no
        transaction open, the live pointers *are* the committed state
        (statement autocommit).  This is what makes snapshot readers
        immune to in-progress and rolled-back work.
        """
        if self._savepoints:
            return dict(self._savepoints[0])  # type: ignore[arg-type]
        return {name: table.snapshot()
                for name, table in self._tables.items()}

    def snapshot(self) -> "Snapshot":
        """Pin the latest committed state for reading.

        Returns a :class:`Snapshot` whose reads are stable against
        every later commit, rollback, and in-progress transaction.
        Close it (or use it as a context manager) to release its
        version pin.
        """
        return Snapshot(self)

    def session(self) -> "SnapshotSession":
        """Open a read-write snapshot-isolation session.

        Reads are pinned like :meth:`snapshot`; writes buffer against
        the pinned state and apply on :meth:`SnapshotSession.commit`
        under first-committer-wins conflict detection.
        """
        return SnapshotSession(self)

    def _register_snapshot(self, version: int) -> int:
        self._snapshot_ids += 1
        self._open_snapshots[self._snapshot_ids] = version
        return self._snapshot_ids

    def _release_snapshot(self, token: int) -> None:
        self._open_snapshots.pop(token, None)

    @property
    def open_snapshot_count(self) -> int:
        return len(self._open_snapshots)

    def retained_versions(self) -> List[int]:
        """The distinct versions still pinned, oldest first.

        The current version is always retained (it is the live state);
        every other entry is pinned by at least one open snapshot, so
        the horizon length is bounded by ``open_snapshot_count + 1``
        and shrinks the moment old snapshots close.
        """
        versions = set(self._open_snapshots.values())
        versions.add(self._commits)
        return sorted(versions)

    def version_horizon(self) -> int:
        """How far back the oldest pinned version trails the current."""
        retained = self.retained_versions()
        return self._commits - retained[0]


class Snapshot:
    """A pinned, read-only view of one committed version.

    Holds pointer copies of the committed relation values at open
    time -- O(tables), no rows copied -- so reads cost nothing beyond
    a dict lookup and are stable against every concurrent writer.
    """

    def __init__(self, manager: TransactionManager):
        self._manager = manager
        self.version = manager.current_version
        self._state: Dict[str, Relation] = manager._committed_state()
        # Per-table versions at pin time: O(tables) pointer reads that
        # let result caches fingerprint this snapshot's reads without
        # touching row data.
        self._table_versions: Dict[str, int] = dict(manager._table_versions)
        self._token: Optional[int] = manager._register_snapshot(self.version)

    @property
    def closed(self) -> bool:
        return self._token is None

    def names(self) -> List[str]:
        return sorted(self._state)

    def relation(self, name: str) -> Relation:
        """The pinned value of table ``name`` at :attr:`version`."""
        self._require_open()
        try:
            return self._state[name]
        except KeyError:
            raise SchemaError("unknown table %r" % (name,)) from None

    def table_version(self, name: str) -> int:
        """The commit version at which ``name`` had last changed when
        this snapshot was pinned (0: never)."""
        if name not in self._state:
            raise SchemaError("unknown table %r" % (name,))
        return self._table_versions.get(name, 0)

    def _require_open(self) -> None:
        if self._token is None:
            raise SchemaError("snapshot is closed")

    def close(self) -> None:
        """Release the version pin; idempotent."""
        if self._token is not None:
            self._manager._release_snapshot(self._token)
            self._token = None

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return "%s(version=%d%s)" % (
            type(self).__name__, self.version,
            ", closed" if self.closed else "",
        )


class SnapshotSession(Snapshot):
    """A snapshot plus buffered writes and optimistic commit.

    Mutations apply to a private scratch copy of the pinned state
    (read-your-own-writes) and are recorded as an op list.  Nothing
    touches the shared tables until :meth:`commit`, which first runs
    first-committer-wins conflict detection and then replays the ops
    inside one ordinary deferred transaction -- constraint validation,
    WAL logging and stats accounting all ride the existing commit
    path.  A conflicting or failing commit leaves the committed state
    byte-identical to before.
    """

    def __init__(self, manager: TransactionManager):
        super().__init__(manager)
        self._ops: List[Tuple] = []
        self._scratch: Dict[str, Table] = {}
        self._written: Set[str] = set()

    # -- reads ---------------------------------------------------------

    def relation(self, name: str) -> Relation:
        """Pinned state with this session's own writes applied."""
        scratch = self._scratch.get(name)
        if scratch is not None:
            self._require_open()
            return scratch.snapshot()
        return super().relation(name)

    # -- buffered writes ----------------------------------------------

    def _scratch_table(self, name: str) -> Table:
        """A constraint-free working copy seeded from the pinned state."""
        self._require_open()
        table = self._scratch.get(name)
        if table is None:
            pinned = super().relation(name)
            table = Table(pinned.heading, pinned.iter_dicts())
            self._scratch[name] = table
        self._written.add(name)
        return table

    def insert(self, name: str, row: Mapping[str, Any]) -> None:
        self._scratch_table(name).insert(row)
        self._ops.append(("insert", name, dict(row)))

    def delete(self, name: str, conditions: Mapping[str, Any]) -> int:
        removed = self._scratch_table(name).delete(conditions)
        self._ops.append(("delete", name, dict(conditions)))
        return removed

    def update(self, name: str, conditions: Mapping[str, Any],
               changes: Mapping[str, Any]) -> int:
        changed = self._scratch_table(name).update(conditions, changes)
        self._ops.append(("update", name, dict(conditions), dict(changes)))
        return changed

    @property
    def pending_ops(self) -> int:
        return len(self._ops)

    # -- resolution ----------------------------------------------------

    def conflicts(self) -> List[str]:
        """Tables this session wrote that committed past its version."""
        manager = self._manager
        return sorted(
            name for name in self._written
            if manager._table_versions.get(name, 0) > self.version
        )

    def commit(self) -> int:
        """Apply the buffered writes; returns the new commit version.

        Raises :class:`~repro.errors.WriteConflictError` when another
        committer won on any written table (the buffered writes are
        discarded, the committed state is untouched), or whatever the
        replay raises (constraint violation, failed WAL append) --
        in every failure case the ordinary transaction rollback
        restores the pre-commit state.  The session is closed either
        way; a retry opens a fresh session on the new version.
        """
        self._require_open()
        try:
            conflicting = self.conflicts()
            if conflicting:
                raise WriteConflictError(
                    conflicting, self.version,
                    max(self._manager._table_versions[name]
                        for name in conflicting),
                )
            manager = self._manager
            with manager.transaction(deferred=True):
                for op in self._ops:
                    kind, name = op[0], op[1]
                    table = manager.table(name)
                    if kind == "insert":
                        table.insert(op[2])
                    elif kind == "delete":
                        table.delete(op[2])
                    else:
                        table.update(op[2], op[3])
            return manager.current_version
        finally:
            self.close()

    def rollback(self) -> None:
        """Discard the buffered writes and close the session."""
        self._ops.clear()
        self._scratch.clear()
        self._written.clear()
        self.close()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # Context-manager use commits on clean exit, rolls back on
        # exception -- the same discipline as transaction().
        if self.closed:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
