"""Multi-table transactions over constraint-guarded tables.

:class:`~repro.relational.constraints.Table` makes each *statement*
all-or-nothing; a :class:`TransactionManager` extends the guarantee to
*groups* of statements across tables.  Immutability makes this almost
free: beginning a transaction records each table's current relation
value (a pointer copy), and rollback restores the pointers.  Deferred
constraint checking re-validates every enrolled table at commit, so
mutually-referential updates (insert the department and its employees
in one transaction) order-independently succeed or fail as a unit.

Usage::

    manager = TransactionManager({"emp": emp_table, "dept": dept_table})
    with manager.transaction():
        dept_table.insert({...})
        emp_table.insert({...})
    # both applied; any exception inside the block rolled both back

Nested transactions are supported as savepoints: the inner context
restores to its own begin-state on failure without disturbing the
outer transaction.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping

from repro.errors import SchemaError
from repro.relational.constraints import Table

__all__ = ["TransactionManager"]


class TransactionManager:
    """Groups mutations on several tables into atomic units."""

    def __init__(self, tables: Mapping[str, Table]):
        if not tables:
            raise SchemaError("a transaction manager needs at least one table")
        self._tables: Dict[str, Table] = dict(tables)
        self._savepoints: List[Dict[str, object]] = []

    @property
    def tables(self) -> Dict[str, Table]:
        return dict(self._tables)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError("unknown table %r" % (name,)) from None

    # ------------------------------------------------------------------
    # Savepoint mechanics
    # ------------------------------------------------------------------

    def _capture(self) -> Dict[str, object]:
        return {name: table.snapshot() for name, table in self._tables.items()}

    def _restore(self, savepoint: Dict[str, object]) -> None:
        # Restoring a previously-captured state needs no re-checking:
        # it was the live state when the transaction began.
        for name, relation in savepoint.items():
            self._tables[name]._current = relation

    def in_transaction(self) -> bool:
        return bool(self._savepoints)

    @property
    def depth(self) -> int:
        return len(self._savepoints)

    # ------------------------------------------------------------------
    # The transaction context
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, deferred: bool = False) -> Iterator["TransactionManager"]:
        """Atomic scope: exceptions roll every table back.

        With ``deferred=True``, per-statement constraint checking is
        suspended for the enrolled tables inside the scope and every
        table is validated at commit instead -- so cross-table
        invariants may be transiently broken (insert the employee
        before its department) as long as the commit state is
        consistent.  A failed commit restores the begin-state and
        re-raises.
        """
        savepoint = self._capture()
        self._savepoints.append(savepoint)
        if deferred:
            for table in self._tables.values():
                table.defer_validation(True)
        try:
            yield self
        except BaseException:
            self._restore(savepoint)
            raise
        else:
            try:
                for table in self._tables.values():
                    table.check_now()
            except Exception:
                self._restore(savepoint)
                raise
        finally:
            if deferred:
                for table in self._tables.values():
                    table.defer_validation(False)
            self._savepoints.pop()
