"""Multi-table transactions over constraint-guarded tables.

:class:`~repro.relational.constraints.Table` makes each *statement*
all-or-nothing; a :class:`TransactionManager` extends the guarantee to
*groups* of statements across tables.  Immutability makes this almost
free: beginning a transaction records each table's current relation
value (a pointer copy), and rollback restores the pointers.  Deferred
constraint checking re-validates every enrolled table at the
*outermost* commit, so mutually-referential updates (insert the
department and its employees in one transaction) order-independently
succeed or fail as a unit.

Usage::

    manager = TransactionManager({"emp": emp_table, "dept": dept_table})
    with manager.transaction():
        dept_table.insert({...})
        emp_table.insert({...})
    # both applied; any exception inside the block rolled both back

Nested transactions are supported as savepoints: the inner context
restores to its own begin-state on failure without disturbing the
outer transaction, and commit-time validation runs exactly once, when
the outermost scope commits.

Durability: pass ``log=`` a
:class:`~repro.relational.wal.WriteAheadLog` and every outermost
commit appends **one atomic record** -- the per-table inserted and
deleted row sets, diffed for free from the immutable begin/end
relation values -- *before* the transaction is considered committed.
A failed append rolls the tables back, so the in-memory state never
runs ahead of the durable log; a crash mid-append leaves a torn tail
that recovery truncates (the transaction never happened).

Statistics: pass ``stats=`` a
:class:`~repro.relational.stats.StatsCatalog` and every committed
insert/delete is counted against the affected relation's catalog
entry -- the same diff that feeds the WAL record feeds staleness
accounting, so a relation churned past its threshold silently drops
off the cost-based planner until the next ANALYZE.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

from repro.errors import SchemaError
from repro.gov.governor import checkpoint as _gov_checkpoint
from repro.relational.constraints import Table
from repro.relational.wal import WriteAheadLog

__all__ = ["TransactionManager"]


class TransactionManager:
    """Groups mutations on several tables into atomic, loggable units."""

    def __init__(self, tables: Mapping[str, Table],
                 log: Optional[WriteAheadLog] = None,
                 stats=None):
        if not tables:
            raise SchemaError("a transaction manager needs at least one table")
        self._tables: Dict[str, Table] = dict(tables)
        self._savepoints: List[Dict[str, object]] = []
        self._deferred_depth = 0
        self._log = log
        self._stats = stats
        self._commits = 0

    @property
    def tables(self) -> Dict[str, Table]:
        return dict(self._tables)

    @property
    def log(self) -> Optional[WriteAheadLog]:
        return self._log

    @property
    def stats(self):
        """The attached statistics catalog, if any."""
        return self._stats

    @property
    def commits(self) -> int:
        """Outermost commits that changed state (each one logged when
        a log is attached)."""
        return self._commits

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError("unknown table %r" % (name,)) from None

    # ------------------------------------------------------------------
    # Savepoint mechanics
    # ------------------------------------------------------------------

    def _capture(self) -> Dict[str, object]:
        return {name: table.snapshot() for name, table in self._tables.items()}

    def _restore(self, savepoint: Dict[str, object]) -> None:
        # Restoring a previously-captured state needs no re-checking:
        # it was the live state when the transaction began.
        for name, relation in savepoint.items():
            self._tables[name]._current = relation

    def in_transaction(self) -> bool:
        return bool(self._savepoints)

    @property
    def depth(self) -> int:
        return len(self._savepoints)

    # ------------------------------------------------------------------
    # The transaction context
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self, deferred: bool = False) -> Iterator["TransactionManager"]:
        """Atomic scope: exceptions roll every table back.

        With ``deferred=True``, per-statement constraint checking is
        suspended for the enrolled tables inside the scope and every
        table is validated at the outermost commit instead -- so
        cross-table invariants may be transiently broken (insert the
        employee before its department) as long as the commit state is
        consistent.  Deferral nests: an inner scope ending does not
        resume per-statement checking while any enclosing deferred
        scope is still open, and commit-time validation runs exactly
        once, at the outermost commit.  A failed commit (validation or
        log append) restores the begin-state and re-raises.
        """
        savepoint = self._capture()
        self._savepoints.append(savepoint)
        if deferred:
            self._deferred_depth += 1
            if self._deferred_depth == 1:
                for table in self._tables.values():
                    table.defer_validation(True)
        try:
            yield self
        except BaseException:
            self._restore(savepoint)
            raise
        else:
            if len(self._savepoints) == 1:
                try:
                    # Last cancellation point before the commit becomes
                    # durable: a transaction past its deadline rolls
                    # back here rather than logging a late commit.
                    _gov_checkpoint("tx.commit")
                    for table in self._tables.values():
                        table.check_now()
                    self._log_commit(savepoint)
                except BaseException:
                    self._restore(savepoint)
                    raise
        finally:
            if deferred:
                self._deferred_depth -= 1
                if self._deferred_depth == 0:
                    for table in self._tables.values():
                        table.defer_validation(False)
            self._savepoints.pop()

    def _log_commit(self, savepoint: Dict[str, object]) -> None:
        """Append one atomic commit record for the outermost scope.

        The record carries, per changed table, the inserted and
        deleted row sets (immutable-value diffs) plus the heading, so
        recovery can redo the transaction -- including re-creating
        tables born after the last checkpoint.  No-op transactions log
        nothing.
        """
        changes = {}
        for name in sorted(self._tables):
            before = savepoint[name]
            after = self._tables[name].snapshot()
            if after.rows != before.rows:
                changes[name] = (
                    tuple(after.heading.names),
                    after.rows - before.rows,
                    before.rows - after.rows,
                )
        if not changes:
            return
        if self._log is not None:
            self._log.commit(self._commits + 1, changes)
        if self._stats is not None:
            # The durable diff doubles as staleness accounting: each
            # inserted or deleted row counts one mutation against the
            # relation's catalog entry.
            for name, (_, inserted, deleted) in changes.items():
                self._stats.record_mutations(
                    name, len(inserted) + len(deleted)
                )
        self._commits += 1
