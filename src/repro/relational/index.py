"""Secondary indexes over relations: hash for equality, sorted for ranges.

The SetStore's on-demand hash indexes answer equality probes; range
predicates (``salary < 50000``) need an *ordered* access path.  A
:class:`SortedIndex` keeps one bisect-searchable array of (value, row)
entries per attribute; an :class:`IndexedRelation` bundles a relation
with lazily-built indexes of both kinds and answers equality, range
and top-k queries without scanning.

Indexes are derived data: they are built *from* the canonical row set
and carry its digest, so staleness is detectable (the same mechanism
:mod:`repro.relational.views` uses).  This is "dynamic data
restructuring" in ref [4]'s vocabulary -- the stored set never
changes; access paths come and go.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.xst.builders import xset
from repro.xst.serialization import digest
from repro.xst.xset import XSet

__all__ = ["SortedIndex", "IndexedRelation"]


class SortedIndex:
    """A bisect-searchable (value, row) array for one attribute."""

    def __init__(self, relation: Relation, attr: str):
        relation.heading.require([attr])
        entries: List[Tuple[Any, XSet]] = []
        for row, _ in relation.rows.pairs():
            for value in row.elements_at(attr):
                entries.append((value, row))
        try:
            entries.sort(key=lambda entry: entry[0])
        except TypeError as exc:
            raise SchemaError(
                "attribute %r holds incomparable values; a sorted index "
                "needs a totally ordered column" % (attr,)
            ) from exc
        self._attr = attr
        self._values = [value for value, _ in entries]
        self._rows = [row for _, row in entries]
        self.source_digest = digest(relation.rows)

    @property
    def attr(self) -> str:
        return self._attr

    def __len__(self) -> int:
        return len(self._rows)

    def equal(self, value: Any) -> List[XSet]:
        low = bisect_left(self._values, value)
        high = bisect_right(self._values, value)
        return self._rows[low:high]

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = False,
    ) -> List[XSet]:
        """Rows with ``low <= value < high`` (bounds optional/tunable)."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect_left(self._values, low)
        else:
            start = bisect_right(self._values, low)
        if high is None:
            stop = len(self._values)
        elif include_high:
            stop = bisect_right(self._values, high)
        else:
            stop = bisect_left(self._values, high)
        return self._rows[start:stop]

    def smallest(self, count: int) -> List[XSet]:
        """The rows holding the ``count`` smallest values."""
        return self._rows[:count]

    def largest(self, count: int) -> List[XSet]:
        """The rows holding the ``count`` largest values (descending)."""
        if count <= 0:
            return []
        return list(reversed(self._rows[-count:]))


class IndexedRelation:
    """A relation plus lazily-built equality and range access paths."""

    def __init__(self, relation: Relation):
        self._relation = relation
        self._sorted: Dict[str, SortedIndex] = {}
        self._hash: Dict[str, Dict[Any, List[XSet]]] = {}

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def heading(self):
        return self._relation.heading

    def __len__(self) -> int:
        return self._relation.cardinality()

    # -- access-path construction ---------------------------------------

    def sorted_index(self, attr: str) -> SortedIndex:
        index = self._sorted.get(attr)
        if index is None:
            index = SortedIndex(self._relation, attr)
            self._sorted[attr] = index
        return index

    def _hash_index(self, attr: str) -> Dict[Any, List[XSet]]:
        self._relation.heading.require([attr])
        index = self._hash.get(attr)
        if index is None:
            index = {}
            for row, _ in self._relation.rows.pairs():
                for value in row.elements_at(attr):
                    index.setdefault(value, []).append(row)
            self._hash[attr] = index
        return index

    def indexed_attrs(self) -> Sequence[str]:
        return sorted(set(self._sorted) | set(self._hash))

    # -- queries ------------------------------------------------------------

    def where_equal(self, attr: str, value: Any) -> Relation:
        rows = self._hash_index(attr).get(value, [])
        return Relation(self._relation.heading, xset(rows))

    def where_between(
        self,
        attr: str,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = False,
    ) -> Relation:
        rows = self.sorted_index(attr).range(
            low, high, include_low=include_low, include_high=include_high
        )
        return Relation(self._relation.heading, xset(rows))

    def top_k(self, attr: str, count: int, largest: bool = True) -> Relation:
        index = self.sorted_index(attr)
        rows = index.largest(count) if largest else index.smallest(count)
        return Relation(self._relation.heading, xset(rows))

    def is_fresh(self) -> bool:
        """Every built sorted index still matches the row set's digest."""
        current = digest(self._relation.rows)
        return all(
            index.source_digest == current for index in self._sorted.values()
        )
