"""Views: named queries, optionally materialized and delta-maintained.

A view is a plan over base relations.  A *virtual* view re-executes on
every read; a *materialized* view caches its result.  Staleness
tracking comes in two flavors:

* **Version mode** (a :class:`~repro.relational.tx.TransactionManager`
  is attached): the view records the MVCC per-table version of every
  dependency at refresh time, so ``is_stale`` is O(tables) pointer
  comparisons -- no row is touched.  Better: the catalog subscribes to
  the manager's commit-diff stream and *maintains* materialized views
  incrementally, propagating each commit's exact insert/delete sets
  through the view plan (:mod:`repro.relational.ivm.delta`) and
  applying ``(cache - deleted) | inserted`` instead of recomputing.
  Plans containing a node with no delta rule fall back to marking the
  view stale; the next read recomputes.
* **Digest mode** (no manager): staleness is a pure set-level
  comparison -- "do the inputs still hash to what I saw?" -- exactly
  the canonical-serialization story of the original design.  The
  digest path also survives in version mode as
  :meth:`ViewCatalog.verify`, the ``repro fsck``-style cross-check
  that a maintained cache is byte-identical to a fresh recomputation.

:class:`ViewCatalog` extends a :class:`~repro.relational.query.
Database` with view definitions; views can reference earlier views,
and reads resolve through the chain.  Stacked materialized views
maintain in definition order, each view's delta feeding its
dependents' propagation as if it were a base-table diff.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import SchemaError
from repro.gov.governor import checkpoint as _gov_checkpoint
from repro.relational.optimizer import optimize
from repro.relational.query import Database, Plan, Scan
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.serialization import digest
from repro.xst.xset import XSet

__all__ = ["View", "ViewCatalog"]


def _base_relations(plan: Plan) -> List[str]:
    """The Scan names a plan reads, in discovery order, deduplicated."""
    names: List[str] = []

    def walk(node: Plan) -> None:
        if isinstance(node, Scan):
            if node.name not in names:
                names.append(node.name)
            return
        for child in node.children():
            walk(child)

    walk(plan)
    return names


class View:
    """A named plan with optional materialization state."""

    def __init__(self, name: str, plan: Plan, materialized: bool):
        self.name = name
        self.plan = plan
        self.materialized = materialized
        self._cache: Optional[Relation] = None
        self._input_digests: Optional[Dict[str, str]] = None
        # Version-mode staleness fingerprint: dependency -> version at
        # last refresh (base tables by MVCC version, materialized view
        # dependencies by their change counter).  None = stale.
        self._base_versions: Optional[Dict[str, int]] = None
        #: Manager commit version at the last refresh or delta apply.
        self.refresh_version = 0
        #: Bumps whenever the materialized contents change -- the
        #: "version" dependents fingerprint this view by.
        self.change_count = 0
        self.reads = 0
        self.cache_hits = 0
        self.delta_applies = 0
        self.recomputes = 0
        self.fallbacks = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.reads if self.reads else 0.0

    def __repr__(self) -> str:
        kind = "materialized" if self.materialized else "virtual"
        return "View(%s, %s)" % (self.name, kind)


class ViewCatalog:
    """A database plus named views (virtual or materialized).

    With ``manager`` attached the catalog keeps ``db`` synchronized
    with the manager's committed state (applying each commit's diff)
    and incrementally maintains every materialized view after every
    commit.  All mutations must then flow through the manager --
    out-of-band ``db.add`` calls are invisible to version-mode
    staleness.
    """

    def __init__(self, db: Database, manager=None):
        self._db = db
        self._views: Dict[str, View] = {}
        self._manager = manager
        if manager is not None:
            # Seed the database from the committed state so the first
            # diff applies to the right base values.
            for name, relation in manager._committed_state().items():
                db.add(name, relation)
            manager.subscribe(self._on_commit)

    @property
    def database(self) -> Database:
        return self._db

    @property
    def manager(self):
        return self._manager

    def close(self) -> None:
        """Detach from the manager's commit stream; idempotent."""
        if self._manager is not None:
            self._manager.unsubscribe(self._on_commit)
            self._manager = None

    # ------------------------------------------------------------------
    # Definition
    # ------------------------------------------------------------------

    def define(self, name: str, plan: Plan, materialized: bool = False) -> View:
        """Register a view; names may not shadow base relations."""
        if name in self._views:
            raise SchemaError("view %r already defined" % (name,))
        try:
            self._db.relation(name)
        except SchemaError:
            pass
        else:
            raise SchemaError(
                "view %r would shadow a base relation" % (name,)
            )
        for base in _base_relations(plan):
            if base not in self._views:
                self._db.relation(base)  # raises for unknown names
        view = View(name, plan, materialized)
        self._views[name] = view
        return view

    def drop(self, name: str) -> View:
        """Remove a view; refuses while another view references it."""
        view = self._views.get(name)
        if view is None:
            raise SchemaError("unknown view %r" % (name,))
        for other in self._views.values():
            if other.name != name and name in _base_relations(other.plan):
                raise SchemaError(
                    "view %r is referenced by view %r" % (name, other.name)
                )
        del self._views[name]
        self._db.remove("__view__" + name)
        if self._db._stats is not None:
            self._db.stats.drop(name)
            self._db.stats.drop("__view__" + name)
        return view

    def names(self) -> List[str]:
        return sorted(self._views)

    def view(self, name: str) -> View:
        view = self._views.get(name)
        if view is None:
            raise SchemaError("unknown view %r" % (name,))
        return view

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _resolve_plan(self, plan: Plan) -> Plan:
        """Inline view references by materializing them into the db.

        Views referencing views resolve recursively; each referenced
        view's current rows are installed as a shadow base relation
        for the duration of execution.
        """
        for base in _base_relations(plan):
            if base in self._views:
                self._db.add("__view__" + base, self.read(base))
        return _rewrite_scans(
            plan,
            {base: "__view__" + base for base in _base_relations(plan)
             if base in self._views},
        )

    def read(self, name: str) -> Relation:
        """The view's current contents (cached if materialized+fresh)."""
        view = self._views.get(name)
        if view is None:
            raise SchemaError("unknown view %r" % (name,))
        view.reads += 1
        if view.materialized and view._cache is not None and not self.is_stale(
            name
        ):
            view.cache_hits += 1
            return view._cache
        plan = optimize(self._resolve_plan(view.plan), self._db)
        result = self._db.execute(plan)
        if view.materialized:
            if view._cache is None or result != view._cache:
                view.change_count += 1
            view._cache = result
            view.recomputes += 1
            self._record_refresh(view)
        return result

    def execute(self, plan: Plan) -> Relation:
        """Run an ad-hoc plan that may scan views as if they were
        relations (each view reference resolves through :meth:`read`)."""
        return self._db.execute(optimize(self._resolve_plan(plan), self._db))

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------

    def _current_digests(self, view: View) -> Dict[str, str]:
        digests = {}
        for base in _base_relations(view.plan):
            if base in self._views:
                digests[base] = digest(self.read(base).rows)
            else:
                digests[base] = digest(self._db.relation(base).rows)
        return digests

    def _table_version(self, name: str) -> int:
        if self._manager is not None:
            try:
                return self._manager.table_version(name)
            except SchemaError:
                pass  # known to the db only (e.g. loaded out-of-band)
        return self._db.table_version(name)

    def _dependency_versions(self, view: View) -> Dict[str, int]:
        """Current versions of every dependency, views chased down.

        Virtual view references expand to their base tables;
        materialized references contribute their change counter --
        which is exactly what moves when *their* contents move.
        """
        versions: Dict[str, int] = {}

        def visit(name: str) -> None:
            dep = self._views.get(name)
            if dep is None:
                versions[name] = self._table_version(name)
            elif dep.materialized:
                versions["view:" + name] = dep.change_count
            else:
                for base in _base_relations(dep.plan):
                    visit(base)

        for base in _base_relations(view.plan):
            visit(base)
        return versions

    def is_stale(self, name: str) -> bool:
        """True when a materialized view's inputs have changed.

        Virtual views are never stale (they always recompute); an
        unmaterialized-yet materialized view is considered stale.
        With a manager attached this is O(dependencies) version
        comparisons; without one it digests the base relations.
        """
        view = self._views.get(name)
        if view is None:
            raise SchemaError("unknown view %r" % (name,))
        if not view.materialized:
            return False
        if self._manager is not None:
            if view._base_versions is None:
                return True
            if view._base_versions != self._dependency_versions(view):
                return True
            # A fresh-looking fingerprint over a stale dependency is
            # still stale (the dependency's counter only moves when it
            # actually re-materializes).
            return any(
                self.is_stale(base) for base in _base_relations(view.plan)
                if base in self._views and self._views[base].materialized
            )
        if view._input_digests is None:
            return True
        return self._current_digests(view) != view._input_digests

    def refresh(self, name: str) -> Relation:
        """Force recomputation of a materialized view."""
        view = self._views.get(name)
        if view is None:
            raise SchemaError("unknown view %r" % (name,))
        view._cache = None
        view._input_digests = None
        view._base_versions = None
        return self.read(name)

    def verify(self, name: str) -> bool:
        """Digest cross-check: does the cache match a fresh compute?

        The O(data) integrity pass version-mode staleness replaced --
        kept for ``repro views --verify`` / fsck-style audits.  Views
        without a cache (virtual, or not yet materialized) verify
        trivially.
        """
        view = self.view(name)
        if not view.materialized or view._cache is None:
            return True
        plan = optimize(self._resolve_plan(view.plan), self._db)
        fresh = self._db.execute(plan)
        return digest(view._cache.rows) == digest(fresh.rows)

    # ------------------------------------------------------------------
    # Incremental maintenance (version mode)
    # ------------------------------------------------------------------

    def _record_refresh(self, view: View) -> None:
        if self._manager is not None:
            view._base_versions = self._dependency_versions(view)
            view.refresh_version = self._manager.current_version
            self._install_stats(view)
        else:
            view._input_digests = self._current_digests(view)

    def _install_stats(self, view: View) -> None:
        """Teach the stats catalog this view's cardinality.

        Row counts alone (no per-attribute structure): enough for the
        planner's join ordering over view shadows, and O(1) to keep
        current on every delta apply.
        """
        if view._cache is None:
            return
        from repro.relational.stats import RelationStats

        stats = RelationStats(view._cache.cardinality(), {})
        self._db.stats.install(view.name, stats)
        self._db.stats.install("__view__" + view.name, stats)

    def _on_commit(self, version: int, changes) -> None:
        """Manager commit hook: sync base tables, maintain every view."""
        from repro.relational.ivm.delta import Delta

        base_deltas: Dict[str, Delta] = {}
        for name in sorted(changes):
            heading_names, inserted, deleted = changes[name]
            heading = Heading(heading_names)
            delta = Delta(
                Relation(heading, inserted), Relation(heading, deleted)
            )
            old = self._db._relations.get(name)
            if old is None:
                old = Relation(heading, XSet())
            self._db.add(name, delta.apply_to(old))
            base_deltas[name] = delta
        if self._db.result_cache is not None:
            self._db.result_cache.invalidate_tables(sorted(changes))
        failed: set = set()
        for name, view in list(self._views.items()):
            if view.materialized:
                self._maintain(view, base_deltas, version, failed)

    def _maintain(
        self, view: View, base_deltas: Dict[str, "Delta"], version: int,
        failed: set,
    ) -> None:
        from repro.relational.ivm.delta import (
            DeltaPropagator,
            DeltaUnsupported,
        )

        if view._cache is None or view._base_versions is None:
            # Not materialized yet (or already stale): nothing to
            # maintain; the next read computes from current state.
            failed.add(view.name)
            return
        current = self._dependency_versions(view)
        if current == view._base_versions:
            return  # untouched by this commit
        try:
            expanded = self._expand_for_delta(view.plan, failed)
            propagator = DeltaPropagator(self._db, base_deltas)
            delta = propagator.delta(expanded)
        except DeltaUnsupported:
            view.fallbacks += 1
            view._base_versions = None  # honest: next read recomputes
            failed.add(view.name)
            return
        if not delta.is_empty():
            view._cache = delta.apply_to(view._cache)
            view.change_count += 1
            view.delta_applies += 1
            _gov_checkpoint(
                "ivm.apply", delta.size(), len(delta.heading.names)
            )
            shadow = "__view__" + view.name
            self._db.add(shadow, view._cache)
            base_deltas[shadow] = delta
        view._base_versions = self._dependency_versions(view)
        view.refresh_version = version
        self._install_stats(view)

    def _expand_for_delta(self, plan: Plan, failed: set) -> Plan:
        """Rewrite a view plan so the propagator sees only relations.

        Virtual view references inline their (expanded) plans;
        materialized references become scans of their ``__view__``
        shadow relation -- whose delta this round is already in the
        propagator's base set.  References to unmaintainable views
        (no cache yet, or fell back this round) are unmaintainable
        themselves.
        """
        from repro.relational.ivm.delta import DeltaUnsupported

        def transform(scan: Scan) -> Plan:
            view = self._views.get(scan.name)
            if view is None:
                return scan
            if not view.materialized:
                return self._expand_for_delta(view.plan, failed)
            if scan.name in failed or view._cache is None:
                raise DeltaUnsupported(
                    "view %r depends on unmaintained view %r"
                    % (scan.name, scan.name)
                )
            shadow = "__view__" + scan.name
            if shadow not in self._db._relations:
                self._db.add(shadow, view._cache)
            return Scan(shadow)

        return _transform_scans(plan, transform)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> List[Dict[str, object]]:
        """One summary row per view (for ``repro views`` and tests)."""
        rows = []
        for name in self.names():
            view = self._views[name]
            rows.append({
                "name": name,
                "kind": "materialized" if view.materialized else "virtual",
                "stale": self.is_stale(name),
                "rows": (
                    view._cache.cardinality()
                    if view._cache is not None else None
                ),
                "refresh_version": view.refresh_version,
                "reads": view.reads,
                "hit_rate": view.hit_rate,
                "delta_applies": view.delta_applies,
                "recomputes": view.recomputes,
                "fallbacks": view.fallbacks,
            })
        return rows


def _transform_scans(plan: Plan, transform: Callable[[Scan], Plan]) -> Plan:
    """Rebuild a plan with every Scan passed through ``transform``."""
    from repro.relational.query import (
        Difference,
        Join,
        Project,
        Rename,
        SelectEq,
        SelectPred,
        Union,
    )

    if isinstance(plan, Scan):
        return transform(plan)
    if isinstance(plan, SelectEq):
        return SelectEq(
            _transform_scans(plan.child, transform), plan.conditions
        )
    if isinstance(plan, SelectPred):
        return SelectPred(
            _transform_scans(plan.child, transform), plan.predicate,
            plan.label, cache_key=plan.cache_key,
        )
    if isinstance(plan, Project):
        return Project(_transform_scans(plan.child, transform), plan.attrs)
    if isinstance(plan, Rename):
        return Rename(_transform_scans(plan.child, transform), plan.mapping)
    if isinstance(plan, Join):
        return Join(
            _transform_scans(plan.left, transform),
            _transform_scans(plan.right, transform),
        )
    if isinstance(plan, Union):
        return Union(
            _transform_scans(plan.left, transform),
            _transform_scans(plan.right, transform),
        )
    if isinstance(plan, Difference):
        return Difference(
            _transform_scans(plan.left, transform),
            _transform_scans(plan.right, transform),
        )
    raise TypeError("unknown plan node %r" % (plan,))


def _rewrite_scans(plan: Plan, mapping: Dict[str, str]) -> Plan:
    """Rebuild a plan with Scan names substituted."""
    return _transform_scans(
        plan, lambda scan: Scan(mapping.get(scan.name, scan.name))
    )
