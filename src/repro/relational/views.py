"""Views: named queries, optionally materialized with digest tracking.

A view is a plan over base relations.  A *virtual* view re-executes on
every read; a *materialized* view caches its result together with the
content digests of the base relations it read, so staleness is a pure
set-level comparison -- no invalidation hooks, no dirty flags, just
"do the inputs still hash to what I saw?"  (Canonical serialization
makes the digest order-insensitive; see
:mod:`repro.xst.serialization`.)

:class:`ViewCatalog` extends a :class:`~repro.relational.query.
Database` with view definitions; views can reference earlier views,
and reads resolve through the chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SchemaError
from repro.relational.optimizer import optimize
from repro.relational.query import Database, Plan, Scan
from repro.relational.relation import Relation
from repro.xst.serialization import digest

__all__ = ["View", "ViewCatalog"]


def _base_relations(plan: Plan) -> List[str]:
    """The Scan names a plan reads, in discovery order, deduplicated."""
    names: List[str] = []

    def walk(node: Plan) -> None:
        if isinstance(node, Scan):
            if node.name not in names:
                names.append(node.name)
            return
        for child in node.children():
            walk(child)

    walk(plan)
    return names


class View:
    """A named plan with optional materialization state."""

    def __init__(self, name: str, plan: Plan, materialized: bool):
        self.name = name
        self.plan = plan
        self.materialized = materialized
        self._cache: Optional[Relation] = None
        self._input_digests: Optional[Dict[str, str]] = None

    def __repr__(self) -> str:
        kind = "materialized" if self.materialized else "virtual"
        return "View(%s, %s)" % (self.name, kind)


class ViewCatalog:
    """A database plus named views (virtual or materialized)."""

    def __init__(self, db: Database):
        self._db = db
        self._views: Dict[str, View] = {}

    @property
    def database(self) -> Database:
        return self._db

    # ------------------------------------------------------------------
    # Definition
    # ------------------------------------------------------------------

    def define(self, name: str, plan: Plan, materialized: bool = False) -> View:
        """Register a view; names may not shadow base relations."""
        if name in self._views:
            raise SchemaError("view %r already defined" % (name,))
        try:
            self._db.relation(name)
        except SchemaError:
            pass
        else:
            raise SchemaError(
                "view %r would shadow a base relation" % (name,)
            )
        for base in _base_relations(plan):
            if base not in self._views:
                self._db.relation(base)  # raises for unknown names
        view = View(name, plan, materialized)
        self._views[name] = view
        return view

    def names(self) -> List[str]:
        return sorted(self._views)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _resolve_plan(self, plan: Plan) -> Plan:
        """Inline view references by materializing them into the db.

        Views referencing views resolve recursively; each referenced
        view's current rows are installed as a shadow base relation
        for the duration of execution.
        """
        for base in _base_relations(plan):
            if base in self._views:
                self._db.add("__view__" + base, self.read(base))
        return _rewrite_scans(
            plan,
            {base: "__view__" + base for base in _base_relations(plan)
             if base in self._views},
        )

    def read(self, name: str) -> Relation:
        """The view's current contents (cached if materialized+fresh)."""
        view = self._views.get(name)
        if view is None:
            raise SchemaError("unknown view %r" % (name,))
        if view.materialized and view._cache is not None and not self.is_stale(
            name
        ):
            return view._cache
        plan = optimize(self._resolve_plan(view.plan), self._db)
        result = self._db.execute(plan)
        if view.materialized:
            view._cache = result
            view._input_digests = self._current_digests(view)
        return result

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------

    def _current_digests(self, view: View) -> Dict[str, str]:
        digests = {}
        for base in _base_relations(view.plan):
            if base in self._views:
                digests[base] = digest(self.read(base).rows)
            else:
                digests[base] = digest(self._db.relation(base).rows)
        return digests

    def is_stale(self, name: str) -> bool:
        """True when a materialized view's inputs have changed.

        Virtual views are never stale (they always recompute); an
        unmaterialized-yet materialized view is considered stale.
        """
        view = self._views.get(name)
        if view is None:
            raise SchemaError("unknown view %r" % (name,))
        if not view.materialized:
            return False
        if view._input_digests is None:
            return True
        return self._current_digests(view) != view._input_digests

    def refresh(self, name: str) -> Relation:
        """Force recomputation of a materialized view."""
        view = self._views.get(name)
        if view is None:
            raise SchemaError("unknown view %r" % (name,))
        view._cache = None
        view._input_digests = None
        return self.read(name)


def _rewrite_scans(plan: Plan, mapping: Dict[str, str]) -> Plan:
    """Rebuild a plan with Scan names substituted."""
    from repro.relational.query import (
        Difference,
        Join,
        Project,
        Rename,
        SelectEq,
        SelectPred,
        Union,
    )

    if isinstance(plan, Scan):
        return Scan(mapping.get(plan.name, plan.name))
    if isinstance(plan, SelectEq):
        return SelectEq(_rewrite_scans(plan.child, mapping), plan.conditions)
    if isinstance(plan, SelectPred):
        return SelectPred(
            _rewrite_scans(plan.child, mapping), plan.predicate, plan.label
        )
    if isinstance(plan, Project):
        return Project(_rewrite_scans(plan.child, mapping), plan.attrs)
    if isinstance(plan, Rename):
        return Rename(_rewrite_scans(plan.child, mapping), plan.mapping)
    if isinstance(plan, Join):
        return Join(
            _rewrite_scans(plan.left, mapping),
            _rewrite_scans(plan.right, mapping),
        )
    if isinstance(plan, Union):
        return Union(
            _rewrite_scans(plan.left, mapping),
            _rewrite_scans(plan.right, mapping),
        )
    if isinstance(plan, Difference):
        return Difference(
            _rewrite_scans(plan.left, mapping),
            _rewrite_scans(plan.right, mapping),
        )
    raise TypeError("unknown plan node %r" % (plan,))
