"""Sharded placement and online rebalancing for the distributed layer.

PR 1's cluster placed buckets *implicitly*: bucket ``b`` of every
table lived on node ``b`` and its ring successors, with
``_partition_index`` hard-wiring ``bucket_count == node_count``.  That
scheme cannot express a topology change -- there is no way to say "a
bucket moved" because nothing records where buckets are.

This module makes placement **explicit and versioned**:

* :func:`shard_index` -- the routing hash (byte-compatible with the
  old ``_partition_index``, so default placements and the seeded
  fault/chaos tick sequences stay identical);
* :class:`ShardMap` -- one table's placement: an epoch number, a
  bucket count (decoupled from the node count), and an explicit
  owner ring per bucket.  Epochs only move forward; any request
  stamped with a stale epoch is refused with
  :class:`~repro.errors.ShardMovedError` before a byte is read.
* :class:`ShardCatalog` -- every table's map, serializable to one
  canonical XSet so :class:`~repro.relational.disk.DiskRelationStore`
  persists it exactly like the statistics catalog (``shards.map``
  beside ``stats.cat``).
* :func:`bucket_digest` -- an order-independent canonical-hash digest
  of a bucket's rows, the anti-entropy currency: two replicas hold
  the same bucket iff their digests are equal.
* :class:`ShardMove` -- one bucket move as a **resumable state
  machine** (``copy -> catch_up -> swing -> verify -> gc``), each
  step one cluster tick so the deterministic fault harness can kill
  the donor or recipient mid-copy, mid-catch-up, or mid-swing and
  the move provably completes afterwards.  The machine's state
  serializes to an XSet journal (``shards.move``) that ``repro fsck``
  audits for torn swings and orphaned source data.

The legality argument is Childs': extended-set operations are defined
on *membership*, independent of physical placement -- a relation
hash-split across nodes is still one XSet, so moving a bucket can
never change an answer, only availability.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, ShardMovedError, ShardPlacementError
from repro.xst.builders import xtuple
from repro.xst.ordering import canonical_hash, canonical_key
from repro.xst.serialization import dumps
from repro.xst.xset import XSet

__all__ = [
    "shard_index",
    "ShardMap",
    "ShardCatalog",
    "bucket_digest",
    "ShardMove",
    "MOVE_STATES",
]


def shard_index(value: Any, bucket_count: int) -> int:
    """Deterministic routing: hash of the canonical serialization.

    Byte-compatible with the original ``_partition_index`` scheme
    (ints route by value, everything else by canonical bytes), so a
    default map with ``bucket_count == node_count`` reproduces PR 1's
    placement -- and the fault suites' pinned tick sequences -- bit
    for bit.
    """
    if isinstance(value, int) and not isinstance(value, bool):
        return value % bucket_count
    return sum(dumps(value)) % bucket_count


class ShardMap:
    """One table's versioned placement: epoch, buckets, owner rings.

    ``owners`` maps every bucket in ``0..bucket_count-1`` to its
    replica ring (primary first).  Unlike
    :class:`~repro.relational.replication.ReplicaPlacement` the rings
    are *data*, not a formula -- a move rewrites one ring and bumps
    the epoch, a split doubles the bucket count.  The class keeps the
    placement interface the cluster already speaks (``replicas``,
    ``primary``, ``ring``, ``buckets_on``, ``survives``), so it is a
    drop-in replacement wherever a ``ReplicaPlacement`` went.
    """

    __slots__ = ("attr", "epoch", "bucket_count", "node_count",
                 "replication_factor", "owners")

    def __init__(
        self,
        attr: str,
        node_count: int,
        replication_factor: int,
        owners: Dict[int, Tuple[int, ...]],
        epoch: int = 1,
    ):
        self.attr = attr
        self.epoch = epoch
        self.bucket_count = len(owners)
        self.node_count = node_count
        self.replication_factor = replication_factor
        self.owners: Dict[int, Tuple[int, ...]] = {
            bucket: tuple(ring) for bucket, ring in owners.items()
        }
        self.validate()

    # -- construction ---------------------------------------------------

    @classmethod
    def successor_rings(
        cls,
        attr: str,
        node_count: int,
        replication_factor: int,
        bucket_count: Optional[int] = None,
        epoch: int = 1,
    ) -> "ShardMap":
        """The classic scheme: bucket ``b`` on node ``b % n`` + successors.

        With the default ``bucket_count == node_count`` this is exactly
        PR 1's implicit placement, made explicit.
        """
        if node_count < 1:
            raise SchemaError("a shard map needs at least one node")
        if not 1 <= replication_factor <= node_count:
            raise SchemaError(
                "replication factor %d needs 1..%d nodes"
                % (replication_factor, node_count)
            )
        buckets = node_count if bucket_count is None else bucket_count
        if buckets < 1:
            raise SchemaError("a shard map needs at least one bucket")
        owners = {
            bucket: tuple(
                (bucket + offset) % node_count
                for offset in range(replication_factor)
            )
            for bucket in range(buckets)
        }
        return cls(attr, node_count, replication_factor, owners, epoch=epoch)

    def validate(self) -> None:
        """Check the exactly-one-owner-ring-per-bucket invariant."""
        if self.epoch < 1:
            raise ShardPlacementError(
                "shard map epoch %d is not positive" % self.epoch
            )
        if set(self.owners) != set(range(self.bucket_count)):
            raise ShardPlacementError(
                "shard map does not own exactly buckets 0..%d: has %s"
                % (self.bucket_count - 1, sorted(self.owners))
            )
        for bucket, ring in self.owners.items():
            if not ring:
                raise ShardPlacementError(
                    "bucket %d has an empty owner ring" % bucket
                )
            if len(set(ring)) != len(ring):
                raise ShardPlacementError(
                    "bucket %d ring %s repeats a node" % (bucket, ring)
                )
            for index in ring:
                if not 0 <= index < self.node_count:
                    raise ShardPlacementError(
                        "bucket %d ring %s names node %d outside 0..%d"
                        % (bucket, ring, index, self.node_count - 1)
                    )

    # -- routing and the placement interface ----------------------------

    def bucket_for(self, value: Any) -> int:
        return shard_index(value, self.bucket_count)

    def has_bucket(self, bucket: int) -> bool:
        return bucket in self.owners

    def __contains__(self, bucket: int) -> bool:
        return bucket in self.owners

    def replicas(self, bucket: int) -> Tuple[int, ...]:
        """Node indices holding ``bucket``, primary first."""
        try:
            return self.owners[bucket]
        except KeyError:
            raise ShardPlacementError(
                "no bucket %d in a %d-bucket shard map"
                % (bucket, self.bucket_count)
            ) from None

    def primary(self, bucket: int) -> int:
        return self.replicas(bucket)[0]

    def ring(self, bucket: int) -> str:
        """Primary-first failover chain as a span attribute (``"2>3>0"``)."""
        return ">".join(str(index) for index in self.replicas(bucket))

    def buckets_on(self, node_index: int) -> List[int]:
        return [
            bucket
            for bucket in range(self.bucket_count)
            if node_index in self.owners[bucket]
        ]

    def survives(self, dead: frozenset) -> bool:
        return all(
            any(index not in dead for index in ring)
            for ring in self.owners.values()
        )

    def check_epoch(self, table: str, requested: Optional[int],
                    bucket: Optional[int] = None) -> None:
        """Refuse a stale-epoch request before any bucket is touched."""
        if requested is not None and requested != self.epoch:
            raise ShardMovedError(table, requested, self.epoch, bucket=bucket)

    def same_placement(self, other: "ShardMap") -> bool:
        """True when every bucket of both maps shares one owner ring.

        The co-partitioned-join precondition: equal bucket counts and
        identical rings mean each bucket pair of the two tables can be
        joined on one shared node with zero row movement.
        """
        return (
            self.bucket_count == other.bucket_count
            and self.owners == other.owners
        )

    # -- topology changes (each returns a new map, epoch + 1) -----------

    def moved(self, bucket: int, donor: int, recipient: int) -> "ShardMap":
        """The map after ``bucket``'s copy moves donor -> recipient."""
        ring = self.replicas(bucket)
        if donor not in ring:
            raise ShardPlacementError(
                "cannot move bucket %d off node %d: ring is %s"
                % (bucket, donor, ring)
            )
        if recipient in ring:
            raise ShardPlacementError(
                "cannot move bucket %d onto node %d: already in ring %s"
                % (bucket, recipient, ring)
            )
        if not 0 <= recipient < self.node_count:
            raise ShardPlacementError(
                "recipient %d outside 0..%d" % (recipient, self.node_count - 1)
            )
        owners = dict(self.owners)
        owners[bucket] = tuple(
            recipient if index == donor else index for index in ring
        )
        return ShardMap(
            self.attr, self.node_count, self.replication_factor, owners,
            epoch=self.epoch + 1,
        )

    def split(self) -> "ShardMap":
        """Double the bucket count; bucket ``b+N`` inherits ``b``'s ring.

        Because :func:`shard_index` is modular, every row of old
        bucket ``b`` re-routes to exactly ``b`` or ``b + N`` -- the
        split is local to the owning nodes (no cross-node shipping).
        """
        owners = dict(self.owners)
        for bucket in range(self.bucket_count):
            owners[bucket + self.bucket_count] = self.owners[bucket]
        return ShardMap(
            self.attr, self.node_count, self.replication_factor, owners,
            epoch=self.epoch + 1,
        )

    def merged(self) -> "ShardMap":
        """Halve the bucket count; bucket ``b`` absorbs ``b + N/2``."""
        if self.bucket_count < 2 or self.bucket_count % 2:
            raise ShardPlacementError(
                "cannot merge a %d-bucket map (need an even count >= 2)"
                % self.bucket_count
            )
        half = self.bucket_count // 2
        owners = {
            bucket: self.owners[bucket] for bucket in range(half)
        }
        return ShardMap(
            self.attr, self.node_count, self.replication_factor, owners,
            epoch=self.epoch + 1,
        )

    # -- serialization --------------------------------------------------

    def to_xset(self) -> XSet:
        return xtuple([
            self.attr,
            self.epoch,
            self.node_count,
            self.replication_factor,
            xtuple([
                xtuple([bucket, xtuple(list(self.owners[bucket]))])
                for bucket in sorted(self.owners)
            ]),
        ])

    @classmethod
    def from_xset(cls, value: XSet) -> "ShardMap":
        attr, epoch, node_count, factor, entries = value.as_tuple()
        owners: Dict[int, Tuple[int, ...]] = {}
        for entry in entries.as_tuple():
            bucket, ring = entry.as_tuple()
            if bucket in owners:
                raise ShardPlacementError(
                    "serialized shard map owns bucket %d twice" % bucket
                )
            owners[bucket] = tuple(ring.as_tuple())
        return cls(attr, node_count, factor, owners, epoch=epoch)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.attr == other.attr
            and self.epoch == other.epoch
            and self.node_count == other.node_count
            and self.replication_factor == other.replication_factor
            and self.owners == other.owners
        )

    def __repr__(self) -> str:
        return "ShardMap(attr=%r, epoch=%d, buckets=%d, nodes=%d, rf=%d)" % (
            self.attr, self.epoch, self.bucket_count, self.node_count,
            self.replication_factor,
        )


class ShardCatalog:
    """Every table's shard map, serializable like the stats catalog."""

    __slots__ = ("_maps",)

    def __init__(self, maps: Optional[Dict[str, ShardMap]] = None):
        self._maps: Dict[str, ShardMap] = dict(maps or {})

    def get(self, name: str) -> Optional[ShardMap]:
        return self._maps.get(name)

    def set(self, name: str, shard_map: ShardMap) -> None:
        self._maps[name] = shard_map

    def names(self) -> List[str]:
        return sorted(self._maps)

    def __len__(self) -> int:
        return len(self._maps)

    def __contains__(self, name: str) -> bool:
        return name in self._maps

    def to_xset(self) -> XSet:
        return xtuple([
            xtuple([name, self._maps[name].to_xset()])
            for name in sorted(self._maps)
        ])

    @classmethod
    def from_xset(cls, value: XSet) -> "ShardCatalog":
        catalog = cls()
        for entry in value.as_tuple():
            name, shard_map = entry.as_tuple()
            if name in catalog._maps:
                raise ShardPlacementError(
                    "serialized shard catalog lists table %r twice" % name
                )
            catalog._maps[name] = ShardMap.from_xset(shard_map)
        return catalog

    def __repr__(self) -> str:
        return "ShardCatalog(%s)" % ", ".join(
            "%s@e%d" % (name, self._maps[name].epoch)
            for name in sorted(self._maps)
        ) if self._maps else "ShardCatalog(empty)"


def bucket_digest(relation: Optional[Any]) -> str:
    """Order-independent canonical-hash digest of a bucket's rows.

    Two copies of a bucket hold the same extended set iff their
    digests are equal: each row contributes its
    :func:`~repro.xst.ordering.canonical_hash`, the hashes are
    sorted (placement order is physical, not semantic), and the
    sequence is CRC-folded.  ``None`` (a bucket a node never stored)
    digests like an empty bucket.
    """
    if relation is None:
        hashes: List[int] = []
    else:
        hashes = sorted(
            canonical_hash(row) for row, _ in relation.rows.pairs()
        )
    packed = b"".join(
        struct.pack(">q", value) for value in hashes
    )
    return "%08x-%d" % (zlib.crc32(packed) & 0xFFFFFFFF, len(hashes))


#: The rebalance state machine's states, in lifecycle order.
MOVE_STATES = ("copy", "catch_up", "swing", "verify", "gc", "done")


class ShardMove:
    """One bucket move, resumable across crashes of either endpoint.

    The lifecycle (one cluster tick per :meth:`step`, so the fault
    injector's seeded kill/revive/delay events land *between* any two
    stages):

    1. ``copy`` -- chunked copy of the donor's live bucket into the
       recipient's staging area, re-read from the donor each step (a
       dead donor stalls the copy; the harness revives it later).
       The first successful chunk records ``replay_from`` -- the
       write log's LSN high-water mark at copy start.
    2. ``catch_up`` -- writes that landed during the copy are
       replayed from the cluster write log past ``replay_from`` into
       the staging area (idempotent: ``store`` overwrites, ``merge``
       unions).
    3. ``swing`` -- one atomic step: any final delta is applied, the
       staged rows are digested and promoted into the recipient's
       live storage, and the table's :class:`ShardMap` is replaced
       with ``moved(...)`` at ``epoch + 1``.  Requests carrying the
       old epoch fail typed from this tick on.
    4. ``verify`` -- the post-move anti-entropy pass: the donor's
       now-frozen copy must digest byte-equal to what the recipient
       took over.  A donor that legitimately missed writes while dead
       is first repaired from the write log (the same replay a revive
       runs); any remaining mismatch is placement corruption.
    5. ``gc`` -- the donor's source copy is dropped and the journal
       cleared.

    Every state transition is journaled through the cluster's
    attached store (``shards.move``), so ``repro fsck`` can detect a
    torn swing (journal epoch disagrees with the installed map) and
    orphaned source data (a move that swung but never collected).
    """

    __slots__ = ("table", "bucket", "donor", "recipient", "chunk_rows",
                 "state", "replay_from", "copied_rows", "target_epoch",
                 "swing_lsn", "swing_digest", "stalls", "repaired")

    #: Log entries replayed per catch-up step: small enough that a
    #: busy table needs several ticks (crash windows), large enough
    #: that catch-up converges while writes keep arriving.
    CATCH_UP_BATCH = 4

    def __init__(self, table: str, bucket: int, donor: int, recipient: int,
                 chunk_rows: int = 64):
        if chunk_rows < 1:
            raise SchemaError("chunk_rows must be at least 1")
        self.table = table
        self.bucket = bucket
        self.donor = donor
        self.recipient = recipient
        self.chunk_rows = chunk_rows
        self.state = "copy"
        #: LSN high-water mark at copy start; catch-up replays past it.
        self.replay_from: Optional[int] = None
        self.copied_rows = 0
        #: The epoch the swing installed (0 until the swing happens).
        self.target_epoch = 0
        self.swing_lsn = 0
        self.swing_digest = ""
        #: Steps that made no progress (an endpoint was dead).
        self.stalls = 0
        #: True when verify had to repair the donor from the log.
        self.repaired = False

    @property
    def done(self) -> bool:
        return self.state == "done"

    # -- the state machine ---------------------------------------------

    def step(self, cluster: Any) -> bool:
        """Run one tick of the move; returns True when it progressed.

        A step that cannot progress (the endpoint it needs is dead)
        still ticks the cluster -- stalled rebalances burn fault-plan
        time exactly like stalled queries, which is how seeded revive
        events eventually un-stall them.
        """
        if self.state == "done":
            return False
        cluster._tick()
        handler = {
            "copy": self._step_copy,
            "catch_up": self._step_catch_up,
            "swing": self._step_swing,
            "verify": self._step_verify,
            "gc": self._step_gc,
        }[self.state]
        before = self.state
        progressed = handler(cluster)
        if not progressed:
            self.stalls += 1
        if progressed or self.state != before:
            cluster._journal_move(self)
        return progressed

    def _donor_node(self, cluster: Any) -> Any:
        return cluster.nodes[self.donor]

    def _recipient_node(self, cluster: Any) -> Any:
        return cluster.nodes[self.recipient]

    def _pending(self, cluster: Any, limit: Optional[int] = None) -> List:
        """Write-log entries for this bucket past the replay mark."""
        assert self.replay_from is not None
        entries = [
            entry
            for entry in cluster._write_log
            if entry[0] > self.replay_from
            and entry[1] == self.table
            and entry[2] == self.bucket
        ]
        return entries if limit is None else entries[:limit]

    def _step_copy(self, cluster: Any) -> bool:
        donor = self._donor_node(cluster)
        recipient = self._recipient_node(cluster)
        if not donor.alive or not recipient.alive:
            return False  # stalled; a seeded revive un-stalls us
        if self.replay_from is None:
            # Copy starts now: everything logged after this mark is
            # the catch-up's responsibility.
            self.replay_from = cluster._log_lsn
        source = donor.bucket(self.table, self.bucket)
        rows = sorted(
            (row for row, _ in source.rows.pairs()), key=canonical_key
        )
        chunk = rows[self.copied_rows:self.copied_rows + self.chunk_rows]
        if chunk:
            shipment = cluster._relation(self.table, chunk)
            cluster.network.ship(shipment.rows, replica=True)
            recipient.stage_merge(self.table, self.bucket, shipment)
            self.copied_rows += len(chunk)
        if self.copied_rows >= len(rows):
            self.state = "catch_up"
        return True

    def _step_catch_up(self, cluster: Any) -> bool:
        recipient = self._recipient_node(cluster)
        if not recipient.alive:
            return False
        pending = self._pending(cluster, self.CATCH_UP_BATCH)
        if not pending:
            self.state = "swing"  # the swing itself is the next tick
            return True
        self._apply_entries(cluster, recipient, pending)
        return True

    def _step_swing(self, cluster: Any) -> bool:
        recipient = self._recipient_node(cluster)
        if not recipient.alive:
            return False
        # Atomic from the cluster's point of view: final delta, digest,
        # promote, and map install all happen inside this one tick.
        pending = self._pending(cluster)
        if pending:
            self._apply_entries(cluster, recipient, pending)
        staged = recipient.staged(self.table, self.bucket)
        self.swing_digest = bucket_digest(staged)
        self.swing_lsn = cluster._log_lsn
        recipient.promote_stage(self.table, self.bucket)
        # The recipient is live and, by the revive-before-serve
        # invariant, current on every bucket it already owned; it is
        # now also current on the moved bucket through swing_lsn.
        recipient.applied_lsn = max(recipient.applied_lsn, cluster._log_lsn)
        new_map = cluster.shard_map(self.table).moved(
            self.bucket, self.donor, self.recipient
        )
        self.target_epoch = new_map.epoch
        cluster._install_map(self.table, new_map, cause="move")
        self.state = "verify"
        return True

    def _step_verify(self, cluster: Any) -> bool:
        """Post-move anti-entropy: donor's frozen copy == handoff.

        Runs against durable storage, so a dead donor verifies too.
        The donor's copy is frozen from the swing on (the new map
        routes every write to the recipient), but it may *lag* the
        handoff if the donor was dead for part of the move -- the
        same condition a revive repairs, so the pass runs the same
        log replay before concluding corruption.
        """
        donor = self._donor_node(cluster)
        copy = donor.stored(self.table, self.bucket)
        if bucket_digest(copy) != self.swing_digest:
            truth = cluster._replay_bucket(
                self.table, self.bucket, self.swing_lsn
            )
            self.repaired = True
            if bucket_digest(truth) != self.swing_digest:
                raise ShardPlacementError(
                    "anti-entropy failed for bucket %d of %r: donor %s "
                    "digest %s != handoff digest %s even after log repair"
                    % (self.bucket, self.table, donor.name,
                       bucket_digest(truth), self.swing_digest)
                )
        self.state = "gc"
        return True

    def _step_gc(self, cluster: Any) -> bool:
        donor = self._donor_node(cluster)
        donor.drop_bucket(self.table, self.bucket)
        donor.drop_stage(self.table, self.bucket)
        self.state = "done"
        return True

    def _apply_entries(self, cluster: Any, recipient: Any,
                       entries: Sequence) -> None:
        for lsn, _table, _bucket, kind, rows in entries:
            cluster.network.ship(rows.rows, replica=True)
            if kind == "store":
                recipient.stage_store(self.table, self.bucket, rows)
            else:
                recipient.stage_merge(self.table, self.bucket, rows)
            self.replay_from = lsn

    # -- the journal ----------------------------------------------------

    def to_xset(self) -> XSet:
        return xtuple([
            self.table,
            self.bucket,
            self.donor,
            self.recipient,
            self.chunk_rows,
            self.state,
            -1 if self.replay_from is None else self.replay_from,
            self.copied_rows,
            self.target_epoch,
            self.swing_lsn,
            self.swing_digest,
        ])

    @classmethod
    def from_xset(cls, value: XSet) -> "ShardMove":
        (table, bucket, donor, recipient, chunk_rows, state, replay_from,
         copied_rows, target_epoch, swing_lsn, swing_digest) = value.as_tuple()
        if state not in MOVE_STATES:
            raise ShardPlacementError(
                "shard-move journal names unknown state %r" % (state,)
            )
        move = cls(table, bucket, donor, recipient, chunk_rows=chunk_rows)
        move.state = state
        move.replay_from = None if replay_from < 0 else replay_from
        move.copied_rows = copied_rows
        move.target_epoch = target_epoch
        move.swing_lsn = swing_lsn
        move.swing_digest = swing_digest
        return move

    def __repr__(self) -> str:
        return (
            "ShardMove(%s[%d] %d->%d, %s, copied=%d, epoch=%d)"
            % (self.table, self.bucket, self.donor, self.recipient,
               self.state, self.copied_rows, self.target_epoch)
        )
