"""Query plans with set-at-a-time and record-at-a-time executors.

A plan is a small algebraic AST over named base relations.  One plan,
two execution disciplines:

* **set mode** (:meth:`Database.execute`) -- each node is one XST
  kernel call over whole relations, via
  :mod:`repro.relational.algebra`.  This is Extended Set Processing.
* **record mode** (:meth:`Database.execute_records`) -- the classical
  record-processing discipline the paper's reference [4] compares
  against: Python iterators pull one row dict at a time through the
  plan, selections test rows individually, and joins run as nested
  loops over the probe side.

Both executors produce the same :class:`~repro.relational.relation.
Relation` for every plan (asserted property-style in the tests), so
benchmark differences between them are purely the processing
discipline -- which is exactly the experiment ref [4] describes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union as TypingUnion

from repro.errors import SchemaError, XSTError
from repro.gov.governor import active as _gov_active
from repro.obs.instrument import enabled as _obs_enabled
from repro.relational import algebra
from repro.relational.columnar import (
    ColumnarRelation,
    materialize as _materialize,
    _record_backend,
)
from repro.relational.relation import Relation
from repro.relational.schema import Heading

#: What flows between plan nodes in set mode: either the canonical row
#: model or its sorted-run encoding.  Both expose ``heading`` and
#: ``cardinality()``, which is all the executor shell needs.
Operand = TypingUnion[Relation, ColumnarRelation]

__all__ = [
    "Plan",
    "Scan",
    "SelectEq",
    "SelectPred",
    "Project",
    "Rename",
    "Join",
    "Union",
    "Difference",
    "Database",
]


class Plan:
    """Base class for plan nodes; subclasses are immutable records."""

    __slots__ = ()

    def children(self) -> Tuple["Plan", ...]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line operator description (used by explain output)."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Indented operator-tree rendering."""
        lines = ["%s%s" % ("  " * indent, self.describe())]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.describe()


class Scan(Plan):
    """Read a named base relation."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[Plan, ...]:
        return ()

    def describe(self) -> str:
        return "Scan(%s)" % self.name


class _Unary(Plan):
    __slots__ = ("child",)

    def __init__(self, child: Plan):
        object.__setattr__(self, "child", child)

    def __setattr__(self, key, value):
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)


class SelectEq(_Unary):
    """Equality selection; eligible for restriction-based execution."""

    __slots__ = ("conditions",)

    def __init__(self, child: Plan, conditions: Mapping[str, Any]):
        super().__init__(child)
        object.__setattr__(self, "conditions", dict(conditions))

    def describe(self) -> str:
        conditions = ", ".join(
            "%s=%r" % item for item in sorted(self.conditions.items())
        )
        return "SelectEq(%s)" % conditions


class SelectPred(_Unary):
    """General predicate selection (record-level in both modes).

    ``cache_key`` is an optional canonical string naming the
    predicate's *semantics* (the XQL compiler sets it to the condition
    text).  Only predicates with a cache key participate in result
    caching -- labels are display strings, not identities, and two
    different callables may share one.
    """

    __slots__ = ("predicate", "label", "cache_key")

    def __init__(
        self,
        child: Plan,
        predicate: Callable[[Dict[str, Any]], bool],
        label: str = "<predicate>",
        cache_key: Optional[str] = None,
    ):
        super().__init__(child)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "cache_key", cache_key)

    def describe(self) -> str:
        return "SelectPred(%s)" % self.label


class Project(_Unary):
    __slots__ = ("attrs",)

    def __init__(self, child: Plan, attrs: Sequence[str]):
        super().__init__(child)
        object.__setattr__(self, "attrs", tuple(attrs))

    def describe(self) -> str:
        return "Project(%s)" % ", ".join(self.attrs)


class Rename(_Unary):
    __slots__ = ("mapping",)

    def __init__(self, child: Plan, mapping: Mapping[str, str]):
        super().__init__(child)
        object.__setattr__(self, "mapping", dict(mapping))

    def describe(self) -> str:
        renames = ", ".join(
            "%s->%s" % item for item in sorted(self.mapping.items())
        )
        return "Rename(%s)" % renames


class _Binary(Plan):
    __slots__ = ("left", "right")

    def __init__(self, left: Plan, right: Plan):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, key, value):
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)


class Join(_Binary):
    """Natural join on shared attributes."""

    def describe(self) -> str:
        return "Join"


class Union(_Binary):
    def describe(self) -> str:
        return "Union"


class Difference(_Binary):
    def describe(self) -> str:
        return "Difference"


#: Plan-node -> kernel-op label for the ``repro_kernel_backend_total``
#: metric (the columnar kernels record their own executions).
_OP_NAMES = {
    SelectEq: "restrict",
    SelectPred: "select_pred",
    Project: "project",
    Rename: "rename",
    Join: "join",
    Union: "union",
    Difference: "difference",
}


def _gov_summary(root_span) -> Dict[str, Any]:
    """Governance events for a digest: span annotations + live ledgers.

    ``gov_died_at``/``gov_checkpoints`` come off the span tree (stamped
    by the governor's cancellation path); checkpoint and budget totals
    come from the ambient governor when one is installed.
    """
    gov: Dict[str, Any] = {}
    for span in root_span.tree():
        for key in ("gov_died_at", "gov_checkpoints"):
            value = span.attrs.get(key)
            if value is not None:
                gov[key] = value
    governor = _gov_active()
    if governor is not None:
        gov["checkpoints"] = governor.checkpoints
        if governor.budget is not None:
            gov["budget_rows"] = governor.budget.rows
            gov["budget_cells"] = governor.budget.cells
    return gov


class Database:
    """A catalog of named relations plus the two executors."""

    def __init__(self, relations: Optional[Mapping[str, Relation]] = None):
        self._relations: Dict[str, Relation] = dict(relations or {})
        self._columnar: Dict[str, ColumnarRelation] = {}
        self._stats = None
        self._feedback = None
        # Per-relation change counters: bumped on every add(), so an
        # embedded database can fingerprint result-cache entries even
        # without a TransactionManager's MVCC versions.
        self._versions: Dict[str, int] = {}
        self._result_cache = None
        self._version_of: Optional[Callable[[str], int]] = None

    def add(self, name: str, relation: Relation) -> None:
        self._relations[name] = relation
        self._versions[name] = self._versions.get(name, 0) + 1
        # A replaced relation invalidates its run encoding: stale runs
        # would silently answer queries about data that is gone.
        self._columnar.pop(name, None)

    def remove(self, name: str) -> bool:
        """Forget a relation (and its encoding); False if unknown.

        The version counter still bumps, so cached results keyed at
        the old version cannot alias a later reincarnation.
        """
        existed = self._relations.pop(name, None) is not None
        self._columnar.pop(name, None)
        if existed:
            self._versions[name] = self._versions.get(name, 0) + 1
        return existed

    def table_version(self, name: str) -> int:
        """How many times ``name`` has been (re)installed (0: never)."""
        return self._versions.get(name, 0)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError("unknown relation %r" % (name,)) from None

    def names(self) -> List[str]:
        return sorted(self._relations)

    # ------------------------------------------------------------------
    # Columnar run encodings
    # ------------------------------------------------------------------

    def encode_columnar(self, names: Optional[Sequence[str]] = None) -> List[str]:
        """Encode ``names`` (default: every relation) into sorted runs.

        Scans of an encoded relation return its
        :class:`~repro.relational.columnar.ColumnarRelation` and the
        whole plan above them runs on the columnar batch kernels; the
        final answer is canonically identical to the row path (the
        differential oracle's contract), just faster.  Re-encoding is
        idempotent; :meth:`add` drops a stale encoding automatically.
        """
        targets = list(names) if names is not None else self.names()
        for name in targets:
            self._columnar[name] = ColumnarRelation.from_relation(
                self.relation(name)
            )
        return targets

    def drop_columnar(self, names: Optional[Sequence[str]] = None) -> None:
        """Forget run encodings (all of them by default)."""
        if names is None:
            self._columnar.clear()
        else:
            for name in names:
                self._columnar.pop(name, None)

    def has_columnar(self, name: str) -> bool:
        return name in self._columnar

    def columnar(self, name: str) -> ColumnarRelation:
        try:
            return self._columnar[name]
        except KeyError:
            raise SchemaError(
                "relation %r has no columnar encoding" % (name,)
            ) from None

    # ------------------------------------------------------------------
    # Statistics catalog
    # ------------------------------------------------------------------

    @property
    def stats(self):
        """The attached :class:`~repro.relational.stats.StatsCatalog`.

        Created lazily on first access so plain databases pay nothing;
        an empty catalog leaves the optimizer on its heuristic path.
        """
        if self._stats is None:
            from repro.relational.stats import StatsCatalog

            self._stats = StatsCatalog()
        return self._stats

    def analyze(
        self,
        names: Optional[Sequence[str]] = None,
        sample_rows: Optional[int] = None,
        seed: int = 0,
    ):
        """Collect statistics for ``names`` (default: every relation).

        Returns the list of relation names analyzed, in catalog order.
        Deterministic for a fixed ``seed``: no wall clock is read and
        sampling (when ``sample_rows`` bounds the scan) uses a seeded
        generator per the workload-seed convention.
        """
        targets = list(names) if names is not None else self.names()
        for name in targets:
            self.stats.analyze(
                name, self.relation(name), sample_rows=sample_rows, seed=seed
            )
        return targets

    # ------------------------------------------------------------------
    # Set-at-a-time execution (Extended Set Processing)
    # ------------------------------------------------------------------

    def execute(self, plan: Plan) -> Relation:
        """Evaluate bottom-up with one kernel call per node.

        With observability enabled (``REPRO_OBS=1``) every plan node
        additionally records a span on the global tracer -- the same
        span tree :func:`repro.relational.profile.execute_profiled`
        measures explicitly.

        With a result cache enabled (:meth:`enable_result_cache`),
        cacheable plans are answered from the cache when the
        per-table version fingerprint matches; misses execute normally
        and populate it.
        """
        if self._result_cache is not None:
            return self._execute_cached(plan)
        return self._execute_uncached(plan)

    def _execute_uncached(self, plan: Plan) -> Relation:
        if _obs_enabled():
            return self._execute_observed(plan)
        return _materialize(self._execute_raw(plan))

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------

    def enable_result_cache(
        self,
        cache=None,
        version_of: Optional[Callable[[str], int]] = None,
        capacity: int = 256,
    ):
        """Attach (and return) a bounded query-result cache.

        ``cache`` may be a shared
        :class:`~repro.relational.ivm.cache.QueryResultCache` (server
        sessions pass one instance across sessions); by default a
        private one is created.  ``version_of`` maps a relation name
        to its current version for fingerprinting -- defaults to this
        database's own :meth:`table_version` counters; sessions pass
        their snapshot's MVCC ``table_version`` so entries are shared
        exactly between readers pinned at the same versions.
        """
        if cache is None:
            from repro.relational.ivm.cache import QueryResultCache

            cache = QueryResultCache(capacity=capacity)
        self._result_cache = cache
        self._version_of = version_of
        return cache

    def disable_result_cache(self) -> None:
        """Detach the result cache (entries survive in the instance)."""
        self._result_cache = None
        self._version_of = None

    @property
    def result_cache(self):
        return self._result_cache

    def _execute_cached(self, plan: Plan) -> Relation:
        from repro.relational.ivm.cache import plan_cache_key, scan_tables

        plan_key = plan_cache_key(plan)
        if plan_key is None:
            return self._execute_uncached(plan)
        version_of = self._version_of or self.table_version
        # Fingerprint before executing: single-threaded execution
        # cannot race a version bump, so the fingerprint names exactly
        # the data the execution reads.
        try:
            fingerprint = tuple(
                (name, version_of(name)) for name in scan_tables(plan)
            )
        except SchemaError:
            # Unknown relation: let the normal path raise its
            # canonical error.
            return self._execute_uncached(plan)
        hit = self._result_cache.lookup(plan_key, fingerprint)
        if hit is not None:
            return hit
        result = self._execute_uncached(plan)
        self._result_cache.store(
            plan_key, fingerprint, (name for name, _ in fingerprint), result
        )
        return result

    def _execute_observed(self, plan: Plan) -> Relation:
        """The ``REPRO_OBS=1`` path: spans, then a digest per query.

        Every execution -- successful or dying on a typed error --
        produces one :class:`~repro.obs.digest.QueryDigest` built from
        the recorded span tree and fanned out to the digest sinks
        (slow-query log, flight recorder).  When a
        :class:`~repro.obs.feedback.FeedbackLoop` is enabled, its
        corrections are applied before returning, so the *next* query
        over the same shapes plans from observed cardinalities.
        """
        if not isinstance(plan, Plan):
            raise TypeError("unknown plan node %r" % (plan,))
        from repro.obs.digest import build_digest, plan_hash, record_digest
        from repro.obs.trace import tracer as _tracer
        from repro.relational.profile import execute_spanned

        hash_value = plan_hash(plan.explain())
        try:
            result, root = execute_spanned(self, plan)
        except XSTError as error:
            root = _tracer().last_root()
            if root is not None:
                digest = build_digest(
                    root,
                    hash_value,
                    describe=plan.describe(),
                    status=getattr(error, "code", type(error).__name__),
                    gov=_gov_summary(root),
                    trace_id=root.attrs.get("trace_id"),
                )
                record_digest(digest)
                if self._feedback is not None:
                    self._feedback.consume(digest)
            raise
        digest = build_digest(
            root,
            hash_value,
            describe=plan.describe(),
            gov=_gov_summary(root),
            trace_id=root.attrs.get("trace_id"),
        )
        record_digest(digest)
        if self._feedback is not None:
            self._feedback.consume(digest)
        return _materialize(result)

    def enable_feedback(self, **kwargs):
        """Attach (and return) a planner feedback loop to this database.

        Every observed execution's digest is then fed back into
        :attr:`stats` as overlay corrections (see
        :mod:`repro.obs.feedback`).  Idempotent: an existing loop is
        returned unchanged unless keyword overrides are given.
        """
        if self._feedback is None or kwargs:
            from repro.obs.feedback import FeedbackLoop

            self._feedback = FeedbackLoop(self, **kwargs)
        return self._feedback

    def disable_feedback(self) -> None:
        """Detach the feedback loop (overlay corrections remain)."""
        self._feedback = None

    def _execute_raw(self, plan: Plan) -> Operand:
        """Bottom-up evaluation *without* canonicalizing intermediates.

        Results stay in whatever backend produced them; a columnar
        pipeline only pays XSet construction once, at the boundary in
        :meth:`execute`.
        """
        if not isinstance(plan, Plan):
            raise TypeError("unknown plan node %r" % (plan,))
        return self.execute_node(
            plan, [self._execute_raw(child) for child in plan.children()]
        )

    def execute_node(
        self, plan: Plan, inputs: Sequence[Operand]
    ) -> Operand:
        """Evaluate ONE node over already-computed child results.

        This is the single evaluation table both executors share:
        :meth:`execute` recurses over it directly, and the profiler
        walks the same table with a span around each call -- so the
        measured execution *is* the production execution.  It is also
        the per-node cancellation checkpoint of set mode: an ambient
        :class:`repro.gov.Governor` is charged each node's output
        cardinality, so a governed query dies between operators (and
        *inside* the big ones, which checkpoint in their kernel loops).
        """
        result = self._evaluate_node(plan, inputs)
        gov = _gov_active()
        if gov is not None:
            gov.checkpoint(
                "plan.%s" % type(plan).__name__.lower(),
                result.cardinality(),
                len(result.heading.names),
            )
        return result

    def _evaluate_node(
        self, plan: Plan, inputs: Sequence[Operand]
    ) -> Operand:
        if isinstance(plan, Scan):
            encoded = self._columnar.get(plan.name)
            if encoded is not None:
                _record_backend("scan", "columnar")
                return encoded
            _record_backend("scan", "row")
            return self.relation(plan.name)
        if any(isinstance(operand, ColumnarRelation) for operand in inputs):
            # The fast path is sticky: once any child produced a run
            # encoding, siblings are promoted (an O(n log n) encode,
            # no worse than the hash-join build it replaces) and the
            # node runs on the columnar batch kernels.
            return self._evaluate_columnar(
                plan,
                [
                    operand
                    if isinstance(operand, ColumnarRelation)
                    else ColumnarRelation.from_relation(operand)
                    for operand in inputs
                ],
            )
        _record_backend(_OP_NAMES.get(type(plan), "unknown"), "row")
        if isinstance(plan, SelectEq):
            return algebra.select_eq(inputs[0], plan.conditions)
        if isinstance(plan, SelectPred):
            return algebra.select(inputs[0], plan.predicate)
        if isinstance(plan, Project):
            return algebra.project(inputs[0], plan.attrs)
        if isinstance(plan, Rename):
            return algebra.rename(inputs[0], plan.mapping)
        if isinstance(plan, Join):
            return algebra.join(inputs[0], inputs[1])
        if isinstance(plan, Union):
            return algebra.union(inputs[0], inputs[1])
        if isinstance(plan, Difference):
            return algebra.difference(inputs[0], inputs[1])
        raise TypeError("unknown plan node %r" % (plan,))

    def _evaluate_columnar(
        self, plan: Plan, inputs: Sequence[ColumnarRelation]
    ) -> ColumnarRelation:
        """One node on the sorted-run backend (same answers, by oracle)."""
        if isinstance(plan, SelectEq):
            return inputs[0].select_eq(plan.conditions)
        if isinstance(plan, SelectPred):
            return inputs[0].select_pred(plan.predicate, plan.label)
        if isinstance(plan, Project):
            return inputs[0].project(plan.attrs)
        if isinstance(plan, Rename):
            return inputs[0].rename(plan.mapping)
        if isinstance(plan, Join):
            return inputs[0].join(inputs[1])
        if isinstance(plan, Union):
            return inputs[0].union(inputs[1])
        if isinstance(plan, Difference):
            return inputs[0].difference(inputs[1])
        raise TypeError("unknown plan node %r" % (plan,))

    # ------------------------------------------------------------------
    # Record-at-a-time execution (the ref [4] baseline)
    # ------------------------------------------------------------------

    def execute_records(self, plan: Plan) -> Relation:
        """Pull rows one dict at a time through the plan, then re-relate.

        Record mode checkpoints an ambient governor every ``_RECORD_
        CHECK_EVERY`` rows pulled from the plan root -- the per-row
        discipline gets per-row cancellation.
        """
        heading = self._heading_of(plan)
        gov = _gov_active()
        if gov is None:
            rows = list(self._iterate(plan))
        else:
            rows = []
            width = len(heading.names)
            for row in self._iterate(plan):
                rows.append(row)
                if not (len(rows) & (_RECORD_CHECK_EVERY - 1)):
                    gov.checkpoint(
                        "records.pull", _RECORD_CHECK_EVERY, width
                    )
            gov.checkpoint(
                "records.pull",
                len(rows) & (_RECORD_CHECK_EVERY - 1),
                width,
            )
        return Relation.from_dicts(heading, _dedup(rows))

    def _heading_of(self, plan: Plan) -> Heading:
        if isinstance(plan, Scan):
            return self.relation(plan.name).heading
        if isinstance(plan, (SelectEq, SelectPred)):
            return self._heading_of(plan.child)
        if isinstance(plan, Project):
            return self._heading_of(plan.child).project(plan.attrs)
        if isinstance(plan, Rename):
            return self._heading_of(plan.child).rename(plan.mapping)
        if isinstance(plan, Join):
            return self._heading_of(plan.left).union(self._heading_of(plan.right))
        if isinstance(plan, (Union, Difference)):
            return self._heading_of(plan.left)
        raise TypeError("unknown plan node %r" % (plan,))

    def _iterate(self, plan: Plan) -> Iterator[Dict[str, Any]]:
        if isinstance(plan, Scan):
            yield from self.relation(plan.name).iter_dicts()
        elif isinstance(plan, SelectEq):
            conditions = plan.conditions
            for row in self._iterate(plan.child):
                if all(row[attr] == value for attr, value in conditions.items()):
                    yield row
        elif isinstance(plan, SelectPred):
            for row in self._iterate(plan.child):
                if plan.predicate(row):
                    yield row
        elif isinstance(plan, Project):
            for row in self._iterate(plan.child):
                yield {attr: row[attr] for attr in plan.attrs}
        elif isinstance(plan, Rename):
            mapping = plan.mapping
            for row in self._iterate(plan.child):
                yield {mapping.get(attr, attr): value for attr, value in row.items()}
        elif isinstance(plan, Join):
            # Classical record processing: materialize the left side,
            # then nested-loop probe with each right row.
            left_rows = list(self._iterate(plan.left))
            left_heading = self._heading_of(plan.left)
            right_heading = self._heading_of(plan.right)
            shared = left_heading.common(right_heading)
            for right_row in self._iterate(plan.right):
                for left_row in left_rows:
                    if all(left_row[attr] == right_row[attr] for attr in shared):
                        merged = dict(left_row)
                        merged.update(right_row)
                        yield merged
        elif isinstance(plan, Union):
            yield from self._iterate(plan.left)
            yield from self._iterate(plan.right)
        elif isinstance(plan, Difference):
            right_rows = [
                tuple(sorted(row.items(), key=lambda item: item[0]))
                for row in self._iterate(plan.right)
            ]
            right_set = set(right_rows)
            for row in self._iterate(plan.left):
                key = tuple(sorted(row.items(), key=lambda item: item[0]))
                if key not in right_set:
                    yield row
        else:
            raise TypeError("unknown plan node %r" % (plan,))


#: Row stride between record-mode cancellation checkpoints (power of
#: two, so the in-loop test is a mask).
_RECORD_CHECK_EVERY = 128


def _dedup(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    seen = set()
    unique = []
    for row in rows:
        key = tuple(sorted(row.items(), key=lambda item: item[0]))
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique
