"""Relation headings: named, ordered attribute sets.

The 1977 programme reads a database relation as an extended set of
rows, each row an extended set whose *scopes are the attribute names*
(``{v1^'emp', v2^'dept', ...}``).  A :class:`Heading` declares and
validates that scope alphabet: which attribute names a relation's rows
must carry, exactly once each.

Headings keep a declaration order for presentation (column order in
``to_rows`` output and examples) while comparing as sets -- two
headings with the same names are the same heading, matching the
set-theoretic reading.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import SchemaError

__all__ = ["Heading"]


class Heading:
    """An immutable collection of distinct attribute names."""

    __slots__ = ("_names", "_name_set")

    def __init__(self, names: Iterable[str]):
        ordered = tuple(names)
        for name in ordered:
            if not isinstance(name, str) or not name:
                raise SchemaError("attribute names must be non-empty strings")
        name_set = frozenset(ordered)
        if len(name_set) != len(ordered):
            raise SchemaError("duplicate attribute names in %r" % (ordered,))
        object.__setattr__(self, "_names", ordered)
        object.__setattr__(self, "_name_set", name_set)

    def __setattr__(self, name, value):
        raise AttributeError("Heading instances are immutable")

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._name_set

    def __eq__(self, other) -> bool:
        if not isinstance(other, Heading):
            return NotImplemented
        return self._name_set == other._name_set

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(("repro.Heading", self._name_set))

    def __repr__(self) -> str:
        return "Heading(%s)" % ", ".join(self._names)

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------

    def require(self, names: Iterable[str]) -> Tuple[str, ...]:
        """Validate that every name exists; return them in given order."""
        wanted = tuple(names)
        missing = [name for name in wanted if name not in self._name_set]
        if missing:
            raise SchemaError(
                "unknown attributes %s; heading has %s"
                % (missing, list(self._names))
            )
        return wanted

    def project(self, names: Iterable[str]) -> "Heading":
        """The sub-heading of the given attributes (order as given)."""
        return Heading(self.require(names))

    def remove(self, names: Iterable[str]) -> "Heading":
        """The heading without the given attributes."""
        dropped = frozenset(self.require(names))
        return Heading(name for name in self._names if name not in dropped)

    def rename(self, mapping: Dict[str, str]) -> "Heading":
        """Apply an old-name -> new-name mapping (others unchanged)."""
        self.require(mapping)
        return Heading(mapping.get(name, name) for name in self._names)

    def union(self, other: "Heading") -> "Heading":
        """Joint heading; shared names appear once, self's order first."""
        extra = [name for name in other._names if name not in self._name_set]
        return Heading(self._names + tuple(extra))

    def common(self, other: "Heading") -> Tuple[str, ...]:
        """Shared attribute names, in self's declaration order."""
        return tuple(name for name in self._names if name in other._name_set)

    def disjoint_from(self, other: "Heading") -> bool:
        return not self._name_set & other._name_set
