"""Sorted-run columnar execution: the vectorized kernel fast path.

The row-at-a-time kernel pays Python interpreter cost per element:
``sigma_restrict`` walks every member of ``R``, ``relative_product``
rebuilds hash buckets per call, and every intermediate result is a
fully materialized :class:`~repro.xst.xset.XSet`.  Childs' programme
says any physical layout that preserves canonical membership is
admissible (paper section 12: "all data representations have a
mathematical identity"), so this module trades layouts: a relation is
*encoded once* into per-attribute value arrays plus **sorted runs** of
:func:`~repro.xst.ordering.canonical_hash` keys, after which

* equality selection is a binary search over a run (O(log n + k)
  instead of O(n) subset tests),
* natural join is a **merge-intersection** of two sorted key ranges
  (no per-call hash-bucket build),
* projection, rename, union and difference touch arrays, not XSets.

The :class:`~repro.xst.xset.XSet` stays the semantic model.  Every
columnar result canonicalizes (:meth:`ColumnarRelation.to_relation`)
to exactly the relation the row-at-a-time kernel produces -- a claim
enforced mechanically by the Hypothesis differential oracle in
``tests/relational/test_columnar_differential.py``, which is the
contract that makes the backend swap invisible except for speed.

Hash keys are *search accelerators*, never truth: a 32-bit
``canonical_hash`` can collide, so every hash hit is verified against
the actual values before a row survives.  Equality on values is
Python ``==``, which coincides with XST member equality for every
admissible value (``XSet.__eq__`` is a frozenset comparison over the
same values), so deduplication by raw value tuples is *exactly* the
kernel's set semantics -- including the ``1 == 1.0 == True`` twins.

Runs are ``array('Q')`` pairs (sorted hashes + row permutation) read
through zero-copy ``memoryview`` slices in the merge loops; set
``REPRO_NUMPY=1`` to build and search runs with numpy (``argsort`` /
``searchsorted``) when it is installed -- results are identical by
construction, which the CI columnar job checks in both modes.

Cooperative cancellation: every batch loop passes a
:class:`repro.gov.Governor` checkpoint (sites ``columnar.*``) charging
the same row ledgers as the row-at-a-time kernel sites, so deadlines
and budgets behave identically across backends (pinned by
``tests/gov/test_columnar_gov.py``).
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.gov.governor import active as _gov_active
from repro.obs import metrics as _metrics
from repro.obs.instrument import enabled as _obs_enabled
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.builders import xrecord, xset
from repro.xst.ordering import canonical_hash
from repro.xst.xset import XSet

__all__ = [
    "SortedRun",
    "ColumnarRelation",
    "encode",
    "materialize",
    "numpy_active",
    "set_numpy",
]

#: Cancellation-checkpoint stride for columnar batch loops (power of
#: two, matching the row-at-a-time kernel's stride so governed
#: executions cross the same ledger totals on either backend).
_CHECK_EVERY = 1024

#: Mix multiplier for combining per-attribute hashes into one joint
#: join key (Knuth's 2^32 golden-ratio constant).  Joint hashes only
#: steer the merge; matches are verified on values.
_MIX = 0x9E3779B1
_MASK64 = (1 << 64) - 1


def _env_truthy(value: str) -> bool:
    return value.strip().lower() in ("1", "true", "yes", "on")


def _import_numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy genuinely absent
        return None
    return numpy


#: The numpy module when the ``REPRO_NUMPY=1`` backend is active, else
#: ``None`` (pure ``array``/``bisect``).  Missing numpy degrades to the
#: pure-Python path silently: the flag requests a backend, it does not
#: add a dependency.
_NUMPY = _import_numpy() if _env_truthy(os.environ.get("REPRO_NUMPY", "")) else None


def numpy_active() -> bool:
    """Is the numpy run backend currently in use?"""
    return _NUMPY is not None


def set_numpy(flag: bool) -> bool:
    """Flip the numpy backend (tests sweep both); returns the previous.

    Enabling is a no-op when numpy is not importable.
    """
    global _NUMPY
    previous = _NUMPY is not None
    _NUMPY = _import_numpy() if flag else None
    return previous


def _record_backend(op: str, backend: str) -> None:
    """Count one kernel-op execution by backend (observability on)."""
    if _obs_enabled():
        _metrics.registry().counter(
            "repro_kernel_backend_total",
            "Kernel operator executions by physical backend.",
            ("op", "backend"),
        ).inc_key((op, backend))


class SortedRun:
    """One attribute's sorted run: hash keys ascending + row permutation.

    ``hashes[i]`` is the ``canonical_hash`` of the attribute value in
    row ``perm[i]``; the hash array is sorted ascending (stably, so
    ``perm`` preserves row order within equal keys -- determinism, not
    correctness, rides on that).  Both arrays are ``array('Q')`` /
    ``array('L')`` in the pure backend or ``numpy.ndarray`` under
    ``REPRO_NUMPY=1``; :meth:`equal_range` hides the difference.
    """

    __slots__ = ("hashes", "perm")

    def __init__(self, hashes, perm):
        self.hashes = hashes
        self.perm = perm

    def __len__(self) -> int:
        return len(self.hashes)

    def equal_range(self, key: int) -> Tuple[int, int]:
        """The half-open index range of ``key`` in the sorted hashes."""
        if _NUMPY is not None and isinstance(self.hashes, _NUMPY.ndarray):
            lo = int(_NUMPY.searchsorted(self.hashes, key, side="left"))
            hi = int(_NUMPY.searchsorted(self.hashes, key, side="right"))
            return lo, hi
        return (
            bisect_left(self.hashes, key),
            bisect_right(self.hashes, key),
        )

    @classmethod
    def build(cls, values: Sequence[Any]) -> "SortedRun":
        """Encode one column: hash every value, sort stably by hash.

        This is the *once per encode* cost that buys O(log n) searches
        thereafter; the per-element Python work the row kernel pays on
        every operation is paid here a single time.
        """
        keys = [canonical_hash(value) for value in values]
        if _NUMPY is not None:
            hash_array = _NUMPY.asarray(keys, dtype=_NUMPY.uint64)
            order = _NUMPY.argsort(hash_array, kind="stable")
            return cls(hash_array[order], order)
        order = sorted(range(len(keys)), key=keys.__getitem__)
        return cls(
            array("Q", (keys[index] for index in order)),
            array("L", order),
        )


class ColumnarRelation:
    """A relation in columnar run encoding: the kernel fast path.

    ``columns`` maps each attribute to its value list in row order;
    sorted runs are built lazily per attribute (and per joint join
    key) and cached, so a relation only pays encoding cost for the
    attributes queries actually touch.

    Instances produced by the operator methods below are duplicate-row
    free whenever their inputs are (projection, union and difference
    deduplicate by raw value tuples -- Python equality *is* XST member
    equality for admissible values), so cardinalities agree with the
    row backend at every plan node, which keeps governor row charges
    identical across backends.
    """

    __slots__ = (
        "_heading", "_columns", "_length", "_runs", "_joint_runs",
        "_relation",
    )

    def __init__(
        self,
        heading: Sequence[str],
        columns: Mapping[str, Sequence[Any]],
        length: Optional[int] = None,
    ):
        self._heading = heading if isinstance(heading, Heading) else Heading(heading)
        self._columns: Dict[str, List[Any]] = {}
        lengths = set()
        for name in self._heading.names:
            if name not in columns:
                raise SchemaError(
                    "missing column %r for heading %r" % (name, self._heading)
                )
            values = columns[name]
            values = values if isinstance(values, list) else list(values)
            self._columns[name] = values
            lengths.add(len(values))
        if len(lengths) > 1:
            raise SchemaError(
                "ragged columns: %s"
                % sorted((name, len(col)) for name, col in self._columns.items())
            )
        if lengths:
            inferred = lengths.pop()
            if length is not None and length != inferred:
                raise SchemaError(
                    "explicit length %d contradicts column length %d"
                    % (length, inferred)
                )
            self._length = inferred
        else:
            # Zero-attribute relations still carry a row count: the
            # projection of a non-empty relation onto no attributes is
            # the single empty row (set semantics; see project()).
            self._length = int(length or 0)
        self._runs: Dict[str, SortedRun] = {}
        self._joint_runs: Dict[Tuple[str, ...], SortedRun] = {}
        self._relation: Optional[Relation] = None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def heading(self) -> Heading:
        return self._heading

    def __len__(self) -> int:
        return self._length

    def cardinality(self) -> int:
        """Row count, without canonicalizing (plan-node checkpoints)."""
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def column(self, attr: str) -> List[Any]:
        self._heading.require([attr])
        return list(self._columns[attr])

    def raw_column(self, attr: str) -> Sequence[Any]:
        """The internal value list, no copy.  Treat as read-only:
        encodings are immutable after construction and runs alias it.
        """
        self._heading.require([attr])
        return self._columns[attr]

    def iter_rows(self) -> Iterator[Tuple[Any, ...]]:
        """Rows as value tuples in heading order (storage order)."""
        names = self._heading.names
        cols = [self._columns[name] for name in names]
        for index in range(self._length):
            yield tuple(col[index] for col in cols)

    def __repr__(self) -> str:
        return "ColumnarRelation(%r, %d rows)" % (self._heading, self._length)

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def run(self, attr: str) -> SortedRun:
        """The attribute's sorted run, built on first use and cached."""
        cached = self._runs.get(attr)
        if cached is None:
            self._heading.require([attr])
            cached = SortedRun.build(self._columns[attr])
            self._runs[attr] = cached
        return cached

    def joint_run(self, attrs: Sequence[str]) -> SortedRun:
        """A run over the mixed hash of several attributes (join keys)."""
        wanted = tuple(attrs)
        if len(wanted) == 1:
            return self.run(wanted[0])
        cached = self._joint_runs.get(wanted)
        if cached is None:
            self._heading.require(wanted)
            cols = [self._columns[attr] for attr in wanted]
            mixed = [0] * self._length
            for col in cols:
                for index in range(self._length):
                    mixed[index] = (
                        mixed[index] * _MIX + canonical_hash(col[index])
                    ) & _MASK64
            if _NUMPY is not None:
                hash_array = _NUMPY.asarray(mixed, dtype=_NUMPY.uint64)
                order = _NUMPY.argsort(hash_array, kind="stable")
                cached = SortedRun(hash_array[order], order)
            else:
                order = sorted(range(self._length), key=mixed.__getitem__)
                cached = SortedRun(
                    array("Q", (mixed[index] for index in order)),
                    array("L", order),
                )
            self._joint_runs[wanted] = cached
        return cached

    # ------------------------------------------------------------------
    # Conversion (the canonical identity)
    # ------------------------------------------------------------------

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarRelation":
        names = relation.heading.names
        columns: Dict[str, List[Any]] = {name: [] for name in names}
        count = 0
        for record in relation.iter_dicts():
            count += 1
            for name in names:
                columns[name].append(record[name])
        encoded = cls(relation.heading, columns, length=count)
        encoded._relation = relation
        return encoded

    def canonical(self) -> XSet:
        """The mathematical identity: the set of attribute-scoped rows."""
        names = self._heading.names
        cols = [self._columns[name] for name in names]
        return xset(
            xrecord({name: col[index] for name, col in zip(names, cols)})
            for index in range(self._length)
        )

    def to_relation(self) -> Relation:
        """Canonicalize back to the row model (cached).

        This is the only place a columnar pipeline pays XSet
        construction cost -- once, at the boundary, proportional to
        the *result*, not to any intermediate.
        """
        if self._relation is None:
            self._relation = Relation(self._heading, self.canonical())
        return self._relation

    # ------------------------------------------------------------------
    # Kernel operators (batch loops, governor checkpoints per batch)
    # ------------------------------------------------------------------

    def _take(self, indices: Sequence[int],
              heading: Optional[Heading] = None) -> "ColumnarRelation":
        """A new encoding holding the given rows (heading order kept)."""
        heading = self._heading if heading is None else heading
        columns = {}
        for name in heading.names:
            col = self._columns[name]
            columns[name] = [col[index] for index in indices]
        return ColumnarRelation(heading, columns, length=len(indices))

    def select_eq(self, conditions: Mapping[str, Any]) -> "ColumnarRelation":
        """Equality selection by binary search over the narrowest run.

        Every condition attribute's run is probed (O(log n) each); the
        narrowest candidate range is scanned and each candidate is
        verified *by value* against every condition -- hash collisions
        reject here, never in the result.
        """
        attrs = self._heading.require(sorted(conditions))
        if not attrs or self._length == 0:
            # No conditions restrict by the one-member key {{}} -- the
            # empty record triggers every row, so everything survives.
            _record_backend("restrict", "columnar")
            return self._take(range(self._length))
        best_range: Optional[Tuple[int, int]] = None
        best_run: Optional[SortedRun] = None
        for attr in attrs:
            run = self.run(attr)
            lo, hi = run.equal_range(canonical_hash(conditions[attr]))
            if best_range is None or hi - lo < best_range[1] - best_range[0]:
                best_range, best_run = (lo, hi), run
            if hi == lo:
                break
        lo, hi = best_range  # type: ignore[misc]
        candidates = memoryview(best_run.perm)[lo:hi] \
            if isinstance(best_run.perm, array) else best_run.perm[lo:hi]
        cols = {attr: self._columns[attr] for attr in attrs}
        gov = _gov_active()
        charged = 0
        kept: List[int] = []
        for scanned, row in enumerate(candidates, 1):
            row = int(row)
            for attr in attrs:
                if not cols[attr][row] == conditions[attr]:
                    break
            else:
                kept.append(row)
            if gov is not None and not (scanned & (_CHECK_EVERY - 1)):
                gov.checkpoint("columnar.restrict", len(kept) - charged)
                charged = len(kept)
        if gov is not None:
            gov.checkpoint("columnar.restrict", len(kept) - charged)
        kept.sort()  # storage order: keeps run builds deterministic
        _record_backend("restrict", "columnar")
        return self._take(kept)

    def select_pred(self, predicate, label: str = "<predicate>") -> "ColumnarRelation":
        """General predicate selection (row dicts, honest separation).

        No run accelerates an opaque Python predicate; the win over
        falling back to the row backend is staying in the encoding --
        no XSet is built for the input or the output.
        """
        names = self._heading.names
        cols = [self._columns[name] for name in names]
        kept = [
            index
            for index in range(self._length)
            if predicate({name: col[index] for name, col in zip(names, cols)})
        ]
        _record_backend("select_pred", "columnar")
        return self._take(kept)

    def project(self, attrs: Sequence[str]) -> "ColumnarRelation":
        """Projection with set-semantics duplicate collapse.

        Deduplication keys are the raw value tuples: Python ``==`` /
        ``hash`` coincide with XST member equality for admissible
        values, so exactly the rows an ``XSet`` would collapse are
        collapsed (including ``1`` / ``1.0`` / ``True`` twins).  The
        projection of a *non-empty* relation onto **no** attributes is
        the single empty row ``{{}}`` -- set semantics' DEE -- carried
        here as a zero-attribute encoding of length one.
        """
        wanted = self._heading.require(attrs)
        heading = Heading(wanted)
        if not wanted:
            _record_backend("project", "columnar")
            return ColumnarRelation(
                heading, {}, length=1 if self._length else 0
            )
        cols = [self._columns[attr] for attr in wanted]
        gov = _gov_active()
        seen = set()
        keep: List[int] = []
        for index in range(self._length):
            key = tuple(col[index] for col in cols)
            if key not in seen:
                seen.add(key)
                keep.append(index)
            if gov is not None and not ((index + 1) & (_CHECK_EVERY - 1)):
                # Deadline-only: the row kernel's sigma-domain charges
                # no budget rows for projection, and backends must
                # draw identical ledger totals (the parity property in
                # tests/gov/test_columnar_gov.py) -- but a long dedup
                # loop still honors deadlines batch-by-batch.
                gov.checkpoint("columnar.project")
        _record_backend("project", "columnar")
        return self._take(keep, heading)

    def rename(self, mapping: Mapping[str, str]) -> "ColumnarRelation":
        """Re-scope by renaming columns -- and *carry the runs over*.

        The row kernel rebuilds every row; the columnar rename is a
        dictionary re-key.  Cached runs transfer because hashes depend
        on values, not attribute names.
        """
        self._heading.require(mapping)
        new_heading = self._heading.rename(dict(mapping))
        columns = {
            mapping.get(name, name): self._columns[name]
            for name in self._heading.names
        }
        renamed = ColumnarRelation(new_heading, columns, length=self._length)
        for attr, run in self._runs.items():
            renamed._runs[mapping.get(attr, attr)] = run
        _record_backend("rename", "columnar")
        return renamed

    def join(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Natural join as a merge-intersection of sorted key runs.

        Both sides' joint runs (mixed hash over the shared attributes)
        are walked with two cursors; equal-hash blocks cross-verify on
        the actual values and matching pairs emit merged rows.  With
        no shared attribute this degrades to the cross-product batch
        kernel, mirroring ``algebra.join``.
        """
        shared = self._heading.common(other._heading)
        if not shared:
            return self.cross(other)
        out_heading = self._heading.union(other._heading)
        right_only = [
            name for name in other._heading.names if name not in self._heading
        ]
        left_run = self.joint_run(shared)
        right_run = other.joint_run(shared)
        left_cols = {attr: self._columns[attr] for attr in shared}
        right_cols = {attr: other._columns[attr] for attr in shared}
        lh, rh = left_run.hashes, right_run.hashes
        lp = memoryview(left_run.perm) if isinstance(left_run.perm, array) \
            else left_run.perm
        rp = memoryview(right_run.perm) if isinstance(right_run.perm, array) \
            else right_run.perm
        nl, nr = len(lh), len(rh)
        gov = _gov_active()
        charged = 0
        matches: List[Tuple[int, int]] = []
        i = j = 0
        while i < nl and j < nr:
            a, b = lh[i], rh[j]
            if a < b:
                i = bisect_left(lh, b, i + 1)
            elif b < a:
                j = bisect_left(rh, a, j + 1)
            else:
                i2 = bisect_right(lh, a, i)
                j2 = bisect_right(rh, b, j)
                for li in lp[i:i2]:
                    li = int(li)
                    for rj in rp[j:j2]:
                        rj = int(rj)
                        for attr in shared:
                            if not left_cols[attr][li] == right_cols[attr][rj]:
                                break
                        else:
                            matches.append((li, rj))
                            if gov is not None and not (
                                len(matches) & (_CHECK_EVERY - 1)
                            ):
                                gov.checkpoint(
                                    "columnar.join",
                                    len(matches) - charged,
                                )
                                charged = len(matches)
                i, j = i2, j2
        if gov is not None:
            gov.checkpoint("columnar.join", len(matches) - charged)
        columns: Dict[str, List[Any]] = {}
        for name in self._heading.names:
            col = self._columns[name]
            columns[name] = [col[li] for li, _ in matches]
        for name in right_only:
            col = other._columns[name]
            columns[name] = [col[rj] for _, rj in matches]
        _record_backend("join", "columnar")
        return ColumnarRelation(out_heading, columns, length=len(matches))

    def semijoin(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Rows of ``self`` with at least one partner: restriction.

        The same merge-intersection as :meth:`join`, keeping left row
        indices only (each once) -- restriction *is* semijoin.
        """
        shared = self._heading.common(other._heading)
        if not shared:
            raise SchemaError("semijoin needs at least one shared attribute")
        left_run = self.joint_run(shared)
        right_run = other.joint_run(shared)
        left_cols = {attr: self._columns[attr] for attr in shared}
        right_cols = {attr: other._columns[attr] for attr in shared}
        lh, rh = left_run.hashes, right_run.hashes
        lp = left_run.perm
        rp = right_run.perm
        nl, nr = len(lh), len(rh)
        gov = _gov_active()
        charged = 0
        kept: List[int] = []
        i = j = 0
        while i < nl and j < nr:
            a, b = lh[i], rh[j]
            if a < b:
                i = bisect_left(lh, b, i + 1)
            elif b < a:
                j = bisect_left(rh, a, j + 1)
            else:
                i2 = bisect_right(lh, a, i)
                j2 = bisect_right(rh, b, j)
                for ii in range(i, i2):
                    li = int(lp[ii])
                    for jj in range(j, j2):
                        rj = int(rp[jj])
                        for attr in shared:
                            if not left_cols[attr][li] == right_cols[attr][rj]:
                                break
                        else:
                            kept.append(li)
                            break
                if gov is not None:
                    gov.checkpoint("columnar.restrict", len(kept) - charged)
                    charged = len(kept)
                i, j = i2, j2
        if gov is not None:
            gov.checkpoint("columnar.restrict", len(kept) - charged)
        kept.sort()
        _record_backend("restrict", "columnar")
        return self._take(kept)

    def cross(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Cartesian product batch kernel (disjoint headings).

        Checkpoints every :data:`_CHECK_EVERY` emitted rows, matching
        the stride of :func:`repro.xst.products.cross` so a governed
        runaway product dies just as promptly on this backend.
        """
        if not self._heading.disjoint_from(other._heading):
            raise SchemaError(
                "cross requires disjoint headings; shared: %s"
                % list(self._heading.common(other._heading))
            )
        out_heading = self._heading.union(other._heading)
        gov = _gov_active()
        nl, nr = self._length, other._length
        total = nl * nr
        if gov is not None:
            emitted = 0
            while emitted < total:
                batch = min(_CHECK_EVERY, total - emitted)
                emitted += batch
                gov.checkpoint("columnar.cross", batch)
        columns: Dict[str, List[Any]] = {}
        for name in self._heading.names:
            col = self._columns[name]
            columns[name] = [value for value in col for _ in range(nr)]
        for name in other._heading.names:
            col = other._columns[name]
            columns[name] = col * nl
        _record_backend("cross", "columnar")
        return ColumnarRelation(out_heading, columns, length=total)

    def image(self, conditions: Mapping[str, Any],
              out_attrs: Sequence[str]) -> "ColumnarRelation":
        """The image composite: restriction then projection (Def 7.1).

        ``R[A]_{<sigma1, sigma2>}`` with an equality key: binary-search
        restriction, then sigma-domain projection -- both batch
        kernels, one call.
        """
        result = self.select_eq(conditions).project(out_attrs)
        _record_backend("image", "columnar")
        return result

    def union(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Set union by value-tuple deduplication (same heading)."""
        self._require_same_heading(other)
        names = self._heading.names
        seen = set()
        columns: Dict[str, List[Any]] = {name: [] for name in names}
        count = 0
        for source in (self, other):
            cols = [source._columns[name] for name in names]
            for index in range(source._length):
                key = tuple(col[index] for col in cols)
                if key not in seen:
                    seen.add(key)
                    count += 1
                    for name, value in zip(names, key):
                        columns[name].append(value)
        _record_backend("union", "columnar")
        return ColumnarRelation(self._heading, columns, length=count)

    def difference(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Set difference by value-tuple membership (same heading)."""
        self._require_same_heading(other)
        names = self._heading.names
        other_cols = [other._columns[name] for name in names]
        drop = {
            tuple(col[index] for col in other_cols)
            for index in range(other._length)
        }
        cols = [self._columns[name] for name in names]
        kept = [
            index
            for index in range(self._length)
            if tuple(col[index] for col in cols) not in drop
        ]
        _record_backend("difference", "columnar")
        return self._take(kept)

    def _require_same_heading(self, other: "ColumnarRelation") -> None:
        if self._heading != other._heading:
            raise SchemaError(
                "headings differ: %r vs %r" % (self._heading, other._heading)
            )


def encode(relation: Relation) -> ColumnarRelation:
    """Encode a relation into the sorted-run columnar layout."""
    return ColumnarRelation.from_relation(relation)


def materialize(operand) -> Relation:
    """Collapse either backend's operand to the canonical row model."""
    if isinstance(operand, ColumnarRelation):
        return operand.to_relation()
    return operand
