"""A file-backed relation store with a page cache.

The VLDB-1977 scope is *very large* backend systems: relations that do
not fit in memory.  :class:`DiskRelationStore` persists relations as
segment files of canonically-serialized rows and reads them back
through a bounded LRU page cache, so working sets larger than memory
degrade gracefully instead of failing.

Layout per relation, under ``directory/<name>/``:

* ``meta`` -- serialized heading (attribute names as an XSet tuple)
  plus the segment count and rows-per-segment;
* ``seg-00000``, ``seg-00001``, ... -- each a self-delimiting stream
  of row XSets (:func:`repro.xst.serialization.dump_stream`).

The store offers the same access paths the in-memory engines do --
full scan, equality lookup, and load-as-:class:`Relation` -- so the
benchmark suite can price the storage hierarchy: in-memory set store
vs record store vs paged disk store.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Iterator, List, Optional, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.builders import xset, xtuple
from repro.xst.serialization import dump_stream, dumps, load_stream, loads
from repro.xst.xset import XSet

__all__ = ["DiskRelationStore", "PageCache"]


class PageCache:
    """A bounded LRU cache from (relation, segment) to decoded rows."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("page cache capacity must be positive")
        self._capacity = capacity
        self._pages: "OrderedDict[tuple, List[XSet]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[List[XSet]]:
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return page

    def put(self, key: tuple, rows: List[XSet]) -> None:
        self._pages[key] = rows
        self._pages.move_to_end(key)
        while len(self._pages) > self._capacity:
            self._pages.popitem(last=False)

    def __len__(self) -> int:
        return len(self._pages)


class DiskRelationStore:
    """Persist and query relations as paged segment files."""

    def __init__(self, directory: str, rows_per_segment: int = 256,
                 cache_pages: int = 8):
        if rows_per_segment < 1:
            raise ValueError("rows_per_segment must be positive")
        self._directory = directory
        self._rows_per_segment = rows_per_segment
        self._cache = PageCache(cache_pages)
        os.makedirs(directory, exist_ok=True)

    @property
    def cache(self) -> PageCache:
        return self._cache

    # ------------------------------------------------------------------
    # Paths and metadata
    # ------------------------------------------------------------------

    def _relation_dir(self, name: str) -> str:
        if not name.isidentifier():
            raise SchemaError("relation names must be identifiers: %r" % name)
        return os.path.join(self._directory, name)

    def _segment_path(self, name: str, index: int) -> str:
        return os.path.join(self._relation_dir(name), "seg-%05d" % index)

    def _write_meta(self, name: str, heading: Heading, segments: int) -> None:
        meta = xtuple([xtuple(list(heading.names)), segments,
                       self._rows_per_segment])
        with open(os.path.join(self._relation_dir(name), "meta"), "wb") as fh:
            fh.write(dumps(meta))

    def _read_meta(self, name: str) -> tuple:
        path = os.path.join(self._relation_dir(name), "meta")
        try:
            with open(path, "rb") as fh:
                meta = loads(fh.read())
        except FileNotFoundError:
            raise SchemaError("no stored relation named %r" % (name,)) from None
        names_tuple, segments, rows_per_segment = meta.as_tuple()
        heading = Heading(list(names_tuple.as_tuple()))
        return heading, segments, rows_per_segment

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def store(self, name: str, relation: Relation) -> int:
        """Write a relation; returns the number of segments written."""
        directory = self._relation_dir(name)
        os.makedirs(directory, exist_ok=True)
        rows = [row for row, _ in relation.rows.pairs()]
        segments = 0
        for start in range(0, len(rows), self._rows_per_segment):
            chunk = rows[start : start + self._rows_per_segment]
            with open(self._segment_path(name, segments), "wb") as fh:
                fh.write(dump_stream(chunk))
            segments += 1
        self._write_meta(name, relation.heading, segments)
        return segments

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def heading(self, name: str) -> Heading:
        return self._read_meta(name)[0]

    def segment_count(self, name: str) -> int:
        return self._read_meta(name)[1]

    def _segment_rows(self, name: str, index: int) -> List[XSet]:
        key = (name, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        with open(self._segment_path(name, index), "rb") as fh:
            rows = list(load_stream(fh.read()))
        self._cache.put(key, rows)
        return rows

    def scan(self, name: str) -> Iterator[XSet]:
        """Stream every stored row, one page in memory at a time."""
        _, segments, _ = self._read_meta(name)
        for index in range(segments):
            yield from self._segment_rows(name, index)

    def lookup(self, name: str, attr: str, value: Any) -> List[XSet]:
        """Equality selection by paged scan (no secondary index)."""
        heading = self.heading(name)
        heading.require([attr])
        return [
            row for row in self.scan(name) if row.contains(value, attr)
        ]

    def load(self, name: str) -> Relation:
        """Materialize the full relation back into memory."""
        heading = self.heading(name)
        return Relation(heading, xset(self.scan(name)))

    def names(self) -> Sequence[str]:
        """Stored relation names (those with a readable meta file)."""
        out = []
        for entry in sorted(os.listdir(self._directory)):
            if os.path.exists(os.path.join(self._directory, entry, "meta")):
                out.append(entry)
        return out

    def drop(self, name: str) -> None:
        """Remove a stored relation and its segments."""
        directory = self._relation_dir(name)
        if not os.path.isdir(directory):
            raise SchemaError("no stored relation named %r" % (name,))
        for entry in os.listdir(directory):
            os.remove(os.path.join(directory, entry))
        os.rmdir(directory)
