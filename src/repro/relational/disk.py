"""A file-backed relation store with a page cache and crash safety.

The VLDB-1977 scope is *very large* backend systems: relations that do
not fit in memory.  :class:`DiskRelationStore` persists relations as
segment files of canonically-serialized rows and reads them back
through a bounded LRU page cache, so working sets larger than memory
degrade gracefully instead of failing.

Layout per relation, under ``directory/<name>/``:

* ``meta`` -- serialized heading (attribute names as an XSet tuple)
  plus the current *generation*, the segment count and
  rows-per-segment;
* ``seg-<generation>-<index>`` -- each a self-delimiting stream of
  row XSets (:func:`repro.xst.serialization.dump_stream`) followed
  by a checksummed footer (CRC32 of the payload, the row count, and a
  magic trailer), so torn or bit-flipped segments surface as the
  typed :class:`~repro.relational.wal.CorruptSegmentError` instead of
  garbage rows.

Durability discipline (see ``docs/durability.md``):

* every file write -- segments and ``meta`` alike -- goes to a temp
  file that is fsynced and then atomically :func:`os.replace`\\ d into
  place, so a crash mid-write can never tear a file;
* overwriting a relation writes a complete *new generation* of
  segment files first and only then swings ``meta`` to it -- the one
  atomic commit point -- so a crash anywhere during the rewrite
  leaves ``meta`` naming a complete generation (old or new, never a
  mixed-vintage hybrid); stale generations are swept afterwards;
* :meth:`checkpoint` / :meth:`recover` pair the store with a
  :class:`~repro.relational.wal.WriteAheadLog`: checkpoint snapshots
  every table and *then* appends the checkpoint marker, recovery
  loads the last durable checkpoint and replays the commit tail,
  truncating torn log tails and refusing corrupt ones.

The store offers the same access paths the in-memory engines do --
full scan, equality lookup, and load-as-:class:`Relation` -- so the
benchmark suite can price the storage hierarchy: in-memory set store
vs record store vs paged disk store.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.relational.wal import (
    CorruptLogError,
    CorruptSegmentError,
    WriteAheadLog,
    record_recovery_metrics,
    recover_state,
)
from repro.xst.builders import xset, xtuple
from repro.xst.serialization import dump_stream, dumps, load_stream, loads
from repro.xst.xset import XSet

__all__ = ["DiskRelationStore", "PageCache"]

_SEG_MAGIC = b"XSTSEG1\n"
_FOOTER = struct.Struct(">II")  # CRC32(payload), row count


class PageCache:
    """A bounded LRU cache from (relation, segment) to decoded rows."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("page cache capacity must be positive")
        self._capacity = capacity
        self._pages: "OrderedDict[tuple, List[XSet]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[List[XSet]]:
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return page

    def put(self, key: tuple, rows: List[XSet]) -> None:
        self._pages[key] = rows
        self._pages.move_to_end(key)
        while len(self._pages) > self._capacity:
            self._pages.popitem(last=False)

    def evict_relation(self, name: str) -> int:
        """Drop every cached page of one relation; returns the count.

        Every mutation path (overwrite, drop) must call this: a stale
        warm page would otherwise keep serving the pre-mutation rows.
        """
        doomed = [key for key in self._pages if key[0] == name]
        for key in doomed:
            del self._pages[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._pages)


def _frame_segment(rows: List[XSet]) -> bytes:
    payload = dump_stream(rows)
    return payload + _FOOTER.pack(zlib.crc32(payload), len(rows)) + _SEG_MAGIC


def _unframe_segment(data: bytes, path: str) -> List[XSet]:
    trailer = _FOOTER.size + len(_SEG_MAGIC)
    if len(data) < trailer or data[-len(_SEG_MAGIC):] != _SEG_MAGIC:
        raise CorruptSegmentError(
            "segment %r is truncated or missing its footer" % path
        )
    payload = data[: len(data) - trailer]
    crc, count = _FOOTER.unpack(data[len(payload) : len(payload) + _FOOTER.size])
    if zlib.crc32(payload) != crc:
        raise CorruptSegmentError(
            "segment %r failed its checksum" % path
        )
    rows = list(load_stream(payload))
    if len(rows) != count:
        raise CorruptSegmentError(
            "segment %r decoded %d rows, footer promised %d"
            % (path, len(rows), count)
        )
    return rows


class DiskRelationStore:
    """Persist and query relations as paged, checksummed segment files.

    ``opener`` injects the file factory used for every write (the
    :class:`~repro.relational.wal.CrashPoint` hook), so crash tests
    can kill the process at any byte of any segment or meta write.
    """

    def __init__(self, directory: str, rows_per_segment: int = 256,
                 cache_pages: int = 8,
                 opener: Optional[Callable[[str, str], Any]] = None):
        if rows_per_segment < 1:
            raise ValueError("rows_per_segment must be positive")
        self._directory = directory
        self._rows_per_segment = rows_per_segment
        self._cache = PageCache(cache_pages)
        self._opener = opener if opener is not None else open
        os.makedirs(directory, exist_ok=True)

    @property
    def cache(self) -> PageCache:
        return self._cache

    # ------------------------------------------------------------------
    # Paths and metadata
    # ------------------------------------------------------------------

    def _relation_dir(self, name: str) -> str:
        if not name.isidentifier():
            raise SchemaError("relation names must be identifiers: %r" % name)
        return os.path.join(self._directory, name)

    def _segment_path(self, name: str, generation: int, index: int) -> str:
        return os.path.join(
            self._relation_dir(name), "seg-%05d-%05d" % (generation, index)
        )

    def _atomic_write(self, path: str, payload: bytes) -> None:
        """Temp file + fsync + ``os.replace``: all-or-nothing on disk."""
        tmp = path + ".tmp"
        fh = self._opener(tmp, "wb")
        try:
            fh.write(payload)
            fh.flush()
            if hasattr(fh, "sync"):
                fh.sync()
            else:
                try:
                    os.fsync(fh.fileno())
                except (OSError, ValueError):  # pragma: no cover
                    pass
        finally:
            fh.close()
        os.replace(tmp, path)

    def _write_meta(self, name: str, heading: Heading, generation: int,
                    segments: int) -> None:
        meta = xtuple([xtuple(list(heading.names)), generation, segments,
                       self._rows_per_segment])
        self._atomic_write(
            os.path.join(self._relation_dir(name), "meta"), dumps(meta)
        )

    def _read_meta(self, name: str) -> tuple:
        path = os.path.join(self._relation_dir(name), "meta")
        try:
            with open(path, "rb") as fh:
                meta = loads(fh.read())
        except FileNotFoundError:
            raise SchemaError("no stored relation named %r" % (name,)) from None
        names_tuple, generation, segments, rows_per_segment = meta.as_tuple()
        heading = Heading(list(names_tuple.as_tuple()))
        return heading, generation, segments, rows_per_segment

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def store(self, name: str, relation: Relation) -> int:
        """Write a relation; returns the number of segments written.

        A complete new *generation* of segment files lands first (each
        atomically, under names the old meta never references), then
        the meta pointer swings to it -- the single atomic commit
        point -- and only then is the old generation swept.  A crash
        anywhere leaves the meta naming a complete generation: the old
        relation or the new one, never a mixed-vintage hybrid.  Cached
        pages of the old incarnation are evicted.
        """
        directory = self._relation_dir(name)
        os.makedirs(directory, exist_ok=True)
        try:
            _, generation, _, _ = self._read_meta(name)
        except SchemaError:
            generation = 0
        generation += 1
        rows = [row for row, _ in relation.rows.pairs()]
        segments = 0
        for start in range(0, len(rows), self._rows_per_segment):
            chunk = rows[start : start + self._rows_per_segment]
            self._atomic_write(
                self._segment_path(name, generation, segments),
                _frame_segment(chunk),
            )
            segments += 1
        self._write_meta(name, relation.heading, generation, segments)
        self._cache.evict_relation(name)
        keep = "seg-%05d-" % generation
        for entry in os.listdir(directory):
            if (entry.startswith("seg-") and not entry.endswith(".tmp")
                    and not entry.startswith(keep)):
                os.remove(os.path.join(directory, entry))
        return segments

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def heading(self, name: str) -> Heading:
        return self._read_meta(name)[0]

    def segment_count(self, name: str) -> int:
        return self._read_meta(name)[2]

    def _segment_rows(self, name: str, generation: int,
                      index: int) -> List[XSet]:
        key = (name, generation, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        path = self._segment_path(name, generation, index)
        with open(path, "rb") as fh:
            rows = _unframe_segment(fh.read(), path)
        self._cache.put(key, rows)
        return rows

    def scan(self, name: str) -> Iterator[XSet]:
        """Stream every stored row, one page in memory at a time."""
        _, generation, segments, _ = self._read_meta(name)
        for index in range(segments):
            yield from self._segment_rows(name, generation, index)

    def lookup(self, name: str, attr: str, value: Any) -> List[XSet]:
        """Equality selection by paged scan (no secondary index)."""
        heading = self.heading(name)
        heading.require([attr])
        return [
            row for row in self.scan(name) if row.contains(value, attr)
        ]

    def load(self, name: str) -> Relation:
        """Materialize the full relation back into memory."""
        heading = self.heading(name)
        return Relation(heading, xset(self.scan(name)))

    def names(self) -> Sequence[str]:
        """Stored relation names (those with a readable meta file)."""
        out = []
        for entry in sorted(os.listdir(self._directory)):
            if os.path.exists(os.path.join(self._directory, entry, "meta")):
                out.append(entry)
        return out

    def drop(self, name: str) -> None:
        """Remove a stored relation, its segments and its cached pages."""
        directory = self._relation_dir(name)
        if not os.path.isdir(directory):
            raise SchemaError("no stored relation named %r" % (name,))
        for entry in os.listdir(directory):
            os.remove(os.path.join(directory, entry))
        os.rmdir(directory)
        self._cache.evict_relation(name)

    # ------------------------------------------------------------------
    # Statistics catalog persistence
    # ------------------------------------------------------------------

    _STATS_FILE = "stats.cat"

    def store_stats(self, catalog) -> None:
        """Persist a :class:`~repro.relational.stats.StatsCatalog`.

        One canonically-serialized file (``stats.cat``) beside the
        relation directories, written with the same temp-file +
        fsync + replace discipline as segments, so a crash can never
        tear the catalog.
        """
        self._atomic_write(
            os.path.join(self._directory, self._STATS_FILE),
            dumps(catalog.to_xset()),
        )

    def load_stats(self):
        """The persisted catalog, or ``None`` when never stored."""
        from repro.relational.stats import StatsCatalog

        path = os.path.join(self._directory, self._STATS_FILE)
        try:
            with open(path, "rb") as fh:
                return StatsCatalog.from_xset(loads(fh.read()))
        except FileNotFoundError:
            return None

    def drop_stats(self) -> None:
        path = os.path.join(self._directory, self._STATS_FILE)
        if os.path.exists(path):
            os.remove(path)

    # ------------------------------------------------------------------
    # Shard placement persistence
    # ------------------------------------------------------------------

    _SHARDS_FILE = "shards.map"
    _MOVE_FILE = "shards.move"

    def store_shards(self, catalog) -> None:
        """Persist a :class:`~repro.relational.sharding.ShardCatalog`.

        One canonically-serialized file (``shards.map``) holding every
        table's epoch-stamped placement, rewritten atomically on each
        epoch swing -- the same temp-file + fsync + replace discipline
        as ``stats.cat``, so a crash leaves either the old epoch's
        catalog or the new one, never a torn hybrid.
        """
        self._atomic_write(
            os.path.join(self._directory, self._SHARDS_FILE),
            dumps(catalog.to_xset()),
        )

    def load_shards(self):
        """The persisted shard catalog, or ``None`` when never stored."""
        from repro.relational.sharding import ShardCatalog

        path = os.path.join(self._directory, self._SHARDS_FILE)
        try:
            with open(path, "rb") as fh:
                return ShardCatalog.from_xset(loads(fh.read()))
        except FileNotFoundError:
            return None

    def drop_shards(self) -> None:
        path = os.path.join(self._directory, self._SHARDS_FILE)
        if os.path.exists(path):
            os.remove(path)

    def store_move(self, move_value: XSet) -> None:
        """Journal an in-flight shard move (``shards.move``).

        Rewritten after every state-machine step; cleared by
        :meth:`drop_move` once the move's garbage collection runs.  A
        journal left behind is exactly what ``repro fsck`` inspects to
        distinguish a resumable move from a torn swing.
        """
        self._atomic_write(
            os.path.join(self._directory, self._MOVE_FILE),
            dumps(move_value),
        )

    def load_move(self) -> Optional[XSet]:
        """The journaled move value, or ``None`` when no move is open."""
        path = os.path.join(self._directory, self._MOVE_FILE)
        try:
            with open(path, "rb") as fh:
                return loads(fh.read())
        except FileNotFoundError:
            return None

    def drop_move(self) -> None:
        path = os.path.join(self._directory, self._MOVE_FILE)
        if os.path.exists(path):
            os.remove(path)

    # ------------------------------------------------------------------
    # Checkpoint / recovery (the WAL pairing)
    # ------------------------------------------------------------------

    def checkpoint(self, log: WriteAheadLog,
                   tables: Mapping[str, Relation],
                   stats=None, shards=None) -> int:
        """Snapshot every table, then append the checkpoint marker.

        The marker is appended only after every snapshot is atomically
        on disk, so a checkpoint record in the log *guarantees* the
        store holds at least that state.  A crash mid-checkpoint
        leaves some tables at a newer snapshot than the last marker --
        which recovery's last-touch-wins replay absorbs (see
        :mod:`repro.relational.wal`).  When a ``stats`` catalog is
        given it is persisted with the snapshots (before the marker),
        so recovered databases plan with the statistics they
        checkpointed; a ``shards`` catalog likewise rides along so a
        recovered cluster resumes at the epoch it checkpointed.
        Returns the marker's LSN.
        """
        for name in sorted(tables):
            self.store(name, tables[name])
        if stats is not None:
            self.store_stats(stats)
        if shards is not None:
            self.store_shards(shards)
        return log.checkpoint(sorted(tables))

    def recover(self, log: WriteAheadLog) -> Dict[str, Relation]:
        """Rebuild the last durable committed state from log + store.

        Truncates a torn log tail, raises
        :class:`~repro.relational.wal.CorruptLogError` on mid-log
        corruption, loads the tables named by the last checkpoint
        marker, and replays every later commit delta.  The result is
        prefix-consistent: exactly the state after the last commit
        whose record is wholly on disk.
        """
        started = time.perf_counter()
        scan = log.scan()
        if scan.corrupt_at is not None:
            raise CorruptLogError(
                "corrupt frame at byte %d of %r"
                % (scan.corrupt_at, log.path)
            )
        log.truncate_torn_tail(scan)
        records = [record for _, record in scan.records]
        state, replayed = recover_state(records, loader=self.load)
        record_recovery_metrics(
            "wal", time.perf_counter() - started, replayed, scan.valid_bytes
        )
        return state
