"""Grouping and aggregation over XST relations.

Grouping is image application: reading a relation as the process
``rel.as_process(group_attrs, rest)`` and applying it to each distinct
key fragment partitions the rows -- one Def 7.1 image per group.  This
module packages that into the familiar ``group_by`` / aggregate API
and keeps the group *sets* available, because under XST a group is a
first-class extended set, not a transient iterator state.

Aggregates are named functions over the group's column values:
``count``, ``sum``, ``avg``, ``min``, ``max``, plus ``set_of`` (the
distinct values as a frozenset) for the set-flavoured reading.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Heading
from repro.xst.builders import xrecord, xset
from repro.xst.domain import sigma_domain
from repro.xst.restrict import sigma_restrict
from repro.xst.xset import XSet

__all__ = ["group_by", "aggregate", "AGGREGATES"]


def _count(values: List[Any]) -> int:
    return len(values)


def _sum(values: List[Any]) -> Any:
    return sum(values)


def _avg(values: List[Any]) -> float:
    if not values:
        raise SchemaError("avg over an empty group")
    return sum(values) / len(values)


def _min(values: List[Any]) -> Any:
    if not values:
        raise SchemaError("min over an empty group")
    return min(values)


def _max(values: List[Any]) -> Any:
    if not values:
        raise SchemaError("max over an empty group")
    return max(values)


def _set_of(values: List[Any]) -> frozenset:
    return frozenset(values)


#: Registered aggregate functions, by the name used in specs.
AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": _count,
    "sum": _sum,
    "avg": _avg,
    "min": _min,
    "max": _max,
    "set_of": _set_of,
}


def group_by(
    rel: Relation, attrs: Sequence[str]
) -> List[Tuple[Dict[str, Any], Relation]]:
    """Partition a relation by the given attributes.

    Returns ``(key_dict, group_relation)`` pairs in canonical key
    order.  Each group is computed by one sigma-restriction of the row
    set with the key fragment -- grouping *is* restriction.
    """
    wanted = rel.heading.require(attrs)
    key_sigma = XSet((attr, attr) for attr in wanted)
    distinct_keys = sigma_domain(rel.rows, key_sigma)
    groups = []
    for key_fragment, _ in distinct_keys.pairs():
        members = sigma_restrict(rel.rows, xset([key_fragment]), key_sigma)
        key_dict = dict(key_fragment.as_record())
        groups.append((key_dict, Relation(rel.heading, members)))
    return groups


def aggregate(
    rel: Relation,
    group_attrs: Sequence[str],
    aggregations: Mapping[str, Tuple[str, str]],
) -> Relation:
    """Grouped aggregation producing a new relation.

    ``aggregations`` maps output attribute names to ``(function_name,
    source_attribute)`` pairs, e.g.::

        aggregate(emp, ["dept"],
                  {"headcount": ("count", "emp"),
                   "payroll":   ("sum", "salary")})

    For ``count`` the source attribute only needs to exist.  Group
    keys become attributes of the result alongside the aggregates.
    """
    for out_name, (fn_name, source) in aggregations.items():
        if fn_name not in AGGREGATES:
            raise SchemaError(
                "unknown aggregate %r (have: %s)"
                % (fn_name, ", ".join(sorted(AGGREGATES)))
            )
        rel.heading.require([source])
        if out_name in group_attrs:
            raise SchemaError(
                "aggregate output %r collides with a group key" % (out_name,)
            )
    out_heading = Heading(tuple(group_attrs) + tuple(aggregations))
    if group_attrs:
        groups = group_by(rel, group_attrs)
    else:
        # No grouping attributes: the whole relation is one group (the
        # SQL reading of an ungrouped aggregate query).
        groups = [({}, rel)]
    out_rows = []
    for key_dict, group in groups:
        row = dict(key_dict)
        for out_name, (fn_name, source) in aggregations.items():
            values = [record[source] for record in group.iter_dicts()]
            row[out_name] = AGGREGATES[fn_name](values)
        out_rows.append(xrecord(row))
    return Relation(out_heading, xset(out_rows))
