"""Relations as extended sets of attribute-scoped rows.

A :class:`Relation` pairs a :class:`~repro.relational.schema.Heading`
with a classical extended set of rows, each row the record shape
``{value^'attr', ...}``.  Nothing here is a new data structure: the
rows *are* kernel :class:`~repro.xst.xset.XSet` values, so every
relational operation in :mod:`repro.relational.algebra` is a direct
kernel call -- restriction for selection, sigma-domain for projection,
re-scoping for renaming, relative product for join.  That is the
paper's section 12 claim ("all data representations can be managed as
mathematical operands") made literal.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.core.process import Process
from repro.core.sigma import Sigma
from repro.relational.schema import Heading
from repro.xst.builders import xrecord, xset
from repro.xst.xset import XSet

__all__ = ["Relation"]


class Relation:
    """An immutable relation: a heading plus a set of record rows."""

    __slots__ = ("_heading", "_rows")

    def __init__(self, heading: Heading, rows: XSet):
        for row, scope in rows.pairs():
            if not (isinstance(scope, XSet) and scope.is_empty):
                raise SchemaError("relation rows must be classical members")
            if not isinstance(row, XSet) or not row.is_record():
                raise SchemaError("row %r is not record-shaped" % (row,))
            row_attrs = frozenset(row.scopes())
            if row_attrs != frozenset(heading.names):
                raise SchemaError(
                    "row attributes %s do not match heading %r"
                    % (sorted(row_attrs), heading)
                )
        object.__setattr__(self, "_heading", heading)
        object.__setattr__(self, "_rows", rows)

    def __setattr__(self, name, value):
        raise AttributeError("Relation instances are immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_dicts(
        cls, names: Sequence[str], rows: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build from mappings; every row must supply every attribute."""
        heading = names if isinstance(names, Heading) else Heading(names)
        records = []
        for row in rows:
            if frozenset(row) != frozenset(heading.names):
                raise SchemaError(
                    "row keys %s do not match heading %r" % (sorted(row), heading)
                )
            records.append(xrecord(row))
        return cls(heading, xset(records))

    @classmethod
    def from_tuples(
        cls, names: Sequence[str], rows: Iterable[Sequence[Any]]
    ) -> "Relation":
        """Build from positional rows matching the heading's order."""
        heading = names if isinstance(names, Heading) else Heading(names)
        records = []
        for row in rows:
            values = tuple(row)
            if len(values) != len(heading):
                raise SchemaError(
                    "row %r has %d values for %d attributes"
                    % (values, len(values), len(heading))
                )
            records.append(xrecord(dict(zip(heading.names, values))))
        return cls(heading, xset(records))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def heading(self) -> Heading:
        return self._heading

    @property
    def rows(self) -> XSet:
        """The underlying extended set of rows."""
        return self._rows

    def cardinality(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        """Rows as plain dicts (deterministic canonical order)."""
        for row, _ in self._rows.pairs():
            yield dict(row.as_record())

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Rows as positional tuples in heading order, sorted."""
        out = [
            tuple(record[name] for name in self._heading.names)
            for record in self.iter_dicts()
        ]
        out.sort(key=repr)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._heading == other._heading and self._rows == other._rows

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(("repro.Relation", self._heading, self._rows))

    def __repr__(self) -> str:
        return "Relation(%r, %d rows)" % (self._heading, len(self._rows))

    # ------------------------------------------------------------------
    # Process view
    # ------------------------------------------------------------------

    def as_process(
        self, key_attrs: Sequence[str], out_attrs: Sequence[str]
    ) -> Process:
        """Read the relation as the behavior keyed/emitting by attributes.

        ``employees.as_process(["dept"], ["name"])`` is the process
        that, applied to a set of ``{dept-fragment}`` records, yields
        the matching name fragments -- relations *are* processes under
        a chosen sigma, which is how the query layer and the core
        layer meet.
        """
        self._heading.require(key_attrs)
        self._heading.require(out_attrs)
        return Process(self._rows, Sigma.attributes(key_attrs, out_attrs))
