"""Parse and print the paper's surface notation.

The paper writes extended sets as ``{a^1, b^2}``, tuples as
``<a, b, c>`` (equal, by Defs 7.2/9.1, to ``{a^1, b^2, c^3}``), and
scoped membership with the caret.  This module turns that notation
into :class:`~repro.xst.xset.XSet` values and back, so examples,
doctests and debugging sessions can speak the paper's language::

    >>> from repro.notation import parse
    >>> parse("{<a, x>, <b, y>}")
    {<a, x>, <b, y>}
    >>> parse("{a^x, b^y}") == parse("{ b^y , a^x }")
    True

Grammar (whitespace insensitive)::

    value  := set | tuple | atom
    set    := '{' [ member (',' member)* ] '}'
    member := value [ '^' value ]
    tuple  := '<' [ value (',' value)* ] '>'
    atom   := number | 'quoted string' | identifier

Bare identifiers parse as strings, numbers as int/float (with optional
sign), and members without a caret get the empty (classical) scope.
Rendering is the inverse: :func:`render` is re-exported from the
kernel and round-trips through :func:`parse` for every set built from
parseable atoms.
"""

from __future__ import annotations

import re
from typing import Any, List, Tuple

from repro.errors import NotationError
from repro.xst.xset import EMPTY, XSet, render

__all__ = ["parse", "render", "tokens"]

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<lbrace>\{) | (?P<rbrace>\}) |
    (?P<langle><)  | (?P<rangle>>)  |
    (?P<comma>,)   | (?P<caret>\^)  |
    (?P<number>-?\d+\.\d+|-?\d+)    |
    (?P<string>'[^']*'|"[^"]*")     |
    (?P<name>[A-Za-z_][A-Za-z_0-9]*[+\-]?|[+\-]) |
    (?P<space>\s+) |
    (?P<bad>.)
    """,
    re.VERBOSE,
)


#: Bare keywords the renderer prints for Python constants; the parser
#: reads them back as the constants so render/parse round-trips.
_KEYWORDS = {"None": None, "True": True, "False": False}


def tokens(text: str) -> List[Tuple[str, str]]:
    """Tokenize paper notation into ``(kind, lexeme)`` pairs."""
    out = []
    for match in _TOKEN_PATTERN.finditer(text):
        kind = match.lastgroup
        if kind == "space":
            continue
        if kind == "bad":
            raise NotationError(
                "unexpected character %r at position %d"
                % (match.group(), match.start())
            )
        out.append((kind, match.group()))
    return out


class _Parser:
    def __init__(self, stream: List[Tuple[str, str]]):
        self._stream = stream
        self._position = 0

    def _peek(self) -> Tuple[str, str]:
        if self._position >= len(self._stream):
            raise NotationError("unexpected end of input")
        return self._stream[self._position]

    def _take(self, expected: str) -> str:
        kind, lexeme = self._peek()
        if kind != expected:
            raise NotationError(
                "expected %s but found %r" % (expected, lexeme)
            )
        self._position += 1
        return lexeme

    def at_end(self) -> bool:
        return self._position >= len(self._stream)

    def value(self) -> Any:
        kind, lexeme = self._peek()
        if kind == "lbrace":
            return self._set()
        if kind == "langle":
            return self._tuple()
        if kind == "number":
            self._position += 1
            return float(lexeme) if "." in lexeme else int(lexeme)
        if kind == "string":
            self._position += 1
            return lexeme[1:-1]
        if kind == "name":
            self._position += 1
            return _KEYWORDS.get(lexeme, lexeme)
        raise NotationError("cannot start a value with %r" % (lexeme,))

    def _set(self) -> XSet:
        self._take("lbrace")
        pairs = []
        if self._peek()[0] != "rbrace":
            while True:
                element = self.value()
                scope: Any = EMPTY
                if not self.at_end() and self._peek()[0] == "caret":
                    self._take("caret")
                    scope = self.value()
                pairs.append((element, scope))
                if self._peek()[0] != "comma":
                    break
                self._take("comma")
        self._take("rbrace")
        return XSet(pairs)

    def _tuple(self) -> XSet:
        self._take("langle")
        items = []
        if self._peek()[0] != "rangle":
            while True:
                items.append(self.value())
                if self._peek()[0] != "comma":
                    break
                self._take("comma")
        self._take("rangle")
        return XSet((item, index) for index, item in enumerate(items, start=1))


def parse(text: str) -> Any:
    """Parse one value written in the paper's notation.

    The top-level value may be a set, a tuple or a bare atom.  Raises
    :class:`~repro.errors.NotationError` on malformed input or
    trailing garbage.
    """
    parser = _Parser(tokens(text))
    value = parser.value()
    if not parser.at_end():
        raise NotationError("trailing input after %r" % (value,))
    return value
