"""xst-repro: Extended Set Theory / Extended Set Processing.

A from-scratch reproduction of D L Childs' Extended Set Theory (XST)
programme: the scoped-membership kernel, functions-as-set-behavior
(processes), and the data-management layer the theory was proposed to
found.

Quick tour::

    >>> from repro import xset, xtuple, xpair, Process, Sigma
    >>> f = xset([xpair("a", "x"), xpair("b", "y"), xpair("c", "x")])
    >>> p = Process(f, Sigma.columns([1], [2]))      # f_(<<1>,<2>>)
    >>> p(xset([xtuple(["a"])]))                     # f_(sigma)({<a>})
    {<x>}
    >>> p.inverse()(xset([xtuple(["x"])]))
    {<a>, <c>}

Subpackages:

* :mod:`repro.xst` -- the kernel: XSet, re-scoping, domain,
  restriction, image, tuples, products, values, relative product.
* :mod:`repro.core` -- processes: application, nested application,
  composition, process/function spaces, the sub-space lattice.
* :mod:`repro.cst` -- the classical baseline everything is validated
  against.
* :mod:`repro.relational` -- relations, algebra, query plans, the
  composition-theorem optimizer and the two storage disciplines.
* :mod:`repro.workloads` -- seeded synthetic workload generators.
* :mod:`repro.notation` -- parse/print the paper's notation.
"""

from repro.core.composition import (
    FINAL_SIGMA,
    STAGE_SIGMA,
    compose,
    compose_chain,
    staged_apply,
    verify_composition,
)
from repro.core.process import Process, identity_process
from repro.core.sigma import Sigma
from repro.errors import (
    AmbiguousValueError,
    ClusterUnavailableError,
    CompositionError,
    InvalidAtomError,
    NotAFunctionError,
    NotAProcessError,
    NotATupleError,
    NotationError,
    SchemaError,
    XSTError,
)
from repro.notation import parse, render
from repro.xst import (
    EMPTY,
    XSet,
    cartesian,
    concat,
    cross,
    cst_image,
    image,
    relative_product,
    sigma_domain,
    sigma_restrict,
    xpair,
    xrecord,
    xset,
    xtuple,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # kernel
    "XSet",
    "EMPTY",
    "xset",
    "xtuple",
    "xpair",
    "xrecord",
    "sigma_domain",
    "sigma_restrict",
    "image",
    "cst_image",
    "relative_product",
    "cross",
    "cartesian",
    "concat",
    # core
    "Sigma",
    "Process",
    "identity_process",
    "compose",
    "compose_chain",
    "staged_apply",
    "verify_composition",
    "STAGE_SIGMA",
    "FINAL_SIGMA",
    # notation
    "parse",
    "render",
    # errors
    "XSTError",
    "InvalidAtomError",
    "NotATupleError",
    "NotAProcessError",
    "NotAFunctionError",
    "AmbiguousValueError",
    "CompositionError",
    "SchemaError",
    "NotationError",
    "ClusterUnavailableError",
]
