"""Convenient constructors for the common extended-set shapes.

The kernel's :class:`~repro.xst.xset.XSet` constructor takes raw
``(element, scope)`` pairs.  Application code nearly always wants one
of a handful of shapes instead, and these builders name them:

============  =====================================================
builder       shape
============  =====================================================
``xset``      classical set: every member under the empty scope
``xtuple``    Def 9.1 n-tuple ``{x1^1, ..., xn^n}``
``xpair``     Def 7.2 ordered pair ``<x, y> = {x^1, y^2}``
``xrecord``   attribute-scoped row ``{v^'col', ...}``
``scoped``    explicit ``(element, scope)`` pairs (alias of XSet)
``relation``  classical set of tuples, from an iterable of sequences
``from_python``  deep conversion of builtin containers
============  =====================================================
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence, Tuple

from repro.errors import InvalidAtomError
from repro.xst.xset import EMPTY, XSet

__all__ = [
    "xset",
    "xtuple",
    "xpair",
    "xrecord",
    "scoped",
    "relation",
    "from_python",
    "singleton",
]


def xset(members: Iterable[Any] = ()) -> XSet:
    """A classical set: each member held under the empty scope."""
    return XSet((member, EMPTY) for member in members)


_UNSET = object()


def singleton(member: Any, scope: Any = _UNSET) -> XSet:
    """The one-pair set ``{member^scope}`` (classical scope by default).

    ``None`` is a legitimate scope atom; omission is detected by a
    sentinel so ``singleton(x, None)`` builds ``{x^None}``.
    """
    return XSet([(member, EMPTY if scope is _UNSET else scope)])


def xtuple(items: Sequence[Any]) -> XSet:
    """The Def 9.1 n-tuple ``{items[0]^1, ..., items[n-1]^n}``."""
    return XSet((item, index) for index, item in enumerate(items, start=1))


def xpair(first: Any, second: Any) -> XSet:
    """The Def 7.2 ordered pair ``<first, second> = {first^1, second^2}``."""
    return XSet([(first, 1), (second, 2)])


def xrecord(fields: Mapping[str, Any]) -> XSet:
    """A row whose scopes are attribute names: ``{value^'name', ...}``."""
    return XSet((value, name) for name, value in fields.items())


def scoped(pairs: Iterable[Tuple[Any, Any]]) -> XSet:
    """Explicit ``(element, scope)`` pairs; a readable alias of ``XSet``."""
    return XSet(pairs)


def relation(rows: Iterable[Sequence[Any]]) -> XSet:
    """A classical set of n-tuples, one per input sequence.

    This is the working shape for the paper's relations: e.g.
    ``relation([("a", "x"), ("b", "y")])`` builds
    ``{<a, x>, <b, y>}``.
    """
    return xset(xtuple(row) for row in rows)


def from_python(value: Any) -> Any:
    """Deep-convert builtin containers into extended sets.

    ``set``/``frozenset`` become classical sets, ``tuple``/``list``
    become n-tuples, ``dict`` becomes a record (string keys) or a
    scoped set (other keys), and atoms pass through.  The conversion
    recurses into nested containers.
    """
    if isinstance(value, XSet):
        return value
    if isinstance(value, (set, frozenset)):
        return xset(from_python(member) for member in value)
    if isinstance(value, (tuple, list)):
        return xtuple([from_python(item) for item in value])
    if isinstance(value, Mapping):
        converted = {key: from_python(item) for key, item in value.items()}
        if all(isinstance(key, str) for key in converted):
            return xrecord(converted)
        return XSet((item, from_python(key)) for key, item in converted.items())
    try:
        hash(value)
    except TypeError as exc:
        raise InvalidAtomError(
            "cannot convert %r into an extended set value" % (value,)
        ) from exc
    return value
