"""Set algebra over extended sets.

The paper leans on the familiar Boolean operations -- Consequences 7.1,
8.1 and C.1 all relate scoped operations to plain union, intersection
and difference -- so the kernel provides them as free functions (the
operator forms live on :class:`~repro.xst.xset.XSet` itself) together
with the second-order operations a set-theory library is expected to
carry: generalized union/intersection, powerset, separation and
replacement.

All operations act on the full ``(element, scope)`` pair structure:
``union(A, B)`` contains ``x`` under scope ``s`` exactly when one of
its operands does.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Callable, Iterable, Iterator

from repro.xst.xset import EMPTY, XSet

__all__ = [
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "big_union",
    "big_intersection",
    "powerset",
    "select_pairs",
    "map_pairs",
    "disjoint",
]


def union(*sets: XSet) -> XSet:
    """Pairwise union of any number of extended sets."""
    if not sets:
        return EMPTY
    head, *rest = sets
    return head.union(*rest)


def intersection(*sets: XSet) -> XSet:
    """Pairwise intersection of one or more extended sets."""
    if not sets:
        raise ValueError("intersection() of no sets is undefined")
    head, *rest = sets
    return head.intersection(*rest)


def difference(left: XSet, right: XSet) -> XSet:
    """Pairs of ``left`` absent from ``right`` (the paper's ``~``)."""
    return left.difference(right)


def symmetric_difference(left: XSet, right: XSet) -> XSet:
    return left.symmetric_difference(right)


def big_union(family: XSet) -> XSet:
    """Union of every *element* of ``family`` that is itself a set.

    Atom elements contribute nothing; scopes on the family's own
    memberships are ignored, matching the classical reading of the
    union axiom lifted to XST.
    """
    pairs = []
    for element, _ in family.pairs():
        if isinstance(element, XSet):
            pairs.extend(element.pairs())
    return XSet(pairs)


def big_intersection(family: XSet) -> XSet:
    """Intersection of every XSet element of a non-empty family."""
    members = [element for element, _ in family.pairs() if isinstance(element, XSet)]
    if not members:
        raise ValueError("big_intersection() needs at least one set element")
    return intersection(*members)


def powerset(xs: XSet) -> XSet:
    """The classical set of all pair-subsets of ``xs``.

    The result holds each subset as a member under the empty scope.
    Exponential in ``len(xs)``; guarded for accidental misuse on large
    inputs.
    """
    pairs = xs.pairs()
    if len(pairs) > 16:
        raise ValueError(
            "powerset of a set with %d memberships (> 2**16 subsets) refused;"
            " enumerate lazily with iter_subsets() instead" % len(pairs)
        )
    subsets = []
    for size in range(len(pairs) + 1):
        for combo in combinations(pairs, size):
            subsets.append((XSet(combo), EMPTY))
    return XSet(subsets)


def iter_subsets(xs: XSet) -> Iterator[XSet]:
    """Lazily enumerate every pair-subset of ``xs``."""
    pairs = xs.pairs()
    for size in range(len(pairs) + 1):
        for combo in combinations(pairs, size):
            yield XSet(combo)


def select_pairs(xs: XSet, predicate: Callable[[Any, Any], bool]) -> XSet:
    """Separation: the sub-XSet of pairs satisfying ``predicate(e, s)``."""
    return XSet(pair for pair in xs.pairs() if predicate(*pair))


def map_pairs(xs: XSet, transform: Callable[[Any, Any], Iterable]) -> XSet:
    """Replacement: rebuild from ``transform(element, scope)`` pair streams.

    ``transform`` returns an iterable of ``(element, scope)`` pairs for
    each input pair, allowing one membership to become zero, one or
    many memberships.
    """
    out = []
    for element, scope in xs.pairs():
        out.extend(transform(element, scope))
    return XSet(out)


def disjoint(left: XSet, right: XSet) -> bool:
    """True when the two sets share no membership pair."""
    return not (left & right)
