"""Tuples as flat scoped sets: Defs 9.1 / 9.2 and the Def 7.2 pair.

Classical set theory encodes n-tuples as nested pairs, which Skolem
(the paper's reference [5]) observed behave badly as operands.  XST
instead makes an n-tuple a *flat* set whose scopes are the positions::

    tup(x) = n  <=>  x = {x1^1, x2^2, ..., xn^n}          (Def 9.1)

Concatenation (Def 9.2) renumbers the right operand past the left's
length, so ``tup(x . y) = tup(x) + tup(y)``.  The ordered pair of
Def 7.2 is just the 2-tuple.

The shape predicates themselves (``is_tuple`` / ``tuple_length`` /
``as_tuple``) live on :class:`~repro.xst.xset.XSet`; this module adds
the operations.
"""

from __future__ import annotations

from typing import Any

from repro.errors import NotATupleError
from repro.xst.builders import xpair, xtuple
from repro.xst.xset import XSet

__all__ = [
    "tup",
    "concat",
    "shift_positions",
    "ordered_pair",
    "tuple_slice",
    "reverse_tuple",
]


def tup(x: Any) -> int:
    """Def 9.1's ``tup``: the arity of an n-tuple.

    Raises :class:`NotATupleError` for atoms and non-tuple sets; the
    empty set is the 0-tuple.
    """
    if not isinstance(x, XSet):
        raise NotATupleError("%r is an atom, not an n-tuple" % (x,))
    n = x.tuple_length()
    if n is None:
        raise NotATupleError("%r is not an n-tuple (Def 9.1)" % (x,))
    return n


def shift_positions(x: XSet, offset: int) -> XSet:
    """Re-number a tuple's positions by ``offset`` (used by concat)."""
    n = tup(x)
    del n
    return XSet((element, scope + offset) for element, scope in x.pairs())


def concat(x: XSet, y: XSet) -> XSet:
    """Def 9.2: tuple concatenation ``x . y``.

    ``concat(<a,b>, <w,x>) == <a,b,w,x>`` and arities add.
    """
    n = tup(x)
    return x.union(shift_positions(y, n))


def ordered_pair(first: Any, second: Any) -> XSet:
    """Def 7.2: ``<x, y> = {x^1, y^2}`` (alias of the builder)."""
    return xpair(first, second)


def tuple_slice(x: XSet, start: int, stop: int) -> XSet:
    """The tuple of positions ``start..stop-1`` (1-based), renumbered."""
    items = tup(x)
    if not (1 <= start <= stop <= items + 1):
        raise NotATupleError(
            "slice [%d:%d) out of range for a %d-tuple" % (start, stop, items)
        )
    return xtuple(x.as_tuple()[start - 1 : stop - 1])


def reverse_tuple(x: XSet) -> XSet:
    """The tuple with positions reversed: ``<a,b,c>`` -> ``<c,b,a>``."""
    tup(x)
    return xtuple(tuple(reversed(x.as_tuple())))
