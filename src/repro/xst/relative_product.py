"""Relative product: Def 10.1, the join engine of XST.

The relative product generalizes CST's bland compose-two-relations
operation into a parameterized join.  Four scope specifications steer
it -- ``sigma = <sigma1, sigma2>`` for the left operand and
``omega = <omega1, omega2>`` for the right::

    F /_{<sigma1,sigma2>}^{<omega1,omega2>} G =
      { z^tau : exists x, s, y, t (
            x in_s F  and  y in_t G
            and x^{/sigma2/} = y^{/omega1/}        -- join condition
            and s^{/sigma2/} = t^{/omega1/}        -- on scopes too
            and z   = x^{/sigma1/} union y^{/omega2/}
            and tau = s^{/sigma1/} union t^{/omega2/} ) }

``sigma2`` extracts the left join key, ``omega1`` the right join key;
``sigma1`` and ``omega2`` say which re-scoped parts of the joined
members survive into the result.  The paper's section 10 lists eight
sigma/omega parameterizations producing eight differently-shaped
results from the same operands; all eight are exercised by the test
suite and the classical ``{<a,b>} / {<b,c>} = {<a,c>}`` is case 1.

Implementation: a hash join.  Right members are bucketed by their
``(y^{/omega1/}, t^{/omega1/})`` key, then each left member probes with
``(x^{/sigma2/}, s^{/sigma2/})``.  Cost is O(|F| + |G| + matches)
against the definition's literal O(|F| * |G|); the benchmark suite
compares both (``benchmarks/bench_join.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.gov.governor import active as _gov_active
from repro.obs.instrument import kernel_op
from repro.xst.rescope import rescope_value_by_scope
from repro.xst.xset import XSet

__all__ = ["relative_product", "relative_product_nested_loop", "cst_relative_product"]

SigmaPair = Tuple[XSet, XSet]

#: Cancellation-checkpoint stride for join output loops (power of two).
_CHECK_EVERY = 1024


def _split(spec) -> SigmaPair:
    if hasattr(spec, "sigma1") and hasattr(spec, "sigma2"):
        return spec.sigma1, spec.sigma2
    first, second = spec
    return first, second


@kernel_op("relative_product")
def relative_product(f: XSet, g: XSet, sigma: SigmaPair, omega: SigmaPair) -> XSet:
    """Def 10.1 via hash join (output identical to the nested loop)."""
    sigma1, sigma2 = _split(sigma)
    omega1, omega2 = _split(omega)
    buckets: Dict[Tuple[XSet, XSet], List[Tuple[XSet, XSet]]] = {}
    for y, t in g.pairs():
        key = (
            rescope_value_by_scope(y, omega1),
            rescope_value_by_scope(t, omega1),
        )
        kept = (
            rescope_value_by_scope(y, omega2),
            rescope_value_by_scope(t, omega2),
        )
        buckets.setdefault(key, []).append(kept)
    gov = _gov_active()
    charged = 0
    pairs = []
    for x, s in f.pairs():
        key = (
            rescope_value_by_scope(x, sigma2),
            rescope_value_by_scope(s, sigma2),
        )
        matches = buckets.get(key)
        if not matches:
            continue
        x_part = rescope_value_by_scope(x, sigma1)
        s_part = rescope_value_by_scope(s, sigma1)
        for y_part, t_part in matches:
            pairs.append((x_part.union(y_part), s_part.union(t_part)))
            if gov is not None and not (len(pairs) & (_CHECK_EVERY - 1)):
                gov.checkpoint("xst.relative_product", len(pairs) - charged)
                charged = len(pairs)
    if gov is not None:
        gov.checkpoint("xst.relative_product", len(pairs) - charged)
    return XSet(pairs)


@kernel_op("relative_product_nested_loop")
def relative_product_nested_loop(
    f: XSet, g: XSet, sigma: SigmaPair, omega: SigmaPair
) -> XSet:
    """Def 10.1 transliterated: the O(|F| * |G|) comparison loop.

    Kept as the executable specification the hash join is validated
    against (property tests assert both agree on random inputs) and as
    the baseline for the join benchmarks.
    """
    sigma1, sigma2 = _split(sigma)
    omega1, omega2 = _split(omega)
    pairs = []
    for x, s in f.pairs():
        x_key = rescope_value_by_scope(x, sigma2)
        s_key = rescope_value_by_scope(s, sigma2)
        for y, t in g.pairs():
            if rescope_value_by_scope(y, omega1) != x_key:
                continue
            if rescope_value_by_scope(t, omega1) != s_key:
                continue
            z = rescope_value_by_scope(x, sigma1).union(
                rescope_value_by_scope(y, omega2)
            )
            tau = rescope_value_by_scope(s, sigma1).union(
                rescope_value_by_scope(t, omega2)
            )
            pairs.append((z, tau))
    return XSet(pairs)


#: sigma/omega for the classical relative product over pair relations:
#: match left position 2 against right position 1, keep left 1 / right 2.
_CST_SIGMA = (XSet([(1, 1)]), XSet([(2, 1)]))
_CST_OMEGA = (XSet([(1, 1)]), XSet([(2, 2)]))


def cst_relative_product(f: XSet, g: XSet) -> XSet:
    """CST relative product: ``{<a,b>} / {<b,c>} = {<a,c>}``."""
    return relative_product(f, g, _CST_SIGMA, _CST_OMEGA)
