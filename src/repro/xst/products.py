"""Products and tagging: Defs 9.3 - 9.7.

The XST cross product concatenates tuple members *and* tuple scopes::

    A (x) B = { (x . y)^(s . t) : x in_s A  and  y in_t B }   (Def 9.3)

Because concatenation is associative up to renumbering, the cross
product is associative outright (Theorem 9.4) -- unlike the classical
Cartesian product, for which ``A x (B x C) != (A x B) x C``.

Tagging (Defs 9.5/9.6) pushes a mark into both the element and its
scope::

    A^(a) = { {x^a}^{s^a} : x in_s A }    for s != {}
    A^(a) = { {x^a}       : x in_s A }    for s  = {}

and the classical Cartesian product is recovered as
``A x B = A^(1) (x) B^(2)`` (Def 9.7).  Reading the ``.`` in that
expansion over tagged singletons as scope-disjoint union -- which is
what concatenation does once positions are distinct -- gives the
familiar ``{ <a, b> : a in A, b in B }``, and that is how
:func:`cartesian` computes it.
"""

from __future__ import annotations

from typing import Any

from repro.errors import NotATupleError
from repro.gov.governor import active as _gov_active
from repro.xst.tuples import concat, tup
from repro.xst.xset import EMPTY, XSet

__all__ = ["cross", "tag", "cartesian", "nfold_cartesian"]

#: Cancellation-checkpoint stride for product inner loops: a power of
#: two so the in-loop test is a mask, chosen so a governed runaway
#: product dies within ~1k materialized pairs of its deadline.
_CHECK_EVERY = 1024


def _concat_scopes(s: Any, t: Any) -> Any:
    """Concatenate member scopes, which are tuples when not empty."""
    s_set = s if isinstance(s, XSet) else None
    t_set = t if isinstance(t, XSet) else None
    if s_set is None or t_set is None:
        raise NotATupleError(
            "cross product needs tuple-shaped member scopes; got %r and %r"
            % (s, t)
        )
    return concat(s_set, t_set)


def cross(a: XSet, b: XSet) -> XSet:
    """Def 9.3: the XST cross product ``A (x) B``.

    Every member of both operands must be an n-tuple, and every member
    scope must be an n-tuple as well (the empty scope is the 0-tuple).
    """
    gov = _gov_active()
    charged = 0
    pairs = []
    for x, s in a.pairs():
        if not isinstance(x, XSet):
            raise NotATupleError("cross product member %r is not a tuple" % (x,))
        tup(x)
        for y, t in b.pairs():
            if not isinstance(y, XSet):
                raise NotATupleError(
                    "cross product member %r is not a tuple" % (y,)
                )
            tup(y)
            pairs.append((concat(x, y), _concat_scopes(s, t)))
            if gov is not None and not (len(pairs) & (_CHECK_EVERY - 1)):
                gov.checkpoint("xst.cross", len(pairs) - charged)
                charged = len(pairs)
        if gov is not None:
            gov.checkpoint("xst.cross", len(pairs) - charged)
            charged = len(pairs)
    return XSet(pairs)


def tag(a: XSet, mark: Any) -> XSet:
    """Defs 9.5/9.6: ``A^(mark)``, tagging members and their scopes."""
    pairs = []
    for x, s in a.pairs():
        tagged_element = XSet([(x, mark)])
        if isinstance(s, XSet) and s.is_empty:
            pairs.append((tagged_element, EMPTY))
        else:
            pairs.append((tagged_element, XSet([(s, mark)])))
    return XSet(pairs)


def cartesian(a: XSet, b: XSet) -> XSet:
    """Def 9.7: the classical Cartesian product ``A x B`` as pairs.

    ``cartesian({a, b}, {x})`` is ``{<a,x>, <b,x>}``.  Computed by
    lifting each member into a 1-tuple and concatenating, which
    coincides with the Def 9.7 expansion ``A^(1) (x) B^(2)`` once the
    tag marks are read as positions.
    """
    gov = _gov_active()
    charged = 0
    pairs = []
    for x, s in a.pairs():
        left = XSet([(x, 1)])
        left_scope = s if isinstance(s, XSet) and s.is_empty else XSet([(s, 1)])
        for y, t in b.pairs():
            element = left.union(XSet([(y, 2)]))
            if left_scope.is_empty and isinstance(t, XSet) and t.is_empty:
                scope: Any = EMPTY
            else:
                right_scope = (
                    t if isinstance(t, XSet) and t.is_empty else XSet([(t, 2)])
                )
                scope = left_scope.union(right_scope)
            pairs.append((element, scope))
            if gov is not None and not (len(pairs) & (_CHECK_EVERY - 1)):
                gov.checkpoint("xst.cartesian", len(pairs) - charged)
                charged = len(pairs)
        if gov is not None:
            gov.checkpoint("xst.cartesian", len(pairs) - charged)
            charged = len(pairs)
    return XSet(pairs)


def nfold_cartesian(*sets: XSet) -> XSet:
    """``A1 x A2 x ... x An`` flattened to n-tuples (not nested pairs).

    The XST tuple model makes the n-fold product associative, so a
    single flat operation is well-defined; this is the working shape
    for relations of arity n.
    """
    if not sets:
        return EMPTY
    result = None
    for current in sets:
        lifted = []
        for x, s in current.pairs():
            if not (isinstance(s, XSet) and s.is_empty):
                raise NotATupleError(
                    "nfold_cartesian expects classical operands; member %r "
                    "has scope %r" % (x, s)
                )
            lifted.append((XSet([(x, 1)]), EMPTY))
        lifted_set = XSet(lifted)
        result = lifted_set if result is None else cross(result, lifted_set)
    return result if result is not None else EMPTY
