"""Value extraction: Defs 9.8 / 9.9 and the Theorem 9.10 bridge.

XST functions take sets to sets; classical functions take elements to
elements.  The Value operations mediate: given a result set whose
members are 1-tuples, they extract *the* underlying element::

    V_sigma(x) = b  <=>  forall y ( <y> in_<sigma> x  ->  y = b )  (Def 9.8)
    V(x)       = b  <=>  forall y ( <y> in x          ->  y = b )  (Def 9.9)

Def 9.8 consults only members held at scope ``<sigma>`` (a 1-tuple of
the given mark), which is how the paper's Example 9.1 reads the four
square roots of 16 out of one extended set.  Def 9.9 consults classical
members.

Read literally, the definitions leave ``V`` unconstrained when *no*
member matches (the implication is vacuous); we raise
:class:`~repro.errors.AmbiguousValueError` for both the no-candidate
and the many-candidate case, which is the only safe executable reading.

Theorem 9.10 -- every CST element function is representable -- is
provided as :func:`classical_call`:  for a relation of pairs ``f`` and
``sigma = <<1>, <2>>``, ``f(x) = V( f_(sigma)({<x>}) )``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import AmbiguousValueError
from repro.xst.builders import xset, xtuple
from repro.xst.image import image
from repro.xst.xset import XSet

__all__ = ["sigma_value", "value", "classical_call"]


def _unique(candidates: list, context: str) -> Any:
    distinct = []
    for candidate in candidates:
        if candidate not in distinct:
            distinct.append(candidate)
    if not distinct:
        raise AmbiguousValueError("no %s-candidate value present" % context)
    if len(distinct) > 1:
        raise AmbiguousValueError(
            "%d distinct %s-candidate values present: %r"
            % (len(distinct), context, distinct)
        )
    return distinct[0]


def sigma_value(x: XSet, mark: Any) -> Any:
    """Def 9.8: ``V_sigma(x)`` -- the element of the ``<mark>``-scoped 1-tuple."""
    wanted_scope = xtuple([mark])
    candidates = [
        member.as_tuple()[0]
        for member, scope in x.pairs()
        if scope == wanted_scope
        and isinstance(member, XSet)
        and member.tuple_length() == 1
    ]
    return _unique(candidates, "scope %r" % (mark,))


def value(x: XSet) -> Any:
    """Def 9.9: ``V(x)`` -- the element of the unique classical 1-tuple."""
    candidates = [
        member.as_tuple()[0]
        for member, scope in x.pairs()
        if isinstance(scope, XSet)
        and scope.is_empty
        and isinstance(member, XSet)
        and member.tuple_length() == 1
    ]
    return _unique(candidates, "classical")


def classical_call(f: XSet, argument: Any) -> Any:
    """Theorem 9.10: evaluate a relation-of-pairs as an element function.

    ``classical_call({<1,10>, <2,20>}, 2) == 20``.  Raises
    :class:`AmbiguousValueError` if the argument is absent from the
    function's domain or maps to several values.
    """
    sigma = (XSet([(1, 1)]), XSet([(2, 1)]))
    result = image(f, xset([xtuple([argument])]), sigma)
    return value(result)
