"""Canonical total ordering over heterogeneous XST values.

Extended sets may contain atoms of unrelated Python types alongside
nested extended sets, and Python refuses to compare such values
directly (``3 < "a"`` raises ``TypeError``).  The kernel nevertheless
needs *one* deterministic order so that every :class:`~repro.xst.xset.XSet`
has a single canonical pair sequence.  Canonical order buys us:

* structural equality and hashing that are independent of insertion
  order,
* a stable, reproducible ``repr`` (important for doctests and for
  diffing benchmark output),
* deterministic iteration, which keeps every algorithm in the library
  reproducible run-to-run.

The order sorts first by a small *rank* assigned to each value family
and then by a payload that is guaranteed comparable within the rank.
The ordering is consistent with equality for the values the library
admits: equal values produce equal keys (e.g. ``1`` and ``1.0`` or
``True``), and unequal values of the same rank produce distinct,
comparable payloads.
"""

from __future__ import annotations

import zlib
from typing import Any, Tuple

#: Rank constants; lower ranks sort first.
_RANK_NONE = 0
_RANK_NUMBER = 1
_RANK_STRING = 2
_RANK_BYTES = 3
_RANK_OTHER = 4
_RANK_XSET = 5


def canonical_key(value: Any) -> Tuple:
    """Return a sort key giving a total order over admissible values.

    The key is a tuple ``(rank, payload)``.  Payloads are constructed so
    that any two values of equal rank have comparable payloads, and so
    that ``a == b`` implies ``canonical_key(a) == canonical_key(b)``.

    ``XSet`` instances are ordered structurally: first by cardinality,
    then lexicographically by the canonical keys of their (element,
    scope) pairs.  This makes the order well-founded on the nesting
    depth of the set.
    """
    # Imported lazily to avoid a circular import at module load time;
    # the attribute lookup is cached by the interpreter after first use.
    from repro.xst.xset import XSet

    if value is None:
        return (_RANK_NONE, 0)
    if isinstance(value, bool):
        # bool is a subclass of int; fold into the number rank so that
        # True == 1 keeps a key equal to canonical_key(1).
        return (_RANK_NUMBER, float(value))
    if isinstance(value, (int, float)):
        return (_RANK_NUMBER, float(value))
    if isinstance(value, complex):
        return (_RANK_NUMBER + 0.5, (value.real, value.imag))
    if isinstance(value, str):
        return (_RANK_STRING, value)
    if isinstance(value, bytes):
        return (_RANK_BYTES, value)
    if isinstance(value, XSet):
        pair_keys = tuple(
            (canonical_key(element), canonical_key(scope))
            for element, scope in value.pairs()
        )
        return (_RANK_XSET, len(pair_keys), pair_keys)
    # Any other hashable atom: order by type name, then by repr.  repr
    # ties are acceptable because such atoms are opaque to the kernel.
    return (_RANK_OTHER, type(value).__name__, repr(value))


def pair_key(pair: Tuple[Any, Any]) -> Tuple:
    """Sort key for an ``(element, scope)`` pair: element, then scope."""
    element, scope = pair
    return (canonical_key(element), canonical_key(scope))


#: Hash range of :func:`canonical_hash`: 32 bits, so hashes map onto
#: the unit interval as ``h / _HASH_SPACE`` for KMV distinct-value
#: estimation.
_HASH_SPACE = 1 << 32


def canonical_hash(value: Any) -> int:
    """A deterministic 32-bit hash of a value's canonical key.

    Python's built-in ``hash`` is salted per process for strings, so
    anything derived from it changes run to run.  Statistics sketches
    (the KMV distinct-value estimator in
    :mod:`repro.relational.stats`) need hashes that are identical
    across runs and machines; this one is CRC32 over the repr of
    :func:`canonical_key`, which is itself canonical: equal values
    have equal keys, so equal values hash equally regardless of type
    spelling (``1`` vs ``1.0`` vs ``True``).
    """
    return zlib.crc32(repr(canonical_key(value)).encode("utf-8"))
