"""The extended set: scoped membership made concrete.

An *extended set* (Blass & Childs' XST; Childs, VLDB 1977) generalizes
the classical set by attaching a **scope** to every membership: instead
of the single predicate ``x in A``, XST has the family ``x in_s A`` ("x
is a member of A under scope s").  Everything else in the library --
tuples, records, relations, images, processes -- is a pattern of scoped
memberships:

* classical membership is membership under the empty scope:
  ``x in A  ==  x in_() A`` where ``()`` denotes the empty extended set;
* the ordered pair of Def 7.2 is ``<x, y> = {x^1, y^2}``;
* an n-tuple (Def 9.1) is ``{x1^1, ..., xn^n}``;
* a relational row is ``{v1^'col1', ..., vk^'colk'}``.

:class:`XSet` realizes this as an immutable, hashable collection of
``(element, scope)`` pairs, where elements and scopes are either
*atoms* (hashable, non-``XSet`` Python values) or nested ``XSet``
instances.  Pairs are stored deduplicated and in the canonical order of
:mod:`repro.xst.ordering`, so equality, hashing, iteration and ``repr``
are all structural and deterministic.

Only data lives in extended sets.  A :class:`~repro.core.process.Process`
is *behavior*, not substance ("processes do not exist in any formal set
theory and thus can not be contained in sets" -- paper, section 2), and
the constructor rejects any attempt to place one inside an ``XSet``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import InvalidAtomError, NotATupleError
from repro.xst.ordering import canonical_key, pair_key

__all__ = ["XSet", "EMPTY", "Pair"]

#: An ``(element, scope)`` membership pair.
Pair = Tuple[Any, Any]

#: Sentinel distinguishing "scope omitted" from the legal scope None.
_UNSET = object()


def _check_admissible(value: Any, role: str) -> None:
    """Reject values that cannot live inside an extended set.

    Atoms must be hashable (the kernel indexes memberships by value)
    and must not be process objects, which the theory keeps outside of
    sets.  ``XSet`` instances are always admissible.
    """
    if isinstance(value, XSet):
        return
    if hasattr(value, "__xst_process__"):
        raise InvalidAtomError(
            "processes are behaviors, not sets; they cannot be %s of an "
            "extended set (paper, section 2)" % role
        )
    try:
        hash(value)
    except TypeError as exc:
        raise InvalidAtomError(
            "%r is not hashable and cannot be used as an XSet %s; convert "
            "it with repro.xst.builders.from_python first" % (value, role)
        ) from exc


class XSet:
    """An immutable extended set of ``(element, scope)`` pairs.

    Instances are created from any iterable of pairs; duplicates are
    removed and the remainder is stored in canonical order::

        >>> a = XSet([("x", 1), ("y", 2)])
        >>> a == XSet([("y", 2), ("x", 1), ("x", 1)])
        True

    The empty extended set is importable as :data:`EMPTY` and doubles
    as the *default scope*: ``A.contains(x)`` asks for classical
    membership ``x in_EMPTY A``.
    """

    __slots__ = ("_pairs", "_pair_set", "_by_element", "_by_scope", "_hash")

    _pairs: Tuple[Pair, ...]
    _pair_set: frozenset
    _by_element: Dict[Any, Tuple[Any, ...]]
    _by_scope: Dict[Any, Tuple[Any, ...]]
    _hash: int

    def __init__(self, pairs: Iterable[Pair] = ()):
        seen = {}
        for item in pairs:
            try:
                element, scope = item
            except (TypeError, ValueError) as exc:
                raise InvalidAtomError(
                    "XSet expects (element, scope) pairs; got %r. Use "
                    "repro.xst.builders for classical sets, tuples and "
                    "records." % (item,)
                ) from exc
            _check_admissible(element, "an element")
            _check_admissible(scope, "a scope")
            seen[(element, scope)] = None
        ordered = tuple(sorted(seen, key=pair_key))
        by_element: Dict[Any, list] = {}
        by_scope: Dict[Any, list] = {}
        for element, scope in ordered:
            by_element.setdefault(element, []).append(scope)
            by_scope.setdefault(scope, []).append(element)
        object.__setattr__(self, "_pairs", ordered)
        object.__setattr__(self, "_pair_set", frozenset(ordered))
        object.__setattr__(
            self, "_by_element", {k: tuple(v) for k, v in by_element.items()}
        )
        object.__setattr__(
            self, "_by_scope", {k: tuple(v) for k, v in by_scope.items()}
        )
        object.__setattr__(self, "_hash", hash(("repro.XSet", ordered)))

    # ------------------------------------------------------------------
    # Immutability & identity
    # ------------------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("XSet instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("XSet instances are immutable")

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, XSet):
            return NotImplemented
        return self._pair_set == other._pair_set

    def __ne__(self, other: Any) -> bool:
        if not isinstance(other, XSet):
            return NotImplemented
        return self._pair_set != other._pair_set

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def pairs(self) -> Tuple[Pair, ...]:
        """All ``(element, scope)`` pairs in canonical order."""
        return self._pairs

    def elements(self) -> Tuple[Any, ...]:
        """Distinct elements, in canonical order, ignoring scopes."""
        return tuple(sorted(self._by_element, key=canonical_key))

    def scopes(self) -> Tuple[Any, ...]:
        """Distinct scopes in use, in canonical order."""
        return tuple(sorted(self._by_scope, key=canonical_key))

    def scopes_of(self, element: Any) -> Tuple[Any, ...]:
        """Every scope ``s`` with ``element in_s self`` (may be empty)."""
        return self._by_element.get(element, ())

    def elements_at(self, scope: Any) -> Tuple[Any, ...]:
        """Every element ``x`` with ``x in_scope self`` (may be empty)."""
        return self._by_scope.get(scope, ())

    def contains(self, element: Any, scope: Any = _UNSET) -> bool:
        """Scoped membership test ``element in_scope self``.

        With ``scope`` omitted this is classical membership, i.e.
        membership under the empty scope :data:`EMPTY`.  (``None`` is a
        legitimate scope atom, so omission is detected by a sentinel,
        not by ``None``.)
        """
        if scope is _UNSET:
            scope = EMPTY
        return (element, scope) in self._pair_set

    def __contains__(self, element: Any) -> bool:
        """True if ``element`` is a member under *any* scope.

        This loose reading is the convenient one for ``in`` checks; use
        :meth:`contains` for an exact scoped membership test.
        """
        return element in self._by_element

    def __len__(self) -> int:
        """Number of membership pairs (an element counts once per scope)."""
        return len(self._pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    @property
    def is_empty(self) -> bool:
        return not self._pairs

    def is_classical(self) -> bool:
        """True if every membership uses the empty scope (a plain set)."""
        return all(scope == EMPTY for _, scope in self._pairs)

    # ------------------------------------------------------------------
    # Classical algebra (lifted to scoped pairs)
    # ------------------------------------------------------------------

    def union(self, *others: "XSet") -> "XSet":
        pairs = list(self._pairs)
        for other in others:
            pairs.extend(other._pairs)
        return XSet(pairs)

    def intersection(self, *others: "XSet") -> "XSet":
        common = self._pair_set
        for other in others:
            common = common & other._pair_set
        return XSet(common)

    def difference(self, other: "XSet") -> "XSet":
        return XSet(self._pair_set - other._pair_set)

    def symmetric_difference(self, other: "XSet") -> "XSet":
        return XSet(self._pair_set ^ other._pair_set)

    def __or__(self, other: "XSet") -> "XSet":
        if not isinstance(other, XSet):
            return NotImplemented
        return self.union(other)

    def __and__(self, other: "XSet") -> "XSet":
        if not isinstance(other, XSet):
            return NotImplemented
        return self.intersection(other)

    def __sub__(self, other: "XSet") -> "XSet":
        if not isinstance(other, XSet):
            return NotImplemented
        return self.difference(other)

    def __xor__(self, other: "XSet") -> "XSet":
        if not isinstance(other, XSet):
            return NotImplemented
        return self.symmetric_difference(other)

    def issubset(self, other: "XSet") -> bool:
        return self._pair_set <= other._pair_set

    def issuperset(self, other: "XSet") -> bool:
        return self._pair_set >= other._pair_set

    def is_nonempty_subset(self, other: "XSet") -> bool:
        """The paper's footnoted reading of its subset symbol.

        Definitions 2.1 and 5.1 note that their subset sign means
        *non-empty* subset; this predicate is that reading.
        """
        return bool(self._pairs) and self._pair_set <= other._pair_set

    def __le__(self, other: "XSet") -> bool:
        if not isinstance(other, XSet):
            return NotImplemented
        return self.issubset(other)

    def __lt__(self, other: "XSet") -> bool:
        if not isinstance(other, XSet):
            return NotImplemented
        return self._pair_set < other._pair_set

    def __ge__(self, other: "XSet") -> bool:
        if not isinstance(other, XSet):
            return NotImplemented
        return self.issuperset(other)

    def __gt__(self, other: "XSet") -> bool:
        if not isinstance(other, XSet):
            return NotImplemented
        return self._pair_set > other._pair_set

    # ------------------------------------------------------------------
    # Tuple shape (Def 9.1) and record shape
    # ------------------------------------------------------------------

    def tuple_length(self) -> Optional[int]:
        """``n`` if this set is an n-tuple per Def 9.1, else ``None``.

        A set is an n-tuple when its scopes are exactly the integers
        ``1..n`` with a single element at each.  The empty set is the
        0-tuple.
        """
        n = len(self._pairs)
        if n == 0:
            return 0
        if len(self._by_scope) != n:
            return None
        for scope in self._by_scope:
            if isinstance(scope, bool) or not isinstance(scope, int):
                return None
            if not 1 <= scope <= n:
                return None
        return n

    def is_tuple(self) -> bool:
        """True when :meth:`tuple_length` succeeds (Def 9.1)."""
        return self.tuple_length() is not None

    def as_tuple(self) -> Tuple[Any, ...]:
        """Elements in scope order ``1..n``; raises if not a tuple."""
        n = self.tuple_length()
        if n is None:
            raise NotATupleError(
                "%r is not an n-tuple: scopes must be exactly 1..n with one "
                "element each (Def 9.1)" % (self,)
            )
        return tuple(self._by_scope[i][0] for i in range(1, n + 1))

    def is_record(self) -> bool:
        """True if scopes are distinct strings with one element each."""
        if not self._pairs:
            return False
        if len(self._by_scope) != len(self._pairs):
            return False
        return all(isinstance(scope, str) for scope in self._by_scope)

    def as_record(self) -> Mapping[str, Any]:
        """Mapping view ``{scope: element}`` for record-shaped sets."""
        if not self.is_record():
            raise NotATupleError(
                "%r is not record-shaped: scopes must be distinct strings "
                "with one element each" % (self,)
            )
        return {scope: elems[0] for scope, elems in self._by_scope.items()}

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    def to_python(self) -> Any:
        """Best-effort conversion back to builtin Python values.

        Tuples become ``tuple``; classical sets become ``frozenset``;
        anything else becomes a ``frozenset`` of ``(element, scope)``
        pairs.  Nested extended sets are converted recursively.
        """

        def convert(value: Any) -> Any:
            return value.to_python() if isinstance(value, XSet) else value

        n = self.tuple_length()
        if n is not None and n > 0:
            return tuple(convert(x) for x in self.as_tuple())
        if self.is_classical():
            return frozenset(convert(x) for x, _ in self._pairs)
        return frozenset(
            (convert(element), convert(scope)) for element, scope in self._pairs
        )

    # ------------------------------------------------------------------
    # Rendering (paper notation; see repro.notation for the parser)
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return render(self)


def _render_value(value: Any) -> str:
    if isinstance(value, XSet):
        return render(value)
    if isinstance(value, str):
        return value if value.isidentifier() else repr(value)
    return repr(value)


def render(xset: XSet) -> str:
    """Render in the paper's notation.

    Tuples print as ``<a, b>``; classical memberships omit the scope
    mark; scoped memberships print as ``element^scope``.
    """
    if xset.is_empty:
        return "{}"
    if xset.is_tuple():
        return "<%s>" % ", ".join(_render_value(x) for x in xset.as_tuple())
    parts = []
    for element, scope in xset.pairs():
        if isinstance(scope, XSet) and scope.is_empty:
            parts.append(_render_value(element))
        else:
            parts.append("%s^%s" % (_render_value(element), _render_value(scope)))
    return "{%s}" % ", ".join(parts)


#: The empty extended set; also the *default scope* giving classical
#: membership (``x in A`` is ``x in_EMPTY A``).
EMPTY = XSet()
