"""Serialization of extended sets: canonical bytes, stable digests.

A backend information system has to put its sets on disk and ship
them between nodes.  This module gives every admissible XST value a
canonical byte encoding with three properties the rest of the library
leans on:

* **lossless** -- ``loads(dumps(v)) == v`` for every value built from
  admissible atoms (None, bool, int, float, complex, str, bytes) and
  nested :class:`~repro.xst.xset.XSet`;
* **canonical** -- equal values encode to identical bytes (pairs are
  emitted in the kernel's canonical order), so ``digest`` is a usable
  content address;
* **self-delimiting** -- streams of values concatenate, which the
  page-based store (:mod:`repro.relational.disk`) relies on.

One caveat inherited from Python equality: ``1``, ``1.0`` and ``True``
are equal as set members (an XSet keeps whichever arrived first) but
encode with their own types, so two XSets that compare equal while
holding differently-typed numeric twins can produce different digests.
Sets built from consistently-typed data -- every relation in this
library -- are unaffected.

Format (one byte tag + payload):

====  =======================================================
tag   payload
====  =======================================================
``N``  None
``T``  True  /  ``F``  False
``I``  signed int: 8-byte big-endian length + decimal ASCII
``D``  float: 8-byte IEEE-754 big-endian
``C``  complex: two 8-byte IEEE-754 doubles
``S``  str: u32 byte length + UTF-8 bytes
``B``  bytes: u32 length + raw bytes
``X``  XSet: u32 pair count + (element, scope) encodings
====  =======================================================
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Iterator

from repro.errors import InvalidAtomError
from repro.xst.xset import XSet

__all__ = ["dumps", "loads", "digest", "dump_stream", "load_stream"]

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        text = b"%d" % value
        out += b"I"
        out += _U32.pack(len(text))
        out += text
    elif isinstance(value, float):
        out += b"D"
        out += _F64.pack(value)
    elif isinstance(value, complex):
        out += b"C"
        out += _F64.pack(value.real)
        out += _F64.pack(value.imag)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"S"
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out += b"B"
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, XSet):
        pairs = value.pairs()
        out += b"X"
        out += _U32.pack(len(pairs))
        for element, scope in pairs:
            _encode(element, out)
            _encode(scope, out)
    else:
        raise InvalidAtomError(
            "cannot serialize %r: admissible atoms are None, bool, int, "
            "float, complex, str, bytes and nested XSets" % (value,)
        )


def dumps(value: Any) -> bytes:
    """Canonical byte encoding of one admissible value."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


class _Reader:
    __slots__ = ("_data", "position")

    def __init__(self, data: bytes, position: int = 0):
        self._data = data
        self.position = position

    def take(self, count: int) -> bytes:
        end = self.position + count
        if end > len(self._data):
            raise InvalidAtomError("truncated XST serialization")
        chunk = self._data[self.position : end]
        self.position = end
        return chunk

    def at_end(self) -> bool:
        return self.position >= len(self._data)


def _decode(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"I":
        (length,) = _U32.unpack(reader.take(4))
        return int(reader.take(length))
    if tag == b"D":
        (value,) = _F64.unpack(reader.take(8))
        return value
    if tag == b"C":
        (real,) = _F64.unpack(reader.take(8))
        (imag,) = _F64.unpack(reader.take(8))
        return complex(real, imag)
    if tag == b"S":
        (length,) = _U32.unpack(reader.take(4))
        return reader.take(length).decode("utf-8")
    if tag == b"B":
        (length,) = _U32.unpack(reader.take(4))
        return reader.take(length)
    if tag == b"X":
        (count,) = _U32.unpack(reader.take(4))
        pairs = []
        for _ in range(count):
            element = _decode(reader)
            scope = _decode(reader)
            pairs.append((element, scope))
        return XSet(pairs)
    raise InvalidAtomError("unknown serialization tag %r" % (tag,))


def loads(data: bytes) -> Any:
    """Decode one value; rejects trailing bytes."""
    reader = _Reader(data)
    value = _decode(reader)
    if not reader.at_end():
        raise InvalidAtomError(
            "trailing bytes after value (%d unread)"
            % (len(data) - reader.position)
        )
    return value


def digest(value: Any) -> str:
    """Stable content address: SHA-256 of the canonical encoding.

    Equal extended sets -- regardless of construction order -- share a
    digest, which is what makes set-level change detection and
    distributed shipping cheap.
    """
    return hashlib.sha256(dumps(value)).hexdigest()


def dump_stream(values) -> bytes:
    """Concatenate the encodings of many values (self-delimiting)."""
    out = bytearray()
    for value in values:
        _encode(value, out)
    return bytes(out)


def load_stream(data: bytes) -> Iterator[Any]:
    """Decode a concatenated stream back into its values, lazily."""
    reader = _Reader(data)
    while not reader.at_end():
        yield _decode(reader)
