"""The Image operation: Defs 3.10 / 7.1 (XST) and 3.1 / 3.6 (CST).

Image is the two-step composite the paper builds Application on::

    R[A]_{<sigma1, sigma2>} = D_{sigma2}( R |_{sigma1} A )

-- "the sigma2-Domain of the sigma1-Restriction": first keep the
members of ``R`` triggered by ``A`` (restriction), then extract their
sigma2 parts (domain).  With ``sigma = <<1>, <2>>`` over a set of
pairs this is the classical image ``R[A]`` of Def 3.1, modulo XST's
tuple-shaped answers (``{<x>}`` rather than ``{x}``).

The pair ``(sigma1, sigma2)`` travels together throughout the library;
:class:`repro.core.sigma.Sigma` is the structured carrier, and this
module accepts either a ``Sigma`` or a plain 2-tuple of extended sets.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.obs.instrument import kernel_op
from repro.xst.domain import sigma_domain
from repro.xst.restrict import sigma_restrict
from repro.xst.xset import XSet

__all__ = ["image", "cst_image"]

SigmaLike = Union[Tuple[XSet, XSet], "object"]


def _split_sigma(sigma: SigmaLike) -> Tuple[XSet, XSet]:
    """Accept a ``Sigma`` object or a plain ``(sigma1, sigma2)`` pair."""
    if hasattr(sigma, "sigma1") and hasattr(sigma, "sigma2"):
        return sigma.sigma1, sigma.sigma2
    sigma1, sigma2 = sigma
    return sigma1, sigma2


@kernel_op("image")
def image(r: XSet, a: XSet, sigma: SigmaLike) -> XSet:
    """Defs 3.10/7.1: ``R[A]_{<sigma1, sigma2>}``."""
    sigma1, sigma2 = _split_sigma(sigma)
    return sigma_domain(sigma_restrict(r, a, sigma1), sigma2)


def cst_image(r: XSet, a: XSet) -> XSet:
    """The classical image shape over a relation of pairs.

    ``cst_image({<a,x>, <b,y>, <c,x>}, {<a>, <c>}) == {<x>}`` -- the
    standard ``R[A]`` of Def 3.1 realized as
    ``R[A]_{<<1>, <2>>}`` (Def 3.6), with 1-tuple members.
    """
    return image(r, a, (XSet([(1, 1)]), XSet([(2, 1)])))
