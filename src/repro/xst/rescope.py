"""Re-scoping: the paper's Definitions 7.3 and 7.5.

Re-scoping is the primitive under everything interesting in XST.  A
*scope specification* sigma is itself an extended set read as a scope
mapping, and there are two directions:

**Re-scope by scope** (Def 7.3)::

    A^{/sigma/} = { x^w : exists s (x in_s A  and  s in_w sigma) }

``sigma`` maps *old scopes to new scopes*: each membership ``s in_w
sigma`` sends elements held at scope ``s`` in ``A`` to scope ``w`` in
the result.  Memberships of ``A`` whose scope does not occur as an
element of ``sigma`` are dropped.  Example (the paper's)::

    {a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} = {a^1, b^2, c^3}

**Re-scope by element** (Def 7.5)::

    A^{\\sigma\\} = { x^w : exists s (x in_s A  and  w in_s sigma) }

Here ``sigma`` is read the other way around: the *elements* of sigma
are the new scopes, held at the old scope they replace.  Example::

    {a^1, b^2, c^3}^{\\{w^1, v^2, t^3}\\} = {a^w, b^v, c^t}

The two directions are mutually inverse when sigma is a bijection
between scope alphabets; in general either may drop or duplicate
memberships (a scope mapped to two new scopes duplicates; an unmapped
scope drops).

Scope values that are *atoms* rather than extended sets can appear as
the scope of a membership (e.g. string attribute names).  When Def 7.4
asks for ``w^{/sigma/}`` of such an atom ``w``, we adopt the urelement
reading -- an atom has no scoped members, so its re-scope is the empty
set.  This matches every worked example in the paper, whose member
scopes are always extended sets (possibly empty).
"""

from __future__ import annotations

from typing import Any

from repro.xst.xset import EMPTY, XSet

__all__ = [
    "rescope_by_scope",
    "rescope_by_element",
    "rescope_value_by_scope",
    "rescope_value_by_element",
    "identity_sigma_for",
]


def rescope_by_scope(a: XSet, sigma: XSet) -> XSet:
    """Def 7.3: ``A^{/sigma/}``, mapping old scopes to new scopes."""
    pairs = []
    for element, scope in a.pairs():
        for new_scope in sigma.scopes_of(scope):
            pairs.append((element, new_scope))
    return XSet(pairs)


def rescope_by_element(a: XSet, sigma: XSet) -> XSet:
    """Def 7.5: ``A^{\\sigma\\}``, new scopes drawn from sigma's elements."""
    pairs = []
    for element, scope in a.pairs():
        for new_scope in sigma.elements_at(scope):
            pairs.append((element, new_scope))
    return XSet(pairs)


def rescope_value_by_scope(value: Any, sigma: XSet) -> XSet:
    """``value^{/sigma/}`` extended to atoms (which re-scope to empty)."""
    if isinstance(value, XSet):
        return rescope_by_scope(value, sigma)
    return EMPTY


def rescope_value_by_element(value: Any, sigma: XSet) -> XSet:
    """``value^{\\sigma\\}`` extended to atoms (which re-scope to empty)."""
    if isinstance(value, XSet):
        return rescope_by_element(value, sigma)
    return EMPTY


def identity_sigma_for(a: XSet) -> XSet:
    """The sigma that re-scopes every scope of ``a`` to itself.

    ``rescope_by_scope(a, identity_sigma_for(a)) == a`` for every
    extended set ``a``; useful as the neutral scope specification.
    """
    return XSet((scope, scope) for scope in a.scopes())
