"""The XST kernel: extended sets and the operations of the paper.

This subpackage is the set-theoretic substrate everything else builds
on.  Import the common names directly::

    from repro.xst import XSet, EMPTY, xset, xtuple, xpair, xrecord
    from repro.xst import sigma_domain, sigma_restrict, image
    from repro.xst import relative_product

Layer map (bottom-up):

=====================  ==================================================
module                 contents
=====================  ==================================================
``ordering``           canonical total order over heterogeneous values
``xset``               :class:`XSet`, scoped membership, tuple/record shape
``builders``           classical sets, tuples, pairs, records, conversion
``algebra``            Boolean algebra, powerset, separation, replacement
``rescope``            Defs 7.3 / 7.5 re-scoping
``domain``             Def 7.4 sigma-Domain (+ CST 1-/2-Domain shapes)
``restrict``           Def 7.6 sigma-Restriction (+ CST restriction shape)
``image``              Defs 3.10 / 7.1 Image
``tuples``             Defs 9.1 / 9.2 / 7.2 tuples and concatenation
``products``           Defs 9.3 - 9.7 cross product, tag, Cartesian
``values``             Defs 9.8 / 9.9 value extraction, Thm 9.10 bridge
``relative_product``   Def 10.1 parameterized join
=====================  ==================================================
"""

from repro.xst.algebra import (
    big_intersection,
    big_union,
    difference,
    disjoint,
    intersection,
    iter_subsets,
    map_pairs,
    powerset,
    select_pairs,
    symmetric_difference,
    union,
)
from repro.xst.closure import (
    compose_step,
    node_set,
    reachable_from,
    reflexive_transitive_closure,
    symmetric_closure,
    transitive_closure,
    transitive_closure_naive,
)
from repro.xst.builders import (
    from_python,
    relation,
    scoped,
    singleton,
    xpair,
    xrecord,
    xset,
    xtuple,
)
from repro.xst.domain import component_domain, domain_1, domain_2, sigma_domain
from repro.xst.image import cst_image, image
from repro.xst.ordering import canonical_hash, canonical_key
from repro.xst.products import cartesian, cross, nfold_cartesian, tag
from repro.xst.relative_product import (
    cst_relative_product,
    relative_product,
    relative_product_nested_loop,
)
from repro.xst.rescope import (
    identity_sigma_for,
    rescope_by_element,
    rescope_by_scope,
    rescope_value_by_element,
    rescope_value_by_scope,
)
from repro.xst.restrict import restrict_1, sigma_restrict
from repro.xst.serialization import digest, dump_stream, dumps, load_stream, loads
from repro.xst.tuples import (
    concat,
    ordered_pair,
    reverse_tuple,
    shift_positions,
    tup,
    tuple_slice,
)
from repro.xst.values import classical_call, sigma_value, value
from repro.xst.xset import EMPTY, XSet, render

__all__ = [
    "XSet",
    "EMPTY",
    "render",
    "canonical_key",
    "canonical_hash",
    # builders
    "xset",
    "xtuple",
    "xpair",
    "xrecord",
    "scoped",
    "singleton",
    "relation",
    "from_python",
    # algebra
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "big_union",
    "big_intersection",
    "powerset",
    "iter_subsets",
    "select_pairs",
    "map_pairs",
    "disjoint",
    # rescoping
    "rescope_by_scope",
    "rescope_by_element",
    "rescope_value_by_scope",
    "rescope_value_by_element",
    "identity_sigma_for",
    # domain / restriction / image
    "sigma_domain",
    "domain_1",
    "domain_2",
    "component_domain",
    "sigma_restrict",
    "restrict_1",
    "image",
    "cst_image",
    # tuples & products
    "tup",
    "concat",
    "shift_positions",
    "ordered_pair",
    "tuple_slice",
    "reverse_tuple",
    "cross",
    "tag",
    "cartesian",
    "nfold_cartesian",
    # values
    "sigma_value",
    "value",
    "classical_call",
    # relative product
    "relative_product",
    "relative_product_nested_loop",
    "cst_relative_product",
    # serialization
    "dumps",
    "loads",
    "digest",
    "dump_stream",
    "load_stream",
    # closures
    "compose_step",
    "transitive_closure",
    "transitive_closure_naive",
    "reflexive_transitive_closure",
    "symmetric_closure",
    "reachable_from",
    "node_set",
]
