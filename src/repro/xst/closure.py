"""Fixpoint operations over pair relations: closures and reachability.

Recursive queries are where set-at-a-time processing shines brightest:
one relative product per iteration doubles the frontier, versus
record-at-a-time graph walking.  These operations are all built from
the kernel's Def 10.1 relative product and Boolean algebra:

* :func:`compose_step` -- one ``R / R`` step (paths of length +1);
* :func:`transitive_closure` -- semi-naive fixpoint of ``R u R/R``;
* :func:`reachable_from` -- the image-iteration frontier expansion,
  answering "which nodes can this set reach" without materializing the
  whole closure;
* :func:`reflexive_transitive_closure`, :func:`symmetric_closure` --
  the usual companions.

``transitive_closure`` is semi-naive: each round joins only the *new*
pairs of the previous round against the base relation, so the work per
round is proportional to the delta, not the accumulated closure.
"""

from __future__ import annotations

from typing import Optional

from repro.gov.governor import active as _gov_active
from repro.obs.instrument import kernel_op
from repro.xst.builders import xpair, xset, xtuple
from repro.xst.domain import component_domain
from repro.xst.image import cst_image
from repro.xst.relative_product import cst_relative_product
from repro.xst.xset import XSet

__all__ = [
    "compose_step",
    "transitive_closure",
    "transitive_closure_naive",
    "reflexive_transitive_closure",
    "symmetric_closure",
    "reachable_from",
    "node_set",
]


def compose_step(r: XSet, s: Optional[XSet] = None) -> XSet:
    """``R / S`` over pair relations (paths through one intermediate)."""
    return cst_relative_product(r, s if s is not None else r)


@kernel_op("closure")
def transitive_closure(r: XSet) -> XSet:
    """The least transitive relation containing ``R`` (semi-naive)."""
    gov = _gov_active()
    closure = r
    delta = r
    while True:
        new_pairs = compose_step(delta, r) - closure
        if new_pairs.is_empty:
            return closure
        closure = closure | new_pairs
        delta = new_pairs
        # One cancellation checkpoint per fixpoint round, charging the
        # round's delta -- an unselective closure dies between rounds,
        # not after converging.
        if gov is not None:
            gov.checkpoint("xst.closure", len(new_pairs))


@kernel_op("closure_naive")
def transitive_closure_naive(r: XSet) -> XSet:
    """The textbook fixpoint ``T := T u T/T`` (kept as the baseline).

    Joins the full accumulated closure against itself every round;
    extensionally equal to :func:`transitive_closure` and measured
    against it in ``benchmarks/bench_closure.py``.
    """
    gov = _gov_active()
    closure = r
    while True:
        expanded = closure | compose_step(closure, closure)
        if expanded == closure:
            return closure
        if gov is not None:
            gov.checkpoint("xst.closure_naive", len(expanded) - len(closure))
        closure = expanded


def reflexive_transitive_closure(r: XSet) -> XSet:
    """``R* = R+ u id`` over every node mentioned by ``R``."""
    closure = transitive_closure(r)
    nodes = component_domain(r, 1) | component_domain(r, 2)
    diagonal = xset(xpair(node, node) for node, _ in nodes.pairs())
    return closure | diagonal


def symmetric_closure(r: XSet) -> XSet:
    """``R u R^-1``."""
    flipped = xset(
        xpair(member.as_tuple()[1], member.as_tuple()[0])
        for member, _ in r.pairs()
    )
    return r | flipped


@kernel_op("reachable")
def reachable_from(r: XSet, sources: XSet) -> XSet:
    """Every node reachable from ``sources`` through ``R`` (1+ steps).

    ``sources`` is a classical set of 1-tuples (the image key shape);
    the result has the same shape.  Pure frontier iteration: each
    round is one Def 7.1 image of the not-yet-visited frontier.
    """
    gov = _gov_active()
    visited = XSet()
    frontier = sources
    while True:
        frontier = cst_image(r, frontier) - visited
        if frontier.is_empty:
            return visited
        visited = visited | frontier
        if gov is not None:
            gov.checkpoint("xst.reachable", len(frontier))


def node_set(atoms) -> XSet:
    """Lift bare atoms to the 1-tuple node-set shape images expect."""
    return xset(xtuple([atom]) for atom in atoms)
