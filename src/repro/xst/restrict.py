"""The sigma-Restriction operation (Def 7.6) and its CST specialization.

Restriction filters a set of structured members by the members of a
second set, under a scope specification::

    R |_sigma A = { z^w : (z in_w R) and
                    exists a, s ( a in_s A
                                  and a^{\\sigma\\} subseteq z
                                  and s^{\\sigma\\} subseteq w ) }

Each member ``a`` of the restricting set ``A`` is re-scoped *by
element* through sigma into the shape it would occupy inside a member
of ``R``; any ``z`` containing that re-scoped fragment (with the
member-scope condition holding likewise) survives.  With
``sigma = <1>`` over a set of pairs this is exactly CST restriction
``R | A`` (Def 3.3): keep the pairs whose first component appears in
``A``.

Two literal-reading consequences worth knowing (both covered by tests):

* A restricting member ``a`` whose re-scope ``a^{\\sigma\\}`` is empty
  imposes no element condition, so it keeps every ``z`` whose scope
  passes the scope condition.  In particular atoms in ``A`` re-scope to
  the empty set and act as universal keys.
* Members ``z`` of ``R`` that are atoms can only be kept by such
  empty-fragment keys, since a non-empty fragment cannot be a subset of
  an atom.
"""

from __future__ import annotations

from typing import Any

from repro.gov.governor import active as _gov_active
from repro.obs.instrument import kernel_op
from repro.xst.xset import XSet
from repro.xst.rescope import rescope_value_by_element

__all__ = ["sigma_restrict", "restrict_1"]


def _fragment_within(fragment: XSet, whole: Any) -> bool:
    """Subset test where the containing side may be an atom."""
    if fragment.is_empty:
        return True
    if isinstance(whole, XSet):
        return fragment.issubset(whole)
    return False


@kernel_op("restrict")
def sigma_restrict(r: XSet, a: XSet, sigma: XSet) -> XSet:
    """Def 7.6: ``R |_sigma A``.

    The fragments ``a^{\\sigma\\}`` / ``s^{\\sigma\\}`` are computed once
    per member of ``A`` and then checked against each member of ``R``.
    """
    keys = [
        (
            rescope_value_by_element(member, sigma),
            rescope_value_by_element(member_scope, sigma),
        )
        for member, member_scope in a.pairs()
    ]
    if not keys:
        return XSet()
    gov = _gov_active()
    charged = 0
    kept = []
    for scanned, (candidate, candidate_scope) in enumerate(r.pairs(), 1):
        for element_fragment, scope_fragment in keys:
            if _fragment_within(element_fragment, candidate) and _fragment_within(
                scope_fragment, candidate_scope
            ):
                kept.append((candidate, candidate_scope))
                break
        if gov is not None and not (scanned & 1023):
            gov.checkpoint("xst.restrict", len(kept) - charged)
            charged = len(kept)
    if gov is not None:
        gov.checkpoint("xst.restrict", len(kept) - charged)
    return XSet(kept)


def restrict_1(r: XSet, a: XSet) -> XSet:
    """CST-shaped restriction: keep members whose position-1 part is in A.

    ``A`` here holds 1-tuples ``<k>`` (or wider tuples; only position 1
    is consulted), matching the paper's usage ``f |_{<1>} {<a>}``.
    """
    return sigma_restrict(r, a, XSet([(1, 1)]))
