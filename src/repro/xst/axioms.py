"""The XST axioms (Blass & Childs, the paper's reference [1]) as
executable checks over finite extended sets.

A reproduction of a *theory* should demonstrate that its model
actually models the theory.  Each function here is one axiom scheme
instantiated over concrete finite sets, returning True when the
instance holds; the test suite drives them with hypothesis so the
kernel is checked against the axioms it claims to implement, not just
against the paper's worked examples.

The axioms, in their finite executable readings:

* **scoped extensionality** -- sets are equal iff they have the same
  scoped memberships (`x in_s A  <->  x in_s B`);
* **empty set** -- a set with no memberships exists and is unique;
* **pairing** -- for any x, y (and scopes s, t) the set
  ``{x^s, y^t}`` exists with exactly those memberships;
* **union** -- the union of a family's set-elements exists and holds
  exactly the members of the members;
* **separation** -- for any predicate over (element, scope) pairs the
  matching sub-XSet exists;
* **replacement** -- the image of a set under a pair transformation
  exists;
* **power set** -- every pair-subset of a finite set is collected by
  the powerset;
* **foundation (finite form)** -- no finite membership cycle exists:
  the element-of relation on any hereditarily constructed value is
  well-founded (guaranteed structurally by immutability: a set cannot
  contain itself because it must exist before insertion).
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.xst.algebra import big_union, iter_subsets, powerset, select_pairs
from repro.xst.xset import EMPTY, XSet

__all__ = [
    "extensionality_holds",
    "empty_set_holds",
    "pairing_holds",
    "union_holds",
    "separation_holds",
    "replacement_holds",
    "powerset_holds",
    "foundation_holds",
]


def extensionality_holds(a: XSet, b: XSet) -> bool:
    """``A == B  <->  forall x, s (x in_s A <-> x in_s B)``."""
    same_memberships = set(a.pairs()) == set(b.pairs())
    return (a == b) == same_memberships


def empty_set_holds() -> bool:
    """The empty set exists, has no memberships, and is unique."""
    fresh = XSet()
    return (
        fresh.is_empty
        and len(fresh) == 0
        and fresh == EMPTY
        and hash(fresh) == hash(EMPTY)
    )


def pairing_holds(x: Any, s: Any, y: Any, t: Any) -> bool:
    """``{x^s, y^t}`` exists with exactly those memberships."""
    paired = XSet([(x, s), (y, t)])
    if not (paired.contains(x, s) and paired.contains(y, t)):
        return False
    expected = {(x, s), (y, t)}
    return set(paired.pairs()) == expected


def union_holds(family: XSet) -> bool:
    """``U family`` holds z^w iff some set-element of family does."""
    union = big_union(family)
    for element, _ in family.pairs():
        if isinstance(element, XSet):
            if not element.issubset(union):
                return False
    for pair in union.pairs():
        if not any(
            isinstance(element, XSet) and pair in set(element.pairs())
            for element, _ in family.pairs()
        ):
            return False
    return True


def separation_holds(
    a: XSet, predicate: Callable[[Any, Any], bool]
) -> bool:
    """The predicate's sub-XSet exists and is exactly the match set."""
    selected = select_pairs(a, predicate)
    if not selected.issubset(a):
        return False
    for element, scope in a.pairs():
        in_selected = selected.contains(element, scope)
        if predicate(element, scope) != in_selected:
            return False
    return True


def replacement_holds(
    a: XSet, transform: Callable[[Any, Any], Tuple[Any, Any]]
) -> bool:
    """The image of ``a`` under a pair function exists, exactly."""
    image = XSet(transform(element, scope) for element, scope in a.pairs())
    expected = {transform(element, scope) for element, scope in a.pairs()}
    return set(image.pairs()) == expected


def powerset_holds(a: XSet) -> bool:
    """Every pair-subset of ``a`` is a classical member of P(a)."""
    if len(a) > 6:
        # Keep the 2^n enumeration test-sized.
        a = XSet(a.pairs()[:6])
    collected = powerset(a)
    subsets = list(iter_subsets(a))
    if len(collected) != 2 ** len(a):
        return False
    return all(collected.contains(subset) for subset in subsets)


def _occurs_within(needle: XSet, haystack: Any, depth: int = 0) -> bool:
    if depth > 64:
        return True  # would indicate a cycle; structurally impossible
    if not isinstance(haystack, XSet):
        return False
    for element, scope in haystack.pairs():
        if element == needle or scope == needle:
            return True
        if _occurs_within(needle, element, depth + 1):
            return True
        if _occurs_within(needle, scope, depth + 1):
            return True
    return False


def foundation_holds(a: XSet) -> bool:
    """No set occurs within itself (finite well-foundedness).

    Immutability makes membership cycles unconstructible -- a set has
    to exist before it can be inserted anywhere -- so this check
    should hold for every value the kernel can produce.
    """
    return not _occurs_within(a, a)
