"""The sigma-Domain operation (Def 7.4) and its CST specializations.

The sigma-Domain collects, from a set of structured members, the
sigma-re-scoped part of every member *and* of that member's own scope::

    D_sigma(R) = { x^s : exists z, w ( z in_w R
                                       and x = z^{/sigma/} != {}
                                       and s = w^{/sigma/} ) }

Intuitively: ``R`` is a collection of records, sigma names which parts
of each record to keep (and where to put them), and the result is the
collection of kept parts.  CST's 1-Domain and 2-Domain (Defs 3.4 / 3.5)
fall out by taking sigma = <1> and sigma = <2> over a set of ordered
pairs -- except that XST's answers are 1-tuples ``<a>`` rather than
bare elements, preserving position information (the paper's Example 8.1
shows exactly this shape).

Members of ``R`` that are atoms re-scope to the empty set and are
dropped (the ``x != {}`` guard).  A member whose re-scope is non-empty
is kept even when its *scope's* re-scope is empty; the scope then
becomes the empty scope, i.e. a classical membership.
"""

from __future__ import annotations

from repro.obs.instrument import kernel_op
from repro.xst.builders import xset
from repro.xst.xset import XSet
from repro.xst.rescope import rescope_value_by_scope

__all__ = ["sigma_domain", "domain_1", "domain_2", "component_domain"]


@kernel_op("domain")
def sigma_domain(r: XSet, sigma: XSet) -> XSet:
    """Def 7.4: ``D_sigma(R)``."""
    pairs = []
    for member, member_scope in r.pairs():
        kept = rescope_value_by_scope(member, sigma)
        if kept.is_empty:
            continue
        pairs.append((kept, rescope_value_by_scope(member_scope, sigma)))
    return XSet(pairs)


def _column_sigma(position: int) -> XSet:
    """The sigma ``<position>`` = ``{position^1}`` selecting one column."""
    return XSet([(position, 1)])


def domain_1(r: XSet) -> XSet:
    """XST counterpart of CST 1-Domain: 1-tuples of first components.

    ``domain_1({<a,x>, <b,y>}) == {<a>, <b>}``.  Use
    :func:`component_domain` for bare classical components.
    """
    return sigma_domain(r, _column_sigma(1))


def domain_2(r: XSet) -> XSet:
    """XST counterpart of CST 2-Domain: 1-tuples of second components."""
    return sigma_domain(r, _column_sigma(2))


def component_domain(r: XSet, position: int) -> XSet:
    """CST-flavoured domain: the classical set of bare components.

    ``component_domain({<a,x>, <b,y>}, 1) == {a, b}`` -- the shape
    Defs 3.4/3.5 produce.  Non-tuple members, and tuple members without
    the requested position, are skipped.
    """
    members = []
    for member, _ in r.pairs():
        if isinstance(member, XSet):
            components = member.elements_at(position)
            members.extend(components)
    return xset(members)
