"""Explicit-clock tracing: spans, span trees, and their exports.

A :class:`Span` is one timed region of execution with a name, a bag of
attributes, and parent/child links; a :class:`Tracer` manages the
stack of open spans, stamps them with an injectable clock, and keeps
finished *root* spans in a bounded ring buffer.  The profiler
(:mod:`repro.relational.profile`) and the distributed cluster
(:mod:`repro.relational.distributed`) both hang their measurements off
this one span model, so an EXPLAIN-ANALYZE tree and a per-bucket
cluster trace render and export identically.

The clock is any zero-argument callable returning seconds.  The
default is :func:`time.perf_counter` (monotonic wall time); injecting
a :class:`FakeClock` makes span durations *simulated* time instead --
the fault harness charges its synthetic backoff and node delays
through :meth:`Tracer.advance`, which is a no-op on a real clock and
advances a fake one, so injected latency lands in traces without
anyone actually sleeping.

Exports: :meth:`Span.render` draws the indented tree with durations
and attributes; :meth:`Tracer.export_jsonl` writes one JSON object per
span (parents before children) for offline analysis.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from itertools import count
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "FakeClock",
    "Span",
    "TraceContext",
    "Tracer",
    "tracer",
    "set_span_listener",
]


class FakeClock:
    """A clock that only moves when told to: simulated seconds.

    Install one on a :class:`Tracer` (or a
    :class:`~repro.relational.distributed.Cluster`) and every span
    duration becomes the simulated time charged between its start and
    end -- deterministic across runs, independent of machine speed.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clocks only move forward")
        self._now += seconds

    def __repr__(self) -> str:
        return "FakeClock(%.6f)" % self._now


class TraceContext:
    """Causal propagation state: trace id, parent span id, baggage.

    A context names the *trace* an operation belongs to and the span
    that caused it, independently of the structural parent/child links
    a single :class:`Tracer` stack builds.  That distinction matters
    exactly when causality crosses tracers or root spans: a cluster
    query runs on the cluster's own tracer while the coordinating plan
    executes on the global one, and a fault-triggered rebuild opens a
    fresh root span mid-query -- the context carries the causal link
    (``trace_id`` + ``link_parent`` attributes) across both seams.

    ``baggage`` travels with the context (priority, deadline budget);
    values must be JSON-serializable so incident records and trace
    exports stay portable.  Contexts hold no clock and no randomness:
    trace ids are allocated from deterministic counters by their
    creators, which is what keeps chaos traces byte-reproducible.
    """

    __slots__ = ("trace_id", "span_id", "baggage")

    def __init__(self, trace_id: str, span_id: Optional[int] = None,
                 baggage: Optional[Dict[str, Any]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.baggage = dict(baggage or {})

    def child_of(self, span: "Span") -> "TraceContext":
        """The context a child operation of ``span`` should carry."""
        return TraceContext(self.trace_id, span.span_id, self.baggage)

    def annotate(self, span: "Span") -> None:
        """Stamp causal attributes onto a span.

        ``trace_id`` always; ``link_parent`` (the causal parent's span
        id) only when it differs from the structural parent, so purely
        nested spans stay unchanged and the attribute's presence marks
        a genuine cross-tracer or cross-root link.
        """
        span.set("trace_id", self.trace_id)
        if self.span_id is not None and self.span_id != span.parent_id:
            span.set("link_parent", self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "baggage": dict(self.baggage),
        }

    def __repr__(self) -> str:
        return "TraceContext(%s, span=%s)" % (self.trace_id, self.span_id)


class Span:
    """One timed region: name, attributes, timing, children.

    Spans are created through :meth:`Tracer.start` /
    :meth:`Tracer.span`, never directly.  ``attrs`` values should be
    JSON-serializable (strings, numbers, booleans) so exports stay
    portable.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start_s",
                 "end_s", "children")

    def __init__(self, name: str, attrs: Dict[str, Any], span_id: int,
                 parent_id: Optional[int], start_s: float):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.children: List["Span"] = []

    def set(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attrs[key] = value

    def rename(self, name: str) -> None:
        """Replace the span name (e.g. once the serving node is known)."""
        self.name = name

    @property
    def duration_s(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return max(0.0, self.end_s - self.start_s)

    def tree(self) -> Iterator["Span"]:
        """This span and every descendant, parents before children."""
        yield self
        for child in self.children:
            yield from child.tree()

    def to_dict(self) -> Dict[str, Any]:
        """A flat JSON-ready record (children linked by ``parent_id``)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def render(self, indent: int = 0) -> str:
        """The indented tree: name, duration, attributes."""
        attrs = "  ".join(
            "%s=%s" % (key, _render_value(self.attrs[key]))
            for key in sorted(self.attrs)
        )
        line = "%s%-40s %10.3f ms" % (
            "  " * indent, self.name, self.duration_s * 1000
        )
        lines = [line + ("  " + attrs if attrs else "")]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Span(%s, %d children)" % (self.name, len(self.children))


def _render_value(value: Any) -> str:
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


#: Optional hook fired with every finished span (any tracer).  The
#: flight recorder installs itself here; ``None`` keeps span close at
#: one global read -- the free-when-off contract.
_SPAN_LISTENER: Optional[Callable[["Span"], None]] = None


def set_span_listener(
    listener: Optional[Callable[["Span"], None]],
) -> Optional[Callable[["Span"], None]]:
    """Install (or clear, with ``None``) the finished-span hook.

    Returns the previous listener so callers can restore it.  The
    listener must not raise and must not open spans of its own.
    """
    global _SPAN_LISTENER
    previous = _SPAN_LISTENER
    _SPAN_LISTENER = listener
    return previous


class Tracer:
    """Builds span trees against an explicit clock.

    ``clock`` is any zero-argument callable returning seconds
    (default: :func:`time.perf_counter`).  Finished root spans land in
    a ring buffer of ``capacity`` entries -- old traces age out, the
    process never grows without bound.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = 256):
        if capacity < 1:
            raise ValueError("a tracer needs room for at least one trace")
        self.clock = clock if clock is not None else time.perf_counter
        self._stack: List[Span] = []
        self._roots: deque = deque(maxlen=capacity)
        self._ids = count(1)

    # -- time ----------------------------------------------------------

    def now(self) -> float:
        return self.clock()

    def advance(self, seconds: float) -> None:
        """Charge simulated seconds: advances a fake clock, else no-op.

        This is how the fault harness's synthetic backoff and node
        delays reach span durations without real sleeping.
        """
        advance = getattr(self.clock, "advance", None)
        if advance is not None:
            advance(seconds)

    # -- span lifecycle ------------------------------------------------

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the currently open span (if any)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name, dict(attrs), next(self._ids),
            parent.span_id if parent is not None else None, self.now()
        )
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close a span; a closed root enters the ring buffer."""
        span.end_s = self.now()
        while self._stack:
            if self._stack.pop() is span:
                break
        if span.parent_id is None:
            self._roots.append(span)
        if _SPAN_LISTENER is not None:
            _SPAN_LISTENER(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("name", k=v) as span: ...``

        Exceptions are recorded as an ``error`` attribute (the
        exception type name) and re-raised; the span always closes.
        """
        opened = self.start(name, **attrs)
        try:
            yield opened
        except BaseException as error:
            opened.set("error", type(error).__name__)
            raise
        finally:
            self.end(opened)

    # -- inspection and export -----------------------------------------

    @property
    def active(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def current_context(self) -> Optional[TraceContext]:
        """The :class:`TraceContext` of the innermost open span.

        ``None`` outside any span.  The trace id is the active span's
        own ``trace_id`` attribute when one was stamped (a cluster
        query), else a deterministic id derived from the root span's
        id -- so hand-off into another tracer (local plan -> cluster
        fan-out) always carries *some* stable trace identity.
        """
        if not self._stack:
            return None
        span = self._stack[-1]
        trace_id = self._stack[0].attrs.get("trace_id")
        if trace_id is None:
            trace_id = "span-%d" % self._stack[0].span_id
        return TraceContext(str(trace_id), span.span_id)

    def roots(self) -> Tuple[Span, ...]:
        """Finished root spans, oldest first (bounded by capacity)."""
        return tuple(self._roots)

    def last_root(self) -> Optional[Span]:
        """The most recently finished root span."""
        return self._roots[-1] if self._roots else None

    def render(self, span: Optional[Span] = None) -> str:
        """Render one span tree (default: the last finished root)."""
        target = span if span is not None else self.last_root()
        return "" if target is None else target.render()

    def export_jsonl(self, destination) -> int:
        """Write every buffered trace as JSON lines; returns span count.

        ``destination`` is a path or a writable file object.  One JSON
        object per span, parents before children, so a streaming
        reader can rebuild every tree from ``parent_id`` links.
        """
        spans = [
            span.to_dict() for root in self._roots for span in root.tree()
        ]
        if hasattr(destination, "write"):
            for record in spans:
                destination.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            with open(destination, "w") as handle:
                for record in spans:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(spans)

    def reset(self) -> None:
        """Drop every buffered trace and abandon open spans."""
        self._stack.clear()
        self._roots.clear()

    def __repr__(self) -> str:
        return "Tracer(%d buffered, %d open)" % (
            len(self._roots), len(self._stack)
        )


#: The process-global tracer the production hooks record into.
_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global default tracer."""
    return _TRACER
