"""The on/off switch and the kernel instrumentation hook.

Instrumentation must be *free when off*: every production hook guards
on one module-global boolean, read without locks, defaulting to the
``REPRO_OBS`` environment variable (unset/0/false = off).  When off,
the only residual cost is one function call and one boolean test per
instrumented kernel operation; when on, each recorded operation pays
a fixed ~2 microseconds -- within noise on realistic operand sizes,
priced in EXPERIMENTS.md E20.

:func:`kernel_op` is the decorator the XST kernel operations wear.
When observability is enabled it records, per operation:

* ``repro_xst_op_total{op=...}`` -- invocation counter;
* ``repro_xst_op_seconds{op=...}`` -- latency histogram;
* ``repro_xst_rows_in_total`` / ``repro_xst_rows_out_total`` --
  input/output cardinality counters;
* ``repro_xst_rows_out{op=...}`` -- output cardinality histogram.

Input cardinality sums the sizes of the first two sized positional
arguments (the operands; trailing sigma/omega specifications are
steering, not data).
"""

from __future__ import annotations

import functools
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.obs import metrics

__all__ = [
    "enabled", "set_enabled", "observed", "kernel_op", "record_recovery",
    "record_shard_event",
]


def _env_truthy(value: str) -> bool:
    return value.strip().lower() in ("1", "true", "yes", "on")


_ENABLED = _env_truthy(os.environ.get("REPRO_OBS", ""))


def enabled() -> bool:
    """Is observability currently recording?"""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Flip the global switch; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def observed(flag: bool = True) -> Iterator[metrics.Registry]:
    """Temporarily enable (or disable) observability.

    Yields the global registry so call sites can read what they just
    recorded::

        with observed() as registry:
            run_workload()
            print(registry.expose())
    """
    previous = set_enabled(flag)
    try:
        yield metrics.registry()
    finally:
        set_enabled(previous)


def _cardinality(value: Any) -> Optional[int]:
    try:
        return len(value)
    except TypeError:
        return None


def kernel_op(op_name: str) -> Callable:
    """Instrument one kernel operation (metrics only, no spans).

    Kernel operations run inside tight fixpoint loops; spans per call
    would flood any ring buffer, so the kernel reports through
    counters and histograms and leaves span structure to the layers
    that own query shapes (profiler, cluster).
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ENABLED:
                return fn(*args, **kwargs)
            started = time.perf_counter()
            result = fn(*args, **kwargs)
            elapsed = time.perf_counter() - started
            _record(op_name, args, result, elapsed)
            return result

        return wrapper

    return decorate


#: Cached handles to the five kernel metrics.  ``Registry.reset``
#: keeps registrations (same objects), so handles stay valid for the
#: process lifetime; only label-key tuples are built per call.
_KERNEL_METRICS = None


def _kernel_metrics():
    global _KERNEL_METRICS
    if _KERNEL_METRICS is None:
        registry = metrics.registry()
        _KERNEL_METRICS = (
            registry.counter(
                "repro_xst_op_total", "Kernel operation invocations.",
                ("op",),
            ),
            registry.histogram(
                "repro_xst_op_seconds", "Kernel operation latency.",
                ("op",), buckets=metrics.SECONDS_BUCKETS,
            ),
            registry.counter(
                "repro_xst_rows_in_total", "Kernel operand cardinality.",
                ("op",),
            ),
            registry.counter(
                "repro_xst_rows_out_total", "Kernel result cardinality.",
                ("op",),
            ),
            registry.histogram(
                "repro_xst_rows_out",
                "Kernel result cardinality distribution.",
                ("op",), buckets=metrics.ROWS_BUCKETS,
            ),
        )
    return _KERNEL_METRICS


def record_recovery(kind: str, seconds: float, records: int,
                    byte_count: int, epoch: Optional[int] = None) -> None:
    """Record one recovery pass (WAL replay or replica rebuild).

    ``kind`` labels the recovery flavor (``"wal"`` for log replay into
    a :class:`~repro.relational.disk.DiskRelationStore`, ``"rebuild"``
    for a revived cluster node catching up from the write log);
    ``records`` is how many log entries were replayed and
    ``byte_count`` how many durable bytes were read to do it.  When
    the recovering layer knows its shard-map generation it passes
    ``epoch``, and the pass is additionally counted under
    ``repro_recovery_epoch_total{kind,epoch}`` -- the tag that lets
    FlightRecorder incidents correlate a revive with the rebalance it
    rebuilt into.  A no-op while observability is off, like every
    other hook here.
    """
    if not _ENABLED:
        return
    registry = metrics.registry()
    key = (kind,)
    registry.counter(
        "repro_recovery_total", "Recovery passes completed.", ("kind",),
    ).inc_key(key)
    registry.counter(
        "repro_recovery_records_total",
        "Log records replayed during recovery.", ("kind",),
    ).inc_key(key, records)
    registry.counter(
        "repro_recovery_bytes_total",
        "Durable bytes read during recovery.", ("kind",),
    ).inc_key(key, byte_count)
    registry.histogram(
        "repro_recovery_seconds", "Recovery pass duration.",
        ("kind",), buckets=metrics.SECONDS_BUCKETS,
    ).observe_key(key, seconds)
    if epoch is not None:
        registry.counter(
            "repro_recovery_epoch_total",
            "Recovery passes by the shard-map epoch recovered into.",
            ("kind", "epoch"),
        ).inc_key((kind, str(epoch)))


def record_shard_event(event: str, table: str, rows: int = 0,
                       byte_count: int = 0,
                       epoch: Optional[int] = None) -> None:
    """Record one shard life-cycle event (move step, swing, split...).

    ``event`` is the transition name (``copy``/``catch_up``/``swing``/
    ``verify``/``gc`` for rebalance steps, ``split``/``merge`` for
    topology changes, ``stale_epoch`` for refused requests); ``rows``
    and ``byte_count`` size the data the event touched.  ``epoch``
    additionally pins the table's current map generation on the
    ``repro_shard_epoch`` gauge, which exposition scrapes join
    against query traces.
    """
    if not _ENABLED:
        return
    registry = metrics.registry()
    key = (event, table)
    registry.counter(
        "repro_shard_events_total", "Shard life-cycle events.",
        ("event", "table"),
    ).inc_key(key)
    if rows:
        registry.counter(
            "repro_shard_rows_total",
            "Rows touched by shard life-cycle events.", ("event", "table"),
        ).inc_key(key, rows)
    if byte_count:
        registry.counter(
            "repro_shard_bytes_total",
            "Bytes shipped by shard life-cycle events.", ("event", "table"),
        ).inc_key(key, byte_count)
    if epoch is not None:
        registry.gauge(
            "repro_shard_epoch",
            "Current shard-map epoch per table.", ("table",),
        ).set(epoch, table=table)


def _record(op_name: str, args: tuple, result: Any, elapsed: float) -> None:
    ops, op_seconds, rows_in_total, rows_out_total, rows_out_hist = (
        _kernel_metrics()
    )
    key = (op_name,)
    ops.inc_key(key)
    op_seconds.observe_key(key, elapsed)
    rows_in = 0
    for operand in args[:2]:
        size = _cardinality(operand)
        if size is not None:
            rows_in += size
    rows_out = _cardinality(result) or 0
    rows_in_total.inc_key(key, rows_in)
    rows_out_total.inc_key(key, rows_out)
    rows_out_hist.observe_key(key, rows_out)
