"""Zero-dependency metrics: counters, gauges, histograms, exposition.

A :class:`Registry` holds named metrics, each optionally split by a
fixed tuple of label names.  The design follows the Prometheus data
model closely enough that :meth:`Registry.expose` emits valid text
exposition format, but everything is in-process and resettable -- the
benchmark harness snapshots the registry around each benchmark and
records the delta next to the timings.

Metric naming scheme (see ``docs/observability.md``):

* ``repro_<layer>_<what>_total`` -- counters (monotonic within a
  reset epoch), e.g. ``repro_xst_op_total{op="restrict"}``;
* ``repro_<layer>_<what>_seconds`` / ``..._rows`` -- histograms with
  fixed buckets, e.g. ``repro_xst_op_seconds{op="image"}``;
* ``repro_<layer>_<what>`` -- gauges for point-in-time values.

Histograms use fixed bucket boundaries so two runs (or two machines)
aggregate identically; :meth:`Histogram.percentile` answers p50/p95/
p99 by linear interpolation inside the owning bucket, which is exact
enough for trajectory tracking and costs O(buckets) memory.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "registry",
    "parse_exposition",
    "SECONDS_BUCKETS",
    "ROWS_BUCKETS",
]

#: Fixed latency buckets: 10us .. 5s, then +Inf.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0
)

#: Fixed cardinality buckets: 1 .. 1e6 rows, then +Inf.
ROWS_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 50, 100, 500, 1000, 5000, 10000, 100000, 1000000
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError("invalid metric name %r" % (name,))
    return name


def _escape(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP-line escaping per the text format spec: ``\\`` and LF only.

    Unlike label values, quotes stay literal on HELP lines; an
    unescaped newline, though, would smuggle an arbitrary (likely
    malformed) sample line into the exposition.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _label_suffix(label_names: Sequence[str], key: Tuple[Any, ...],
                  extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(zip(label_names, key))
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (name, _escape(value)) for name, value in pairs
    )


class _Metric:
    """Shared plumbing: name, help text, label handling."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help_text
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError("invalid label name %r" % (label,))
        self.label_names: Tuple[str, ...] = tuple(label_names)

    def _key(self, labels: Mapping[str, Any]) -> Tuple[Any, ...]:
        if frozenset(labels) != frozenset(self.label_names):
            raise ValueError(
                "metric %s takes labels %s, got %s"
                % (self.name, list(self.label_names), sorted(labels))
            )
        return tuple(labels[name] for name in self.label_names)

    def samples(self) -> Iterator[Tuple[str, str, float]]:
        """Yield ``(sample_name, label_suffix, value)`` rows."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count (within a reset epoch)."""

    kind = "counter"

    def __init__(self, name, help_text="", label_names=()):
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[Any, ...], float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def inc_key(self, key: Tuple[Any, ...], amount: float = 1) -> None:
        """Hot-path increment with a pre-built label-value tuple.

        ``key`` holds the label values in ``label_names`` order.
        Instrumentation call sites build it once per operation and
        skip the per-call label validation :meth:`inc` performs.
        """
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self):
        for key in sorted(self._values, key=repr):
            yield (
                self.name,
                _label_suffix(self.label_names, key),
                self._values[key],
            )

    def reset(self):
        self._values.clear()


class Gauge(_Metric):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name, help_text="", label_names=()):
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[Any, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[self._key(labels)] = value

    def add(self, amount: float, **labels: Any) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self):
        for key in sorted(self._values, key=repr):
            yield (
                self.name,
                _label_suffix(self.label_names, key),
                self._values[key],
            )

    def reset(self):
        self._values.clear()


class _HistogramState:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, bucket_count: int):
        self.bucket_counts = [0] * bucket_count
        self.count = 0
        self.sum = 0.0


class Histogram(_Metric):
    """Fixed-bucket distribution: counts per bucket, total, sum.

    ``buckets`` are the inclusive upper bounds; an implicit ``+Inf``
    bucket catches the tail.  :meth:`percentile` interpolates within
    the owning bucket, so answers are estimates bounded by bucket
    width -- fine for p50/p95/p99 trajectory tracking.
    """

    kind = "histogram"

    def __init__(self, name, help_text="", label_names=(),
                 buckets: Sequence[float] = SECONDS_BUCKETS):
        super().__init__(name, help_text, label_names)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self.buckets = bounds
        self._states: Dict[Tuple[Any, ...], _HistogramState] = {}
        # Last exemplar per (label key, bucket index); index
        # ``len(buckets)`` is the +Inf tail.  Exemplars link a latency
        # bucket to the trace id of the most recent observation that
        # landed there -- the "which query made p99 slow" pointer.
        self._exemplars: Dict[Tuple[Tuple[Any, ...], int], Any] = {}

    def _state(self, labels: Mapping[str, Any]) -> _HistogramState:
        key = self._key(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        return state

    def observe(self, value: float, exemplar: Any = None,
                **labels: Any) -> None:
        state = self._state(labels)
        index = bisect_left(self.buckets, value)
        if index < len(self.buckets):
            state.bucket_counts[index] += 1
        state.count += 1
        state.sum += value
        if exemplar is not None:
            self._exemplars[(self._key(labels), index)] = exemplar

    def observe_key(self, key: Tuple[Any, ...], value: float,
                    exemplar: Any = None) -> None:
        """Hot-path observation with a pre-built label-value tuple
        (the histogram counterpart of :meth:`Counter.inc_key`)."""
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        index = bisect_left(self.buckets, value)
        if index < len(self.buckets):
            state.bucket_counts[index] += 1
        state.count += 1
        state.sum += value
        if exemplar is not None:
            self._exemplars[(key, index)] = exemplar

    def exemplars(self, **labels: Any) -> Dict[str, Any]:
        """Bucket-bound -> exemplar links for one label combination.

        Keys are the bounds as rendered in exposition (``"%g"`` plus
        ``"+Inf"`` for the tail); values are whatever the observer
        attached -- by convention a trace id, so a slow histogram
        bucket links back to a concrete trace to read.
        """
        key = self._key(labels)
        found: Dict[str, Any] = {}
        for (state_key, index), exemplar in self._exemplars.items():
            if state_key != key:
                continue
            bound = (
                "+Inf" if index >= len(self.buckets)
                else "%g" % self.buckets[index]
            )
            found[bound] = exemplar
        return found

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        state = self._states.get(key)
        return 0 if state is None else state.count

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        state = self._states.get(key)
        return 0.0 if state is None else state.sum

    def percentile(self, q: float, **labels: Any) -> float:
        """Estimate the q-th percentile (0 < q <= 100) by interpolation.

        Returns 0.0 for an empty histogram.  Observations beyond the
        last finite bucket report that bucket's bound (the estimate is
        clamped; fixed buckets cannot resolve the open tail).
        """
        if not 0 < q <= 100:
            raise ValueError("percentile wants 0 < q <= 100")
        key = self._key(labels)
        state = self._states.get(key)
        if state is None or state.count == 0:
            return 0.0
        target = q / 100.0 * state.count
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.buckets, state.bucket_counts):
            if cumulative + bucket_count >= target and bucket_count:
                within = (target - cumulative) / bucket_count
                return lower + (bound - lower) * within
            cumulative += bucket_count
            lower = bound
        return self.buckets[-1]

    def samples(self):
        for key in sorted(self._states, key=repr):
            state = self._states[key]
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, state.bucket_counts):
                cumulative += bucket_count
                yield (
                    self.name + "_bucket",
                    _label_suffix(self.label_names, key,
                                  extra=("le", "%g" % bound)),
                    cumulative,
                )
            yield (
                self.name + "_bucket",
                _label_suffix(self.label_names, key, extra=("le", "+Inf")),
                state.count,
            )
            yield (
                self.name + "_sum",
                _label_suffix(self.label_names, key),
                state.sum,
            )
            yield (
                self.name + "_count",
                _label_suffix(self.label_names, key),
                state.count,
            )

    def summary_samples(self):
        """The compact rows used for snapshots: count and sum only."""
        for key in sorted(self._states, key=repr):
            state = self._states[key]
            suffix = _label_suffix(self.label_names, key)
            yield (self.name + "_count", suffix, state.count)
            yield (self.name + "_sum", suffix, state.sum)

    def reset(self):
        self._states.clear()
        self._exemplars.clear()


class Registry:
    """A named collection of metrics with get-or-create access.

    Re-requesting a name returns the existing metric; re-requesting it
    with a different kind or label set is a programming error and
    raises.  :meth:`reset` clears every recorded value but keeps the
    registrations, so instrument-once-measure-many workflows (and the
    test suite) can start each epoch clean.
    """

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, factory, name: str, help_text: str,
                       label_names: Sequence[str], **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, factory) or \
                    existing.label_names != tuple(label_names):
                raise ValueError(
                    "metric %r already registered as %s%s"
                    % (name, existing.kind, list(existing.label_names))
                )
            return existing
        metric = factory(name, help_text, label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, label_names)

    def histogram(self, name: str, help_text: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = SECONDS_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, label_names, buckets=buckets
        )

    def collect(self) -> List[_Metric]:
        """Every registered metric, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def expose(self) -> str:
        """Prometheus text exposition of every metric with data."""
        lines: List[str] = []
        for metric in self.collect():
            samples = list(metric.samples())
            if not samples:
                continue
            if metric.help:
                lines.append(
                    "# HELP %s %s" % (metric.name, _escape_help(metric.help))
                )
            lines.append("# TYPE %s %s" % (metric.name, metric.kind))
            for sample_name, suffix, value in samples:
                lines.append(
                    "%s%s %s" % (sample_name, suffix, _format_value(value))
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, float]:
        """A flat ``{sample_key: value}`` map for delta accounting.

        Histograms contribute only their ``_count`` and ``_sum`` rows,
        keeping benchmark-delta records compact.
        """
        flat: Dict[str, float] = {}
        for metric in self.collect():
            rows = (
                metric.summary_samples()
                if isinstance(metric, Histogram)
                else metric.samples()
            )
            for sample_name, suffix, value in rows:
                flat[sample_name + suffix] = value
        return flat

    def delta(self, before: Mapping[str, float]) -> Dict[str, float]:
        """What changed since a :meth:`snapshot`, zero-changes omitted."""
        changes: Dict[str, float] = {}
        for key, value in self.snapshot().items():
            moved = value - before.get(key, 0)
            if moved:
                changes[key] = moved
        return changes

    def reset(self) -> None:
        """Clear every value; registrations survive."""
        for metric in self._metrics.values():
            metric.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __repr__(self) -> str:
        return "Registry(%d metrics)" % len(self._metrics)


#: The process-global registry the production hooks record into.
_REGISTRY = Registry()


def registry() -> Registry:
    """The process-global default registry."""
    return _REGISTRY


_LABEL_VALUE = r"\"(?:[^\"\\]|\\.)*\""  # quoted, backslash escapes allowed
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"              # sample name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE
    + r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE + r")*\})?"
    r" (-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|Inf)|NaN|\+Inf)$"
)
_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_exposition(text: str) -> Dict[str, List[Tuple[str, float]]]:
    """Parse (and so validate) Prometheus text exposition.

    Returns ``{family_name: [(sample_line_key, value), ...]}``.
    Raises :class:`ValueError` on a malformed line, a duplicate
    ``# TYPE`` declaration (duplicate metric name), or a sample that
    belongs to no declared family -- the checks the CI smoke step
    relies on.
    """
    families: Dict[str, List[Tuple[str, float]]] = {}
    declared_kind: Dict[str, str] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError("line %d: malformed TYPE" % line_number)
            _, _, name, kind = parts
            if name in declared_kind:
                raise ValueError(
                    "line %d: duplicate metric name %r" % (line_number, name)
                )
            declared_kind[name] = kind
            families[name] = []
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(
                "line %d: malformed sample %r" % (line_number, line)
            )
        sample_name = match.group(1)
        family = sample_name
        if declared_kind.get(family) is None:
            for suffix in _SUFFIXES:
                if sample_name.endswith(suffix):
                    family = sample_name[: -len(suffix)]
                    break
        if family not in declared_kind:
            raise ValueError(
                "line %d: sample %r has no TYPE declaration"
                % (line_number, sample_name)
            )
        value_text = match.group(3)
        value = float(value_text.replace("Inf", "inf"))
        key = sample_name + (match.group(2) or "")
        families[family].append((key, value))
    return families
