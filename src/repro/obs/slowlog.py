"""Bounded slow-query log with reservoir-sampled normals.

Every digest the obs path produces (:mod:`repro.obs.digest`) is
offered to the process-global :class:`SlowQueryLog`.  Queries at or
over the latency threshold are *always* kept (up to the slow
capacity, oldest evicted first); queries under it enter a classic
Vitter reservoir so the log retains an unbiased sample of normal
traffic for baseline comparison without growing with the workload.

The reservoir uses its own seeded :class:`random.Random` stream, so a
fixed seed plus a fixed workload reproduces the exact same sample --
the determinism contract the chaos tests pin everywhere else applies
to the slow-query log too.

Export is JSONL (one digest per line, sorted keys) consumed by the
``repro obs-report`` CLI, which ranks entries by latency or worst
per-node q-error.
"""

from __future__ import annotations

import json
import os
import random
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.digest import QueryDigest, add_digest_sink

__all__ = ["SlowQueryLog", "slowlog", "configure"]

#: Latency at or above which a query is unconditionally logged.
DEFAULT_THRESHOLD_S = 0.050

#: How many slow entries are retained (oldest evicted first).
DEFAULT_SLOW_CAPACITY = 256

#: Reservoir size for sub-threshold "normal" queries.
DEFAULT_RESERVOIR_SIZE = 64

#: Seed for the reservoir's private random stream.
DEFAULT_SEED = 101


class SlowQueryLog:
    """Threshold log + reservoir sample over query digests."""

    def __init__(
        self,
        threshold_s: float = DEFAULT_THRESHOLD_S,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        seed: int = DEFAULT_SEED,
        path: Optional[str] = None,
    ):
        if slow_capacity < 1 or reservoir_size < 1:
            raise ValueError("slow-query log capacities must be positive")
        self.threshold_s = threshold_s
        self.path = path
        self._slow: deque = deque(maxlen=slow_capacity)
        self._reservoir: List[QueryDigest] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._seed = seed
        self._seen_normal = 0
        self._seen_total = 0

    # -- recording -----------------------------------------------------

    def record(self, digest: QueryDigest) -> None:
        """Offer one digest; slow entries always land, normals sample."""
        self._seen_total += 1
        if digest.wall_s >= self.threshold_s or digest.status != "ok":
            self._slow.append(digest)
            self._sink(digest)
            return
        self._seen_normal += 1
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(digest)
            return
        slot = self._rng.randrange(self._seen_normal)
        if slot < self._reservoir_size:
            self._reservoir[slot] = digest

    def _sink(self, digest: QueryDigest) -> None:
        if self.path is None:
            return
        with open(self.path, "a") as handle:
            handle.write(json.dumps(digest.to_dict(), sort_keys=True) + "\n")

    # -- inspection ----------------------------------------------------

    def slow(self) -> List[QueryDigest]:
        """Threshold-or-error entries, oldest first."""
        return list(self._slow)

    def normals(self) -> List[QueryDigest]:
        """The reservoir sample of sub-threshold queries."""
        return list(self._reservoir)

    def entries(self) -> List[QueryDigest]:
        """Everything retained: slow entries then the reservoir."""
        return list(self._slow) + list(self._reservoir)

    def top(self, n: int = 10, by: str = "latency") -> List[QueryDigest]:
        """The ``n`` worst retained digests by ``latency`` or ``qerror``.

        Ties break on plan hash so the ordering is deterministic even
        when wall times collide (common under a fake clock).
        """
        if by == "latency":
            key = lambda digest: (-digest.wall_s, digest.plan_hash)
        elif by == "qerror":
            key = lambda digest: (-digest.max_q_error(), digest.plan_hash)
        else:
            raise ValueError("sort key must be 'latency' or 'qerror'")
        return sorted(self.entries(), key=key)[:n]

    def stats(self) -> Dict[str, Any]:
        return {
            "seen": self._seen_total,
            "slow": len(self._slow),
            "sampled": len(self._reservoir),
            "threshold_s": self.threshold_s,
            "seed": self._seed,
        }

    # -- export and lifecycle ------------------------------------------

    def export_jsonl(self, destination) -> int:
        """Write every retained digest as JSON lines; returns the count.

        Slow entries first (oldest first), then the reservoir -- each
        line tagged ``"kind": "slow"`` or ``"kind": "sample"`` so the
        report CLI can separate tails from baseline.
        """
        records = [
            dict(digest.to_dict(), kind="slow") for digest in self._slow
        ] + [
            dict(digest.to_dict(), kind="sample")
            for digest in self._reservoir
        ]
        if hasattr(destination, "write"):
            for record in records:
                destination.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            with open(destination, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def reset(self) -> None:
        """Drop all entries and rewind the sampling stream."""
        self._slow.clear()
        self._reservoir = []
        self._rng = random.Random(self._seed)
        self._seen_normal = 0
        self._seen_total = 0

    def __repr__(self) -> str:
        return "SlowQueryLog(%d slow, %d sampled, >=%.3fs)" % (
            len(self._slow), len(self._reservoir), self.threshold_s
        )


#: The process-global log the digest pipeline records into.  A JSONL
#: sink can be attached at import time via ``REPRO_SLOWLOG=<path>``.
_SLOWLOG = SlowQueryLog(path=os.environ.get("REPRO_SLOWLOG") or None)


def slowlog() -> SlowQueryLog:
    """The process-global slow-query log."""
    return _SLOWLOG


def configure(
    threshold_s: Optional[float] = None,
    slow_capacity: Optional[int] = None,
    reservoir_size: Optional[int] = None,
    seed: Optional[int] = None,
    path: Optional[str] = None,
) -> SlowQueryLog:
    """Replace the global log's tuning; existing entries are dropped.

    Only the parameters passed change; the rest keep current values.
    Returns the reconfigured log.
    """
    global _SLOWLOG
    current = _SLOWLOG
    _SLOWLOG = SlowQueryLog(
        threshold_s=(
            current.threshold_s if threshold_s is None else threshold_s
        ),
        slow_capacity=(
            current._slow.maxlen if slow_capacity is None else slow_capacity
        ),
        reservoir_size=(
            current._reservoir_size
            if reservoir_size is None else reservoir_size
        ),
        seed=current._seed if seed is None else seed,
        path=current.path if path is None else path,
    )
    return _SLOWLOG


def _record(digest: QueryDigest) -> None:
    _SLOWLOG.record(digest)


add_digest_sink(_record)
