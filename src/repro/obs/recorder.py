"""Flight recorder: a bounded window of recent events, snapshotted on failure.

The recorder keeps a fixed-size ring of the most recent observability
events -- finished spans, governor cancellations, query digests --
and, whenever a *typed* availability error is constructed (any
:class:`repro.errors.UnavailableError` subclass, or the WAL's
``CorruptLogError``), freezes that window into a structured
**incident record**: the error's class/code/message plus its
structured context attributes, the active trace id, the event window
leading up to the failure, and a small metrics subset (cluster and
governor counters).  Incidents land in a bounded deque and optionally
stream to a JSONL file (``REPRO_INCIDENTS=<path>``), queryable via
``repro obs-incidents``.

Free-when-off is the contract: a disabled recorder installs no
listeners, so span close and error construction each stay at one
global ``None`` check.  Enabling installs the span hook
(:func:`repro.obs.trace.set_span_listener`), the error hook
(:func:`repro.errors.set_error_listener`), and a digest sink; the
governor additionally notifies :func:`notify_gov_event` from its
cancellation path.

Determinism: events carry only span/digest data (deterministic under
a :class:`~repro.obs.trace.FakeClock`) and incident sequence numbers
from a local counter -- no wall clocks, no randomness -- so chaos
incidents are byte-reproducible for a fixed seed.
"""

from __future__ import annotations

import json
import os
from collections import deque
from itertools import count
from typing import Any, Dict, List, Optional

from repro.errors import set_error_listener
from repro.obs.digest import QueryDigest, add_digest_sink, remove_digest_sink
from repro.obs.metrics import registry
from repro.obs.trace import Span, set_span_listener

__all__ = [
    "FlightRecorder",
    "recorder",
    "enable",
    "disable",
    "notify_gov_event",
]

#: Ring capacity: how many recent events an incident window can hold.
DEFAULT_WINDOW = 64

#: How many incident records are retained (oldest evicted first).
DEFAULT_INCIDENT_CAPACITY = 32

#: Structured context attributes lifted off typed errors, in render
#: order.  Matches the constructor signatures in :mod:`repro.errors`
#: plus the WAL's ``CorruptLogError`` payloads.
_ERROR_CONTEXT_ATTRS = (
    "elapsed_s", "timeout_s", "site",
    "resource", "spent", "limit",
    "in_flight", "capacity", "retry_after_s", "reason",
    "table", "bucket", "node", "retry_after_ops", "replicas",
    "frame", "session_id", "request_id",
    "tables", "read_version", "committed_version",
)

#: Metric families included in incident snapshots.
_INCIDENT_METRIC_PREFIXES = ("repro_cluster", "repro_gov")


def _span_event(span: Span) -> Dict[str, Any]:
    return {
        "event": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "attrs": dict(span.attrs),
    }


class FlightRecorder:
    """Ring buffer of recent events + incident snapshots on typed errors."""

    def __init__(self, window: int = DEFAULT_WINDOW,
                 incident_capacity: int = DEFAULT_INCIDENT_CAPACITY,
                 path: Optional[str] = None):
        if window < 1 or incident_capacity < 1:
            raise ValueError("flight recorder capacities must be positive")
        self.path = path
        self._ring: deque = deque(maxlen=window)
        self._incidents: deque = deque(maxlen=incident_capacity)
        self._seq = count(1)
        self._installed = False
        self._prev_span_listener = None
        self._prev_error_listener = None
        self._in_snapshot = False

    # -- event intake --------------------------------------------------

    def on_span(self, span: Span) -> None:
        self._ring.append(_span_event(span))

    def on_digest(self, digest: QueryDigest) -> None:
        self._ring.append(
            {
                "event": "digest",
                "plan_hash": digest.plan_hash,
                "describe": digest.describe,
                "status": digest.status,
                "wall_s": digest.wall_s,
                "backend": digest.backend,
                "trace_id": digest.trace_id,
            }
        )

    def on_gov_event(self, kind: str, detail: Dict[str, Any]) -> None:
        record = {"event": "gov", "kind": kind}
        record.update(detail)
        self._ring.append(record)

    # -- incident snapshot ---------------------------------------------

    def on_error(self, error: Exception) -> None:
        """Freeze the current window into an incident record.

        Reentrancy-guarded: a listener-induced error while we snapshot
        (or a typed error constructed *by* metric code) must not
        recurse into a second snapshot.
        """
        if self._in_snapshot:
            return
        self._in_snapshot = True
        try:
            self._incidents.append(self._snapshot(error))
        finally:
            self._in_snapshot = False

    def _snapshot(self, error: Exception) -> Dict[str, Any]:
        context: Dict[str, Any] = {}
        for attr in _ERROR_CONTEXT_ATTRS:
            value = getattr(error, attr, None)
            if value is not None:
                context[attr] = (
                    list(value) if isinstance(value, tuple) else value
                )
        trace_id = None
        for event in reversed(self._ring):
            if event["event"] == "span":
                candidate = event["attrs"].get("trace_id")
            else:
                candidate = event.get("trace_id")
            if candidate is not None:
                trace_id = candidate
                break
        metrics = {
            key: value
            for key, value in sorted(registry().snapshot().items())
            if key.startswith(_INCIDENT_METRIC_PREFIXES)
        }
        incident = {
            "seq": next(self._seq),
            "error": {
                "type": type(error).__name__,
                "code": getattr(error, "code", None),
                "message": str(error),
                "context": context,
            },
            "trace_id": trace_id,
            "window": list(self._ring),
            "metrics": metrics,
        }
        if self.path is not None:
            with open(self.path, "a") as handle:
                handle.write(json.dumps(incident, sort_keys=True) + "\n")
        return incident

    # -- lifecycle -----------------------------------------------------

    def install(self) -> None:
        """Hook span close, error construction, and the digest stream."""
        if self._installed:
            return
        self._prev_span_listener = set_span_listener(self.on_span)
        self._prev_error_listener = set_error_listener(self.on_error)
        add_digest_sink(self.on_digest)
        self._installed = True

    def uninstall(self) -> None:
        """Restore the previous listeners; the window survives."""
        if not self._installed:
            return
        set_span_listener(self._prev_span_listener)
        set_error_listener(self._prev_error_listener)
        remove_digest_sink(self.on_digest)
        self._prev_span_listener = None
        self._prev_error_listener = None
        self._installed = False

    @property
    def installed(self) -> bool:
        return self._installed

    # -- inspection and export -----------------------------------------

    def window(self) -> List[Dict[str, Any]]:
        """The current ring contents, oldest first."""
        return list(self._ring)

    def incidents(self) -> List[Dict[str, Any]]:
        """Retained incident records, oldest first."""
        return list(self._incidents)

    def export_jsonl(self, destination) -> int:
        """Write retained incidents as JSON lines; returns the count."""
        records = list(self._incidents)
        if hasattr(destination, "write"):
            for record in records:
                destination.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            with open(destination, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def reset(self) -> None:
        """Drop the window, incidents, and sequence numbering."""
        self._ring.clear()
        self._incidents.clear()
        self._seq = count(1)

    def __repr__(self) -> str:
        return "FlightRecorder(%d events, %d incidents%s)" % (
            len(self._ring), len(self._incidents),
            ", installed" if self._installed else ""
        )


#: The process-global recorder; inert until :func:`enable` installs it.
_RECORDER = FlightRecorder(
    path=os.environ.get("REPRO_INCIDENTS") or None
)


def recorder() -> FlightRecorder:
    """The process-global flight recorder (may be uninstalled)."""
    return _RECORDER


def enable() -> FlightRecorder:
    """Install the global recorder's hooks; idempotent."""
    _RECORDER.install()
    return _RECORDER


def disable() -> FlightRecorder:
    """Remove the hooks (window and incidents are kept); idempotent."""
    _RECORDER.uninstall()
    return _RECORDER


def notify_gov_event(kind: str, detail: Dict[str, Any]) -> None:
    """Governor-side hook: record a governance event when enabled.

    The governor calls this from its (already obs-gated) cancellation
    path; when the recorder is not installed this is a cheap no-op.
    """
    if _RECORDER._installed:
        _RECORDER.on_gov_event(kind, detail)
