"""Planner feedback loop: executed cardinalities correct future plans.

Classic cost-based planning is open-loop: ANALYZE measures once, every
plan after that trusts the snapshot.  This module closes the loop
using the digests the observability path already produces
(:mod:`repro.obs.digest`): whenever an executed plan node's q-error
exceeds a threshold, the *actual* cardinality is written back into the
:class:`~repro.relational.stats.StatsCatalog` as a bounded overlay
correction -- never mutating the ANALYZE ground truth -- so the next
plan over the same shape estimates from evidence.

Two kinds of corrections are learned, both anchored at base relations
(where the estimator can reuse them):

* **Scan row counts** -- the relation's live cardinality, when the
  catalog's row count has drifted;
* **equality-predicate cardinalities** -- keyed by
  :func:`~repro.relational.stats.feedback_key` over a ``SelectEq``
  directly above a ``Scan``, exactly the shape the estimator consults.

Repeated *severe* misestimates (q-error >=
:data:`SEVERE_QERROR`, :data:`SEVERE_STRIKES` strikes) additionally
force the relation's catalog entry stale via
:meth:`~repro.relational.stats.StatsCatalog.mark_stale`, steering the
owner toward a fresh ANALYZE; :meth:`FeedbackLoop.reanalyze_stale`
runs it on demand.

Safety: feedback only ever changes *estimates*, and estimates only
steer plan choice among algebraically equivalent plans -- the
Hypothesis property in ``tests/obs/test_feedback.py`` pins
feedback-on answers equal to feedback-off answers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.digest import QueryDigest

__all__ = [
    "FeedbackLoop",
    "QERROR_THRESHOLD",
    "SEVERE_QERROR",
    "SEVERE_STRIKES",
]

#: Per-node q-error at or above which a correction is recorded.
QERROR_THRESHOLD = 2.0

#: A q-error at or above this counts as a *severe* strike...
SEVERE_QERROR = 10.0

#: ...and this many strikes force the relation's entry stale.
SEVERE_STRIKES = 3


class FeedbackLoop:
    """Consumes digests, writes overlay corrections into the catalog."""

    def __init__(
        self,
        db,
        qerror_threshold: float = QERROR_THRESHOLD,
        severe_qerror: float = SEVERE_QERROR,
        severe_strikes: int = SEVERE_STRIKES,
    ):
        if qerror_threshold < 1.0:
            raise ValueError("q-error thresholds start at 1.0 (perfect)")
        self._db = db
        self.qerror_threshold = qerror_threshold
        self.severe_qerror = severe_qerror
        self.severe_strikes = severe_strikes
        self._strikes: Dict[str, int] = {}
        self.corrections = 0
        self.marked_stale: List[str] = []

    # -- intake ---------------------------------------------------------

    def consume(self, digest: QueryDigest) -> int:
        """Learn from one digest; returns corrections recorded.

        Only nodes carrying both an estimate and a base-relation
        anchor (``relation``, optionally ``conditions``) are
        considered; failed queries still teach (their completed nodes
        measured real cardinalities before the error).
        """
        catalog = self._db.stats
        recorded = 0
        for node in digest.nodes:
            error = node.get("q_error")
            relation = node.get("relation")
            if error is None or relation is None:
                continue
            if error < self.qerror_threshold:
                continue
            actual = int(node.get("actual_rows", node.get("rows", 0)))
            key = node.get("conditions")
            catalog.record_feedback(relation, key, actual)
            recorded += 1
            if error >= self.severe_qerror:
                strikes = self._strikes.get(relation, 0) + 1
                self._strikes[relation] = strikes
                if strikes >= self.severe_strikes and \
                        not catalog.is_stale(relation):
                    catalog.mark_stale(relation)
                    self.marked_stale.append(relation)
        self.corrections += recorded
        return recorded

    # -- maintenance ----------------------------------------------------

    def reanalyze_stale(self, seed: int = 0) -> List[str]:
        """Re-ANALYZE every stale relation; returns the names refreshed.

        This is the loop's closing arc: corrections accumulate, severe
        ones force staleness, and a fresh ANALYZE replaces both the
        drifted ground truth *and* (by catalog contract) drops the
        overlay entries it supersedes.
        """
        catalog = self._db.stats
        refreshed = []
        for name in catalog.stale_names():
            if name not in self._db.names():
                continue
            self._db.stats.analyze(name, self._db.relation(name), seed=seed)
            self._strikes.pop(name, None)
            refreshed.append(name)
        return refreshed

    def stats(self) -> Dict[str, Any]:
        return {
            "corrections": self.corrections,
            "overlay": len(self._db.stats.feedback_entries()),
            "strikes": dict(self._strikes),
            "marked_stale": list(self.marked_stale),
        }

    def __repr__(self) -> str:
        return "FeedbackLoop(%d corrections, %d strikes)" % (
            self.corrections, sum(self._strikes.values())
        )
