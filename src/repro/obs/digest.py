"""Execution digests: one compact, structured record per query.

A :class:`QueryDigest` is the after-the-fact answer to "what did this
query actually do": the canonical plan hash, per-node estimated vs
actual cardinalities with q-errors, which kernel backend served each
operator (columnar sorted runs or the row model), the governor events
that fired (checkpoints, budget spent, the shed/deadline outcome),
and the wall/simulated latency.  Digests are built from the span tree
:func:`repro.relational.profile.execute_spanned` already records, so
there is no second measurement substrate to drift -- the digest *is*
a projection of the trace.

Digests feed three consumers:

* the slow-query log (:mod:`repro.obs.slowlog`) keeps the worst and a
  reservoir of the rest, exported as JSONL for ``repro obs-report``;
* the planner feedback loop (:mod:`repro.obs.feedback`) turns
  per-node q-error blowouts into cardinality corrections for
  :class:`repro.relational.stats.StatsCatalog`;
* the flight recorder (:mod:`repro.obs.recorder`) keeps recent
  digests in its ring so incident records show what ran just before
  a failure.

Everything here is deterministic given deterministic spans: the plan
hash is a CRC-32 of the canonical ``explain()`` text and node records
preserve span order, so two identical runs digest identically.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional

from repro.obs.trace import Span

__all__ = [
    "QueryDigest",
    "build_digest",
    "plan_hash",
    "record_digest",
    "add_digest_sink",
    "remove_digest_sink",
]

#: Span attributes copied verbatim into each digest node record when
#: present.  ``relation``/``conditions`` let the feedback loop map a
#: misestimate back to catalog entries without re-parsing span names.
_NODE_ATTRS = (
    "node", "relation", "conditions", "backend",
    "est_rows", "q_error", "gov_died_at", "gov_checkpoints",
)


def plan_hash(explain_text: str) -> str:
    """Canonical plan hash: CRC-32 of the ``explain()`` rendering.

    Two structurally identical plans hash identically across runs and
    machines (the explain text is deterministic), so the slow-query
    log can group recurring query shapes under one key.
    """
    return "%08x" % (zlib.crc32(explain_text.encode("utf-8")) & 0xFFFFFFFF)


class QueryDigest:
    """One executed query, compactly: plan, cardinalities, governance.

    ``nodes`` is a flat pre-order list (parents before children, span
    order) of per-operator records; ``gov`` aggregates governor
    events; ``status`` is ``"ok"`` or the typed error code the query
    died with.  :meth:`to_dict` is the JSONL wire format the CLI and
    CI artifacts consume.
    """

    __slots__ = (
        "describe", "plan_hash", "nodes", "backend", "gov",
        "wall_s", "status", "trace_id", "rows",
    )

    def __init__(
        self,
        describe: str,
        hash_value: str,
        nodes: List[Dict[str, Any]],
        backend: str,
        gov: Dict[str, Any],
        wall_s: float,
        status: str = "ok",
        trace_id: Optional[str] = None,
        rows: int = 0,
    ):
        self.describe = describe
        self.plan_hash = hash_value
        self.nodes = nodes
        self.backend = backend
        self.gov = gov
        self.wall_s = wall_s
        self.status = status
        self.trace_id = trace_id
        self.rows = rows

    def max_q_error(self) -> float:
        """The worst per-node q-error (1.0 when none was recorded)."""
        worst = 1.0
        for node in self.nodes:
            error = node.get("q_error")
            if error is not None and error > worst:
                worst = float(error)
        return worst

    def to_dict(self) -> Dict[str, Any]:
        return {
            "describe": self.describe,
            "plan_hash": self.plan_hash,
            "nodes": [dict(node) for node in self.nodes],
            "backend": self.backend,
            "gov": dict(self.gov),
            "wall_s": self.wall_s,
            "status": self.status,
            "trace_id": self.trace_id,
            "rows": self.rows,
            "max_q_error": self.max_q_error(),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "QueryDigest":
        return cls(
            record.get("describe", ""),
            record.get("plan_hash", ""),
            [dict(node) for node in record.get("nodes", ())],
            record.get("backend", "row"),
            dict(record.get("gov", {})),
            float(record.get("wall_s", 0.0)),
            status=record.get("status", "ok"),
            trace_id=record.get("trace_id"),
            rows=int(record.get("rows", 0)),
        )

    def __repr__(self) -> str:
        return "QueryDigest(%s, %s, %d nodes, q<=%.2f)" % (
            self.plan_hash, self.status, len(self.nodes), self.max_q_error()
        )


def _walk(span: Span, nodes: List[Dict[str, Any]], depth: int) -> None:
    record: Dict[str, Any] = {
        "describe": span.name,
        "depth": depth,
        "rows": int(span.attrs.get("rows", 0)),
    }
    for attr in _NODE_ATTRS:
        value = span.attrs.get(attr)
        if value is not None:
            record[attr] = value
    est = record.get("est_rows")
    if est is not None:
        record["actual_rows"] = record["rows"]
    nodes.append(record)
    for child in span.children:
        _walk(child, nodes, depth + 1)


def build_digest(
    root: Span,
    hash_value: str,
    describe: str = "",
    status: str = "ok",
    gov: Optional[Dict[str, Any]] = None,
    trace_id: Optional[str] = None,
) -> QueryDigest:
    """Project one finished span tree into a :class:`QueryDigest`.

    The backend is ``"columnar"`` when any operator span recorded a
    columnar backend attribute, else ``"row"`` -- matching the sticky
    promotion rule of the dispatch (one encoded scan pulls the whole
    subtree onto the batch kernels).
    """
    nodes: List[Dict[str, Any]] = []
    _walk(root, nodes, 0)
    backend = (
        "columnar"
        if any(node.get("backend") == "columnar" for node in nodes)
        else "row"
    )
    return QueryDigest(
        describe or root.name,
        hash_value,
        nodes,
        backend,
        dict(gov or {}),
        root.duration_s,
        status=status,
        trace_id=trace_id,
        rows=nodes[0]["rows"] if nodes else 0,
    )


#: Registered digest consumers, called in registration order with each
#: produced digest.  The slow-query log registers itself on module
#: import; the feedback loop and flight recorder register on enable.
_SINKS: List[Callable[[QueryDigest], None]] = []


def add_digest_sink(sink: Callable[[QueryDigest], None]) -> None:
    if sink not in _SINKS:
        _SINKS.append(sink)


def remove_digest_sink(sink: Callable[[QueryDigest], None]) -> None:
    if sink in _SINKS:
        _SINKS.remove(sink)


def record_digest(digest: QueryDigest) -> None:
    """Fan one digest out to every registered consumer."""
    for sink in _SINKS:
        sink(digest)
