"""Unified observability: tracing, metrics, digests, and their exports.

Every measurement path in the reproduction reports through this one
zero-dependency subsystem:

=================  ===================================================
module             contents
=================  ===================================================
``trace``          :class:`Span` / :class:`Tracer` -- explicit-clock
                   span trees, ring buffer, tree render, JSON lines;
                   :class:`TraceContext` for causal propagation
``metrics``        :class:`Registry` of counters, gauges and
                   fixed-bucket histograms (with exemplar links);
                   Prometheus exposition
``instrument``     the ``REPRO_OBS`` gate and the kernel-op hook
``digest``         :class:`QueryDigest` -- one structured record per
                   executed query (plan hash, per-node q-errors,
                   backend, governance, latency)
``slowlog``        bounded slow-query log: threshold-kept tails plus
                   a seeded reservoir of normals, JSONL export
``recorder``       flight recorder: ring of recent events, snapshotted
                   into incident records on typed failures
``feedback``       planner feedback loop (imported explicitly as
                   :mod:`repro.obs.feedback` -- it depends on the
                   relational layer, so it is *not* re-exported here)
=================  ===================================================

Who hangs off it: the XST kernel (op counts, cardinalities, latency
histograms), the relational profiler (EXPLAIN-ANALYZE span trees),
the simulated cluster (per-bucket read spans with retry/failover
attributes and causal trace ids; ``NetworkStats`` mirrored as
counters), the CLI (``repro obs-metrics`` / ``obs-trace`` /
``obs-report`` / ``obs-incidents``) and the benchmark harness
(registry deltas into the benchmark JSON).

Default off: set ``REPRO_OBS=1`` (or call
:func:`repro.obs.set_enabled`) to record.  See
``docs/observability.md`` for the span model and naming scheme.
"""

from repro.obs import metrics, trace
from repro.obs.digest import (
    QueryDigest,
    add_digest_sink,
    build_digest,
    plan_hash,
    record_digest,
    remove_digest_sink,
)
from repro.obs.instrument import enabled, kernel_op, observed, set_enabled
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    parse_exposition,
    registry,
)
from repro.obs.recorder import FlightRecorder, recorder
from repro.obs.slowlog import SlowQueryLog, slowlog
from repro.obs.trace import (
    FakeClock,
    Span,
    TraceContext,
    Tracer,
    set_span_listener,
    tracer,
)

__all__ = [
    # switches
    "enabled",
    "set_enabled",
    "observed",
    "kernel_op",
    # tracing
    "Span",
    "TraceContext",
    "Tracer",
    "FakeClock",
    "tracer",
    "set_span_listener",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "registry",
    "parse_exposition",
    # digests and their consumers
    "QueryDigest",
    "plan_hash",
    "build_digest",
    "record_digest",
    "add_digest_sink",
    "remove_digest_sink",
    "SlowQueryLog",
    "slowlog",
    "FlightRecorder",
    "recorder",
    # submodules
    "metrics",
    "trace",
]
