"""Unified observability: tracing, metrics, and their exports.

Every measurement path in the reproduction reports through this one
zero-dependency subsystem:

=================  ===================================================
module             contents
=================  ===================================================
``trace``          :class:`Span` / :class:`Tracer` -- explicit-clock
                   span trees, ring buffer, tree render, JSON lines
``metrics``        :class:`Registry` of counters, gauges and
                   fixed-bucket histograms; Prometheus exposition
``instrument``     the ``REPRO_OBS`` gate and the kernel-op hook
=================  ===================================================

Who hangs off it: the XST kernel (op counts, cardinalities, latency
histograms), the relational profiler (EXPLAIN-ANALYZE span trees),
the simulated cluster (per-bucket read spans with retry/failover
attributes; ``NetworkStats`` mirrored as counters), the CLI
(``repro obs-metrics`` / ``repro obs-trace`` / ``--trace-out``) and
the benchmark harness (registry deltas into the benchmark JSON).

Default off: set ``REPRO_OBS=1`` (or call
:func:`repro.obs.set_enabled`) to record.  See
``docs/observability.md`` for the span model and naming scheme.
"""

from repro.obs import metrics, trace
from repro.obs.instrument import enabled, kernel_op, observed, set_enabled
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    parse_exposition,
    registry,
)
from repro.obs.trace import FakeClock, Span, Tracer, tracer

__all__ = [
    # switches
    "enabled",
    "set_enabled",
    "observed",
    "kernel_op",
    # tracing
    "Span",
    "Tracer",
    "FakeClock",
    "tracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "registry",
    "parse_exposition",
    # submodules
    "metrics",
    "trace",
]
