"""The classical (CST) baseline layer.

Everything the paper attributes to classical set theory, implemented
on plain Python sets so the XST kernel has an independent ground truth
to be validated against:

* :mod:`repro.cst.pairs` -- Kuratowski ordered pairs (and their
  operand problems, per Skolem / reference [5]);
* :mod:`repro.cst.relations` -- Defs 3.1-3.6: restriction, 1-/2-domain
  and both image constructions over pair relations;
* :mod:`repro.cst.functions` -- Defs 3.2/3.9 element functions and the
  Theorem 9.10 bridge into XST processes.
"""

from repro.cst.functions import CSTFunction
from repro.cst.pairs import is_kpair, kfirst, kpair, ksecond, ktuple, kunpair
from repro.cst.relations import (
    Relation,
    domain_1,
    domain_2,
    image,
    image_constructive,
    inverse,
    is_function,
    is_injective,
    is_onto,
    is_total_on,
    relative_product,
    restriction,
)

__all__ = [
    "CSTFunction",
    "kpair",
    "kunpair",
    "kfirst",
    "ksecond",
    "is_kpair",
    "ktuple",
    "Relation",
    "restriction",
    "domain_1",
    "domain_2",
    "image",
    "image_constructive",
    "inverse",
    "relative_product",
    "is_function",
    "is_injective",
    "is_total_on",
    "is_onto",
]
