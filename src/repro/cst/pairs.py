"""Classical ordered pairs, the Kuratowski way.

CST builds the ordered pair as nested unordered sets::

    <x, y> = { {x}, {x, y} }

This module implements that encoding over ``frozenset`` so the library
can demonstrate, concretely, the operand problems Skolem raised and
the paper cites (reference [5]): the encoding is not *flat* (pair
components live two membership levels down), tuples-as-nested-pairs
are not associative, and ``<x, x>`` degenerates to ``{{x}}``.  The XST
tuple (Def 9.1) removes all three wrinkles, and the tests compare the
two encodings side by side.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Tuple

from repro.errors import NotATupleError

__all__ = ["kpair", "kfirst", "ksecond", "kunpair", "is_kpair", "ktuple"]


def kpair(x: Any, y: Any) -> FrozenSet:
    """The Kuratowski pair ``{{x}, {x, y}}``."""
    return frozenset({frozenset({x}), frozenset({x, y})})


def is_kpair(candidate: Any) -> bool:
    """Recognize the Kuratowski pair shape."""
    if not isinstance(candidate, frozenset) or not 1 <= len(candidate) <= 2:
        return False
    if not all(isinstance(part, frozenset) for part in candidate):
        return False
    parts = sorted(candidate, key=len)
    if len(candidate) == 1:
        # <x, x> collapses to {{x}}.
        return len(parts[0]) == 1
    if len(parts[0]) != 1 or len(parts[1]) != 2:
        return False
    return parts[0] <= parts[1]


def kunpair(pair: FrozenSet) -> Tuple[Any, Any]:
    """Recover ``(x, y)`` from a Kuratowski pair."""
    if not is_kpair(pair):
        raise NotATupleError("%r is not a Kuratowski pair" % (pair,))
    parts = sorted(pair, key=len)
    if len(parts) == 1:
        (x,) = parts[0]
        return (x, x)
    (x,) = parts[0]
    (y,) = parts[1] - parts[0]
    return (x, y)


def kfirst(pair: FrozenSet) -> Any:
    return kunpair(pair)[0]


def ksecond(pair: FrozenSet) -> Any:
    return kunpair(pair)[1]


def ktuple(items: Tuple) -> Any:
    """An n-tuple as right-nested Kuratowski pairs.

    ``ktuple((a, b, c)) = kpair(a, kpair(b, c))`` -- the classical
    encoding whose non-associativity motivates Def 9.1.  A 1-tuple is
    its bare item; the empty tuple is rejected, as CST has no
    canonical 0-tuple.
    """
    if not items:
        raise NotATupleError("CST has no canonical empty tuple")
    if len(items) == 1:
        return items[0]
    return kpair(items[0], ktuple(items[1:]))
