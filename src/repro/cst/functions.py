"""Classical functions (Defs 3.2 / 3.9) and the CST <-> XST bridge.

A CST function is a single-valued relation used element-at-a-time:
``f(a) = b  <=>  f[{a}] = {b}`` (Def 3.2).  :class:`CSTFunction` wraps
that reading with dict-backed evaluation, classical composition, and
conversions to and from the XST encodings, realizing Theorem 9.10's
claim that every CST element function is representable as an XST
set-based function.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from repro.errors import NotAFunctionError
from repro.cst.relations import image, is_function
from repro.core.process import Process
from repro.core.sigma import Sigma
from repro.xst.builders import xpair, xset
from repro.xst.values import classical_call
from repro.xst.xset import XSet

__all__ = ["CSTFunction"]


class CSTFunction:
    """An element-to-element function over a finite graph."""

    __slots__ = ("_mapping",)

    def __init__(self, graph: Iterable[Tuple[Any, Any]]):
        pairs = list(graph)
        if not is_function(pairs):
            raise NotAFunctionError(
                "graph maps some element to several values; not a CST function"
            )
        object.__setattr__(self, "_mapping", dict(pairs))

    def __setattr__(self, name, value):
        raise AttributeError("CSTFunction instances are immutable")

    # -- evaluation ----------------------------------------------------

    def __call__(self, argument: Any) -> Any:
        """Def 3.2: ``f(a) = b  <=>  f[{a}] = {b}``."""
        try:
            return self._mapping[argument]
        except KeyError:
            raise NotAFunctionError(
                "%r is outside this function's domain" % (argument,)
            ) from None

    def image(self, arguments: Iterable[Any]) -> frozenset:
        """Def 3.1 image of a set of arguments."""
        return image(self._mapping.items(), set(arguments))

    # -- structure -----------------------------------------------------

    @property
    def graph(self) -> frozenset:
        return frozenset(self._mapping.items())

    def domain(self) -> frozenset:
        return frozenset(self._mapping)

    def codomain(self) -> frozenset:
        return frozenset(self._mapping.values())

    def compose(self, inner: "CSTFunction") -> "CSTFunction":
        """Classical ``self o inner`` (defined where the chain is)."""
        pairs = []
        for x, middle in inner._mapping.items():
            if middle in self._mapping:
                pairs.append((x, self._mapping[middle]))
        return CSTFunction(pairs)

    # -- the Theorem 9.10 bridge ----------------------------------------

    def to_xst(self) -> Process:
        """Encode as the XST process ``f_(<<1>, <2>>)`` over pair tuples."""
        graph = xset(xpair(x, y) for x, y in self._mapping.items())
        return Process(graph, Sigma.columns([1], [2]))

    def call_via_xst(self, argument: Any) -> Any:
        """Theorem 9.10: ``f(x) = V( f_(sigma)({<x>}) )``.

        Evaluates through the full XST pipeline (restriction, domain,
        value extraction); tests assert it agrees with ``__call__`` on
        every domain element.
        """
        return classical_call(self.to_xst().graph, argument)

    @classmethod
    def from_xst(cls, process: Process) -> "CSTFunction":
        """Decode a pair-relation process back to an element function."""
        pairs = []
        for member, _ in process.graph.pairs():
            if not isinstance(member, XSet) or member.tuple_length() != 2:
                raise NotAFunctionError(
                    "process graph member %r is not an ordered pair" % (member,)
                )
            pairs.append(member.as_tuple())
        return cls(pairs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSTFunction):
            return NotImplemented
        return self._mapping == other._mapping

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(("repro.CSTFunction", self.graph))

    def __len__(self) -> int:
        return len(self._mapping)

    def __repr__(self) -> str:
        return "CSTFunction(%d pairs)" % len(self._mapping)
