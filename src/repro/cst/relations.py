"""Classical relations: the CST baseline of Definitions 3.1 - 3.6.

A relation here is a ``frozenset`` of 2-tuples -- the pragmatic
classical encoding (Kuratowski pairs are available in
:mod:`repro.cst.pairs` for the foundational comparisons; using them
for bulk operations would only obscure the algorithms).

These operations are the paper's *own* baseline: Defs 3.1-3.6 define
the classical Image as the 2-Domain of the Restriction, and the XST
versions must collapse to these when sigma is ``<<1>, <2>>``.  The
test suite cross-validates every XST kernel operation against this
module, and the benchmarks use it as the element-at-a-time comparison
point.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Tuple

__all__ = [
    "Relation",
    "restriction",
    "domain_1",
    "domain_2",
    "image",
    "image_constructive",
    "inverse",
    "relative_product",
    "is_function",
    "is_injective",
    "is_total_on",
    "is_onto",
]

Relation = FrozenSet[Tuple[Any, Any]]


def restriction(r: Iterable[Tuple[Any, Any]], a: Set) -> Relation:
    """Def 3.3: ``R | A`` -- pairs whose first component lies in ``A``."""
    return frozenset(pair for pair in r if pair[0] in a)


def domain_1(r: Iterable[Tuple[Any, Any]]) -> FrozenSet:
    """Def 3.4: the set of first components."""
    return frozenset(x for x, _ in r)


def domain_2(r: Iterable[Tuple[Any, Any]]) -> FrozenSet:
    """Def 3.5: the set of second components."""
    return frozenset(y for _, y in r)


def image(r: Iterable[Tuple[Any, Any]], a: Set) -> FrozenSet:
    """Def 3.1: ``R[A] = { y : exists x in A with (x, y) in R }``."""
    return frozenset(y for x, y in r if x in a)


def image_constructive(r: Iterable[Tuple[Any, Any]], a: Set) -> FrozenSet:
    """Def 3.6: ``R[A] = D_2(R | A)`` -- the two-step construction.

    Extensionally identical to :func:`image`; kept separate so tests
    can assert Def 3.1 == Def 3.6 and benchmarks can weigh the
    two-pass cost.
    """
    return domain_2(restriction(r, a))


def inverse(r: Iterable[Tuple[Any, Any]]) -> Relation:
    """The converse relation ``{ (y, x) : (x, y) in R }``."""
    return frozenset((y, x) for x, y in r)


def relative_product(
    r: Iterable[Tuple[Any, Any]], s: Iterable[Tuple[Any, Any]]
) -> Relation:
    """CST relative product: ``{<a,b>}/{<b,c>} = {<a,c>}`` (section 10)."""
    by_first: Dict[Any, List[Any]] = {}
    for x, y in s:
        by_first.setdefault(x, []).append(y)
    out = set()
    for a, b in r:
        for c in by_first.get(b, ()):
            out.add((a, c))
    return frozenset(out)


def is_function(r: Iterable[Tuple[Any, Any]]) -> bool:
    """No first component maps to two distinct second components."""
    seen: Dict[Any, Any] = {}
    for x, y in r:
        if x in seen and seen[x] != y:
            return False
        seen[x] = y
    return True


def is_injective(r: Iterable[Tuple[Any, Any]]) -> bool:
    """A function whose converse is also a function."""
    return is_function(r) and is_function(inverse(r))


def is_total_on(r: Iterable[Tuple[Any, Any]], a: Set) -> bool:
    """Defined ON ``A``: first components cover ``A`` exactly."""
    return domain_1(r) == frozenset(a)


def is_onto(r: Iterable[Tuple[Any, Any]], b: Set) -> bool:
    """ONTO ``B``: second components cover ``B`` exactly."""
    return domain_2(r) == frozenset(b)
