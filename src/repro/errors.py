"""Exception hierarchy for the XST reproduction.

Every error raised by this library derives from :class:`XSTError`, so
callers can catch one type to guard against any library failure.  The
subclasses mirror the layers of the system:

* :class:`InvalidAtomError` -- a value that cannot participate in an
  extended set was used as an element or scope (kernel layer).
* :class:`NotATupleError` -- an operation that requires Def 9.1 n-tuples
  (consecutive integer scopes ``1..n``) received a non-tuple.
* :class:`NotAProcessError` -- a (set, sigma) pair fails the Def 2.1
  well-formedness condition for processes.
* :class:`NotAFunctionError` -- a process violates the Def 8.2
  single-valuedness requirement where a function is demanded.
* :class:`AmbiguousValueError` -- Def 9.8/9.9 value extraction found
  zero or several candidate values.
* :class:`CompositionError` -- Def 11.1 composition was requested for
  processes that are not compositable.
* :class:`SchemaError` -- relational layer: rows do not match the
  declared heading, or an operation references unknown attributes.
* :class:`NotationError` -- the paper-notation parser rejected its
  input.
* :class:`UnavailableError` -- the shared base of every "no correct
  answer can be given *right now*" failure: the resource-governance
  family (:class:`DeadlineExceededError`, :class:`BudgetExceededError`,
  :class:`OverloadedError`, :class:`CircuitOpenError`), the
  distributed layer's :class:`ClusterUnavailableError` and
  :class:`ShardMovedError`, and the serving layer's
  :class:`NetworkError`, :class:`SessionError` and
  :class:`WriteConflictError`.  Each carries structured context
  (elapsed vs budget, node id, retry-after, frame offset, conflicting
  tables) and a stable ``.code`` / ``.exit_code`` pair the CLI maps to
  distinct process exit codes -- scripts can branch on the failure
  class without parsing messages.
* :class:`ShardPlacementError` -- the shard catalog is internally
  inconsistent (a bucket owned by two epochs, a torn rebalance, an
  anti-entropy digest mismatch).  Unlike the transient family this is
  *damage*, not load: it shares the stable ``code``/``exit_code``
  contract so ``repro fsck`` can report placement corruption
  distinctly, and construction notifies the flight recorder.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

#: Optional hook fired when a *typed availability* error is
#: constructed (any :class:`UnavailableError` subclass, plus the WAL's
#: ``CorruptLogError``, which calls :func:`notify_error` itself).  The
#: flight recorder (:mod:`repro.obs.recorder`) installs itself here to
#: snapshot diagnostic context at the moment of failure; ``None``
#: keeps error construction at one extra global read.
_ERROR_LISTENER: Optional[Callable[[Exception], None]] = None


def set_error_listener(
    listener: Optional[Callable[[Exception], None]],
) -> Optional[Callable[[Exception], None]]:
    """Install (or clear, with ``None``) the typed-error hook.

    Returns the previous listener.  The listener must not raise and
    must not construct typed errors of its own (no reentrancy guard
    is taken on this hot-adjacent path).
    """
    global _ERROR_LISTENER
    previous = _ERROR_LISTENER
    _ERROR_LISTENER = listener
    return previous


def notify_error(error: Exception) -> None:
    """Fire the typed-error hook (no-op when none is installed)."""
    listener = _ERROR_LISTENER
    if listener is not None:
        listener(error)


class XSTError(Exception):
    """Base class for all errors raised by this library."""


class UnavailableError(XSTError, RuntimeError):
    """Base of transient "no correct answer right now" failures.

    Subclasses never stand in for a *wrong* answer: they are raised in
    place of data whenever deadlines, budgets, admission control, open
    circuit breakers, or replica loss make a correct answer
    unobtainable.  Every subclass pins:

    * ``code`` -- a stable machine-readable failure class;
    * ``exit_code`` -- the process exit code ``python -m repro`` uses
      for this class (generic errors exit 2);
    * ``retry_after_s`` -- a hint (possibly ``None``) for when a retry
      could succeed.

    Construction notifies the flight-recorder hook (see
    :func:`set_error_listener`); subclasses set their structured
    context attributes *before* chaining to ``super().__init__``, so
    the listener always sees a fully-populated error.
    """

    code = "UNAVAILABLE"
    exit_code = 10
    retry_after_s: Optional[float] = None

    def __init__(self, *args: Any):
        super().__init__(*args)
        if _ERROR_LISTENER is not None:
            _ERROR_LISTENER(self)


class InvalidAtomError(XSTError, TypeError):
    """An unusable (unhashable or reserved) value was offered as an atom."""


class NotATupleError(XSTError, ValueError):
    """An extended set without Def 9.1 tuple shape was used as a tuple."""


class NotAProcessError(XSTError, ValueError):
    """A (set, sigma) pair violates Def 2.1 process well-formedness."""


class NotAFunctionError(XSTError, ValueError):
    """A process violates Def 8.2 where functional behavior is required."""


class AmbiguousValueError(XSTError, ValueError):
    """Def 9.8/9.9 value extraction has no unique answer."""


class CompositionError(XSTError, ValueError):
    """Two processes cannot be composed under Def 11.1."""


class SchemaError(XSTError, ValueError):
    """Relational-layer schema violation."""


class NotationError(XSTError, ValueError):
    """Paper-notation source text could not be parsed."""


class DeadlineExceededError(UnavailableError):
    """A governed execution ran past its deadline.

    Raised *mid-operator* at the next cooperative cancellation
    checkpoint (see :mod:`repro.gov`), never after completing the
    work.  ``elapsed_s``/``timeout_s`` are the deadline ledger at the
    moment of death and ``site`` names the checkpoint that fired
    (e.g. ``"xst.cross"``), which also lands on the active span.
    """

    code = "DEADLINE_EXCEEDED"
    exit_code = 12

    def __init__(self, elapsed_s: float, timeout_s: float,
                 site: str = "<unknown>"):
        self.elapsed_s = elapsed_s
        self.timeout_s = timeout_s
        self.site = site
        super().__init__(
            "deadline exceeded at %s: %.6fs elapsed > %.6fs budget"
            % (site, elapsed_s, timeout_s)
        )


class BudgetExceededError(UnavailableError):
    """A governed execution exhausted a resource budget.

    ``resource`` names the exhausted ledger (``"rows"``, ``"cells"``
    or ``"bytes"``), ``spent``/``limit`` its state, and ``site`` the
    cancellation checkpoint that noticed -- again mid-operator, so a
    runaway cross product dies while materializing, not after.
    """

    code = "BUDGET_EXCEEDED"
    exit_code = 13

    def __init__(self, resource: str, spent: float, limit: float,
                 site: str = "<unknown>"):
        self.resource = resource
        self.spent = spent
        self.limit = limit
        self.site = site
        super().__init__(
            "budget exceeded at %s: %s spent %s > limit %s"
            % (site, resource, _trim(spent), _trim(limit))
        )


class OverloadedError(UnavailableError):
    """Admission control shed this query: the system is at capacity.

    Carries the in-flight occupancy that triggered the shed and a
    deterministic ``retry_after_s`` hint.  Shedding happens *before*
    any work runs, so a shed query consumes no budget and holds no
    partial state.
    """

    code = "OVERLOADED"
    exit_code = 14

    def __init__(self, in_flight: int, capacity: int,
                 retry_after_s: float, reason: str = "at capacity"):
        self.in_flight = in_flight
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        self.reason = reason
        super().__init__(
            "overloaded (%s): %d in flight / capacity %d; retry after %.3fs"
            % (reason, in_flight, capacity, retry_after_s)
        )


class CircuitOpenError(UnavailableError):
    """Every replica that could serve a read sits behind an open breaker.

    Distinct from :class:`ClusterUnavailableError` (replicas *dead*):
    here the nodes may well be back, but their breakers have not yet
    run a successful probe.  ``retry_after_ops`` says how many cluster
    operations remain until the earliest half-open probe.
    """

    code = "CIRCUIT_OPEN"
    exit_code = 15

    def __init__(self, table: str, bucket: int, node: str,
                 retry_after_ops: int = 0):
        self.table = table
        self.bucket = bucket
        self.node = node
        self.retry_after_ops = retry_after_ops
        super().__init__(
            "circuit open for partition %d of %r: breaker on %s probes in "
            "%d ops" % (bucket, table, node, retry_after_ops)
        )


class NetworkError(UnavailableError):
    """A wire-level failure between client and server.

    Raised wherever the transport, not the query, failed: a dropped
    or reset connection, a torn or truncated frame, a checksum
    mismatch, a protocol violation, or a stream that ended mid-result.
    The answer may exist -- the bytes carrying it did not arrive
    intact -- so the client's retry loop treats this as transient.
    ``frame`` is the 0-based frame number (or byte offset for framing
    damage) where the stream died, when known.
    """

    code = "NETWORK"
    exit_code = 16

    def __init__(self, reason: str, frame: Optional[int] = None,
                 retry_after_s: Optional[float] = None):
        self.reason = reason
        self.frame = frame
        self.retry_after_s = retry_after_s
        where = "" if frame is None else " at frame %d" % frame
        super().__init__("network failure%s: %s" % (where, reason))


class SessionError(UnavailableError):
    """A server session could not be established or has become invalid.

    Covers authentication rejection, a handshake the server refuses
    (wrong protocol version, malformed hello), references to unknown
    prepared statements, and requests arriving on a session the server
    already closed (e.g. after a drain).  ``session_id`` is the
    server-assigned id when one was ever granted.
    """

    code = "SESSION"
    exit_code = 17

    def __init__(self, reason: str, session_id: Optional[str] = None,
                 retry_after_s: Optional[float] = None):
        self.reason = reason
        self.session_id = session_id
        self.retry_after_s = retry_after_s
        where = "" if session_id is None else " (session %s)" % session_id
        super().__init__("session failure%s: %s" % (where, reason))


class WriteConflictError(UnavailableError):
    """First-committer-wins: another transaction committed first.

    A snapshot-isolation write transaction read at ``read_version``
    but a table it wrote was committed past that version by someone
    else before it could commit.  The losing transaction's buffered
    writes are discarded untouched; retrying against a fresh snapshot
    usually succeeds, which is what ``retry_after_s=0.0`` signals.
    """

    code = "WRITE_CONFLICT"
    exit_code = 18
    retry_after_s = 0.0

    def __init__(self, tables: Sequence[str], read_version: int,
                 committed_version: int):
        self.tables = tuple(tables)
        self.read_version = read_version
        self.committed_version = committed_version
        super().__init__(
            "write conflict on %s: snapshot read at version %d but "
            "version %d already committed"
            % (", ".join(self.tables), read_version, committed_version)
        )


def _trim(value: float) -> str:
    """Render budgets integer-ish when they are whole numbers."""
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


class ClusterUnavailableError(UnavailableError):
    """A distributed query could not be answered correctly.

    Raised only when *no* correct answer exists: every replica of a
    partition the query needs is dead, or the query's simulated time
    budget was exhausted by retries.  Wrong answers are never returned
    in place of this error.

    The offending partition is rendered in paper notation (the rows
    live under attribute scopes, so the key fragment prints as e.g.
    ``{5^'dept'}``), matching the library-wide rule that errors show
    the set they choked on.
    """

    code = "CLUSTER_UNAVAILABLE"
    exit_code = 11

    def __init__(
        self,
        table: str,
        bucket: int,
        replicas: Sequence[str] = (),
        reason: str = "all replicas are dead",
        key: Optional[Any] = None,
    ):
        self.table = table
        self.bucket = bucket
        self.replicas = tuple(replicas)
        self.reason = reason
        self.key = key
        key_part = "" if key is None else " for key %r" % (key,)
        tried = (
            " (tried %s)" % ", ".join(self.replicas) if self.replicas else ""
        )
        super().__init__(
            "partition %d of %r is unavailable%s: %s%s"
            % (bucket, table, key_part, reason, tried)
        )


class ShardMovedError(UnavailableError):
    """The caller routed with a stale shard-map epoch.

    Online rebalancing swings a table's :class:`ShardMap` to a new
    epoch atomically; any request stamped with an older epoch is
    refused *before any bucket is read* -- the data may have moved,
    and answering from the old placement could be wrong.  The error
    carries both epochs so clients refresh their cached map and retry
    immediately (``retry_after_s=0.0``: the new map is already
    installed, nothing needs to drain).
    """

    code = "SHARD_MOVED"
    exit_code = 19
    retry_after_s = 0.0

    def __init__(self, table: str, requested_epoch: int,
                 current_epoch: int, bucket: Optional[int] = None):
        self.table = table
        self.requested_epoch = requested_epoch
        self.current_epoch = current_epoch
        self.bucket = bucket
        where = "" if bucket is None else " (bucket %d)" % bucket
        super().__init__(
            "shard map for %r moved%s: request at epoch %d but cluster "
            "is at epoch %d" % (table, where, requested_epoch, current_epoch)
        )


class ShardPlacementError(XSTError, ValueError):
    """The shard catalog or a rebalance journal is inconsistent.

    Raised when placement *invariants* are violated: a bucket with no
    owner or two owners, a persisted move journal whose epoch
    contradicts the installed map (a torn swing), or a post-move
    anti-entropy digest mismatch between donor and recipient.  This is
    corruption, not load -- there is no retry hint -- but it shares
    the stable ``code``/``exit_code`` contract so ``repro fsck`` can
    exit distinctly on placement damage, and construction notifies
    the flight recorder like the availability family does.
    """

    code = "SHARD_PLACEMENT"
    exit_code = 20

    def __init__(self, *args: Any):
        super().__init__(*args)
        notify_error(self)
