"""Exception hierarchy for the XST reproduction.

Every error raised by this library derives from :class:`XSTError`, so
callers can catch one type to guard against any library failure.  The
subclasses mirror the layers of the system:

* :class:`InvalidAtomError` -- a value that cannot participate in an
  extended set was used as an element or scope (kernel layer).
* :class:`NotATupleError` -- an operation that requires Def 9.1 n-tuples
  (consecutive integer scopes ``1..n``) received a non-tuple.
* :class:`NotAProcessError` -- a (set, sigma) pair fails the Def 2.1
  well-formedness condition for processes.
* :class:`NotAFunctionError` -- a process violates the Def 8.2
  single-valuedness requirement where a function is demanded.
* :class:`AmbiguousValueError` -- Def 9.8/9.9 value extraction found
  zero or several candidate values.
* :class:`CompositionError` -- Def 11.1 composition was requested for
  processes that are not compositable.
* :class:`SchemaError` -- relational layer: rows do not match the
  declared heading, or an operation references unknown attributes.
* :class:`NotationError` -- the paper-notation parser rejected its
  input.
* :class:`ClusterUnavailableError` -- distributed layer: every replica
  of a partition a query needs is unreachable (or the query's
  simulated time budget ran out), so no correct answer can be given.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence


class XSTError(Exception):
    """Base class for all errors raised by this library."""


class InvalidAtomError(XSTError, TypeError):
    """An unusable (unhashable or reserved) value was offered as an atom."""


class NotATupleError(XSTError, ValueError):
    """An extended set without Def 9.1 tuple shape was used as a tuple."""


class NotAProcessError(XSTError, ValueError):
    """A (set, sigma) pair violates Def 2.1 process well-formedness."""


class NotAFunctionError(XSTError, ValueError):
    """A process violates Def 8.2 where functional behavior is required."""


class AmbiguousValueError(XSTError, ValueError):
    """Def 9.8/9.9 value extraction has no unique answer."""


class CompositionError(XSTError, ValueError):
    """Two processes cannot be composed under Def 11.1."""


class SchemaError(XSTError, ValueError):
    """Relational-layer schema violation."""


class NotationError(XSTError, ValueError):
    """Paper-notation source text could not be parsed."""


class ClusterUnavailableError(XSTError, RuntimeError):
    """A distributed query could not be answered correctly.

    Raised only when *no* correct answer exists: every replica of a
    partition the query needs is dead, or the query's simulated time
    budget was exhausted by retries.  Wrong answers are never returned
    in place of this error.

    The offending partition is rendered in paper notation (the rows
    live under attribute scopes, so the key fragment prints as e.g.
    ``{5^'dept'}``), matching the library-wide rule that errors show
    the set they choked on.
    """

    def __init__(
        self,
        table: str,
        bucket: int,
        replicas: Sequence[str] = (),
        reason: str = "all replicas are dead",
        key: Optional[Any] = None,
    ):
        self.table = table
        self.bucket = bucket
        self.replicas = tuple(replicas)
        self.reason = reason
        self.key = key
        key_part = "" if key is None else " for key %r" % (key,)
        tried = (
            " (tried %s)" % ", ".join(self.replicas) if self.replicas else ""
        )
        super().__init__(
            "partition %d of %r is unavailable%s: %s%s"
            % (bucket, table, key_part, reason, tried)
        )
