"""Command-line interface: ``python -m repro <command>``.

Four small commands that make the library usable from a shell:

``eval EXPR``
    Parse paper notation and print the canonical rendering, e.g.
    ``python -m repro eval "{b^2, a^1}"`` prints ``<a, b>``.

``image RELATION KEYS``
    Apply the CST-shaped image: both operands in paper notation,
    RELATION a set of pairs, KEYS a set of 1-tuples.

``query CSVDIR XQL``
    Load every ``*.csv`` in a directory as a relation (named by file
    stem) and run an XQL query against them.

``closure CSVFILE FROM TO``
    Read an edge list from a CSV with the given source/target columns
    and print its transitive closure as CSV.

``cluster-status CSVDIR ATTR [NODES [FACTOR]]``
    Load every ``*.csv`` whose heading contains ATTR into a simulated
    cluster partitioned on ATTR (NODES nodes, FACTOR-way replication)
    and print the placement map, per-node liveness and row counts, and
    the replication byte overhead.

``fsck STOREDIR [--log FILE]``
    Offline integrity check of a durable store: verify every stored
    relation's segment checksums and classify the write-ahead log
    (valid records, last checkpoint, torn tail, corruption).  Also
    audits the persisted statistics catalog, flagging stale entries
    (mutated past their refresh threshold) and orphaned ones (stats
    for relations no longer stored) as warnings.  Exits 1 when
    anything is damaged, 0 when the store would recover cleanly.

``analyze STOREDIR [RELATION] [--sample N] [--seed N]``
    Collect planner statistics (row counts, distinct-value sketches,
    histograms, MCVs -- see :mod:`repro.relational.stats`) for one or
    all stored relations and persist them in the store's ``stats.cat``
    so later sessions plan cost-based.

``stats STOREDIR RELATION``
    Print the persisted statistics catalog entry for one relation:
    row count, staleness accounting, and per-attribute distinct
    counts, null fractions, most-common values and histogram shape.

``recover STOREDIR [--log FILE] [--compact]``
    Run crash recovery: truncate a torn WAL tail, replay the commit
    suffix past the last checkpoint onto the stored snapshots, write
    the recovered state back as a fresh checkpoint, and (with
    ``--compact``) drop the now-redundant log prefix.

``obs-metrics CSVDIR XQL``
    Run a query with observability enabled and print the Prometheus
    text exposition of everything it recorded: kernel op counters and
    latency histograms, plan node counts, cardinalities.

``obs-trace CSVDIR XQL`` / ``obs-trace CSVDIR LEFT RIGHT ATTR``
    Poor-man's distributed EXPLAIN ANALYZE.  The two-argument form
    traces a local XQL query; the four-argument form builds a cluster
    (``--nodes N --factor F``), optionally arms a deterministic chaos
    schedule (``--chaos SEED``), joins LEFT with RIGHT partitioned on
    ATTR, and renders the span tree -- per-bucket reads with retry and
    failover attributes.  ``--out FILE`` also exports JSON lines.

``obs-report FILE [--top N] [--by latency|qerror] [--format json|text]``
    Rank a slow-query log (JSONL of query digests, written by
    ``REPRO_SLOWLOG=<path>`` or ``SlowQueryLog.export_jsonl``) by
    latency or by worst per-node q-error and print the top N.

``obs-incidents FILE [--format json|text]``
    Print the incident records a flight recorder captured (JSONL from
    ``REPRO_INCIDENTS=<path>`` or ``FlightRecorder.export_jsonl``):
    what failed, its structured context, and the event window that
    led up to it.

``query``/``closure`` additionally accept ``--trace-out FILE`` to
export the execution trace as JSON lines alongside the normal output.
``query`` also takes ``--timeout SECONDS`` and ``--budget ROWS`` to
run under a resource governor (equivalent to the XQL TIMEOUT/BUDGET
clauses).  ``obs-trace`` takes ``--format json|text`` (default text);
JSON output is one span per line in deterministic order (start time,
then span id).

Every command writes to stdout and exits non-zero with a message on
stderr for malformed input, so the tool composes in pipelines.
Governance errors map to stable exit codes (see
:mod:`repro.errors`): 12 deadline, 13 budget, 14 overloaded,
15 circuit open, 11 cluster unavailable; other domain errors exit 2.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.errors import XSTError
from repro.notation import parse, render
from repro.relational.csvio import dumps_csv, read_csv
from repro.relational.query import Database
from repro.relational.relation import Relation
from repro.relational.sql import run as run_xql
from repro.xst.closure import transitive_closure
from repro.xst.builders import xpair, xset
from repro.xst.image import cst_image
from repro.xst.xset import XSet

__all__ = ["main"]

_USAGE = """\
usage: python -m repro <command> [args]

commands:
  eval EXPR              parse paper notation, print canonical form
  image RELATION KEYS    CST-shaped image of KEYS under RELATION
  query CSVDIR XQL [--trace-out FILE] [--timeout S] [--budget ROWS]
                         run an XQL query over a directory of CSVs,
                         optionally under a deadline / row budget
  closure CSV FROM TO [--trace-out FILE]
                         transitive closure of an edge-list CSV
  cluster-status CSVDIR ATTR [NODES [FACTOR]]
                         place CSVs on a simulated replicated cluster
                         and print its status
  fsck STOREDIR [--log FILE]
                         verify segment checksums, WAL integrity and
                         the stats catalog (exit 1 on damage)
  analyze STOREDIR [RELATION] [--sample N] [--seed N]
                         collect planner statistics for stored
                         relations and persist them (stats.cat)
  stats STOREDIR RELATION
                         print the persisted statistics of a relation
  recover STOREDIR [--log FILE] [--compact]
                         replay the WAL onto the store and write a
                         fresh checkpoint
  obs-metrics CSVDIR XQL run a query observed; print Prometheus text
  obs-trace CSVDIR XQL [--out FILE] [--format json|text]
                         trace a local query; render the span tree
  obs-trace CSVDIR LEFT RIGHT ATTR [--nodes N] [--factor F]
            [--chaos SEED] [--out FILE] [--format json|text]
                         trace a distributed join (optionally under a
                         deterministic chaos fault schedule)
  obs-report FILE [--top N] [--by latency|qerror] [--format json|text]
                         rank a slow-query log (digest JSONL)
  obs-incidents FILE [--format json|text]
                         print flight-recorder incident records
  serve CSVDIR [--host H] [--port P] [--port-file FILE] [--token T]
        [--capacity N] [--max-sessions N] [--drain-timeout S]
        [--incident-log FILE]
                         serve the CSVs over TCP (MVCC snapshot
                         sessions; SIGINT/SIGTERM drains gracefully)
  views CSVDIR [XQL ...] [--verify]
                         run view statements (CREATE [MATERIALIZED]
                         VIEW / REFRESH VIEW / DROP VIEW / SELECT)
                         over the CSVs, then list every view's
                         staleness, last-refresh version and cache
                         hit rate; --verify digest-checks each
                         materialized cache against a recompute
"""


def _fail(message: str) -> int:
    print("repro: %s" % message, file=sys.stderr)
    return 2


def _pop_option(args: List[str], name: str):
    """Extract ``name VALUE`` from ``args`` (mutating); None if absent.

    Raises ValueError when the flag is present without a value.
    """
    if name not in args:
        return None
    index = args.index(name)
    if index + 1 >= len(args):
        raise ValueError("%s needs a value" % name)
    value = args[index + 1]
    del args[index:index + 2]
    return value


def _load_db(directory: str) -> Database:
    """Load every ``*.csv`` in a directory as a relation (by stem)."""
    if not os.path.isdir(directory):
        raise XSTError("%r is not a directory" % directory)
    db = Database()
    loaded = 0
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".csv"):
            name = entry[: -len(".csv")]
            db.add(name, read_csv(os.path.join(directory, entry)))
            loaded += 1
    if not loaded:
        raise XSTError("no .csv files in %r" % directory)
    return db


def _command_eval(args: List[str]) -> int:
    if len(args) != 1:
        return _fail("eval takes exactly one expression")
    value = parse(args[0])
    if isinstance(value, XSet):
        print(render(value))
    else:
        print(value)
    return 0


def _command_image(args: List[str]) -> int:
    if len(args) != 2:
        return _fail("image takes RELATION and KEYS")
    relation = parse(args[0])
    keys = parse(args[1])
    if not isinstance(relation, XSet) or not isinstance(keys, XSet):
        return _fail("both operands must be sets")
    print(render(cst_image(relation, keys)))
    return 0


def _command_query(args: List[str]) -> int:
    args = list(args)
    try:
        trace_out = _pop_option(args, "--trace-out")
        timeout = _pop_option(args, "--timeout")
        budget = _pop_option(args, "--budget")
    except ValueError as error:
        return _fail(str(error))
    try:
        timeout = None if timeout is None else float(timeout)
        budget = None if budget is None else int(budget)
    except ValueError:
        return _fail("--timeout needs a number of seconds and "
                     "--budget an integer row count")
    if len(args) != 2:
        return _fail("query takes CSVDIR and an XQL string")
    directory, text = args
    db = _load_db(directory)
    from contextlib import nullcontext

    from repro.gov import governed

    scope = (
        governed(timeout_s=timeout, max_rows=budget)
        if timeout is not None or budget is not None
        else nullcontext()
    )
    with scope:
        if trace_out is None:
            result = run_xql(db, text)
        else:
            from repro.obs import observed, tracer

            with observed():
                tracer().reset()
                result = run_xql(db, text)
                tracer().export_jsonl(trace_out)
    sys.stdout.write(dumps_csv(result))
    return 0


def _command_closure(args: List[str]) -> int:
    args = list(args)
    try:
        trace_out = _pop_option(args, "--trace-out")
    except ValueError as error:
        return _fail(str(error))
    if len(args) != 3:
        return _fail("closure takes CSVFILE, FROM column, TO column")
    path, source_column, target_column = args
    edges = read_csv(path)
    edges.heading.require([source_column, target_column])
    graph = xset(
        xpair(row[source_column], row[target_column])
        for row in edges.iter_dicts()
    )
    if trace_out is None:
        closed = transitive_closure(graph)
    else:
        from repro.obs import observed, tracer

        with observed():
            tracer().reset()
            with tracer().span(
                "closure(%s, %s)" % (source_column, target_column),
                edges=edges.cardinality(),
            ) as span:
                closed = transitive_closure(graph)
                span.set("pairs", len(closed))
            tracer().export_jsonl(trace_out)
    rows = sorted(
        (member.as_tuple() for member, _ in closed.pairs()), key=repr
    )
    result = Relation.from_tuples([source_column, target_column], rows)
    sys.stdout.write(dumps_csv(result))
    return 0


def _command_cluster_status(args: List[str]) -> int:
    if not 2 <= len(args) <= 4:
        return _fail("cluster-status takes CSVDIR, ATTR and optionally "
                     "NODES and FACTOR")
    directory, attr = args[0], args[1]
    try:
        node_count = int(args[2]) if len(args) > 2 else 4
        factor = int(args[3]) if len(args) > 3 else 1
    except ValueError:
        return _fail("NODES and FACTOR must be integers")
    if not os.path.isdir(directory):
        return _fail("%r is not a directory" % directory)
    from repro.relational.distributed import Cluster

    try:
        cluster = Cluster(node_count, replication_factor=factor)
    except ValueError as error:
        return _fail(str(error))
    loaded = 0
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".csv"):
            continue
        relation = read_csv(os.path.join(directory, entry))
        if attr not in relation.heading:
            continue
        cluster.create_table(entry[: -len(".csv")], relation, attr)
        loaded += 1
    if not loaded:
        return _fail(
            "no .csv file in %r has a %r attribute" % (directory, attr)
        )
    status = cluster.status()
    print("cluster: %d nodes, replication factor %d, partitioned on %r"
          % (node_count, factor, attr))
    for table, info in status["tables"].items():
        placement = cluster.placement(table)
        print("table %s (rf=%d):" % (table, info["replication_factor"]))
        for bucket in range(node_count):
            replicas = ", ".join(
                cluster.nodes[index].name
                for index in placement.replicas(bucket)
            )
            rows = cluster.nodes[placement.primary(bucket)].bucket(
                table, bucket
            ).cardinality()
            print("  bucket %d -> %s  (%d rows)" % (bucket, replicas, rows))
    for node_info in status["nodes"]:
        held = ", ".join(
            "%s%s (%d rows)" % (table, info["buckets"], info["rows"])
            for table, info in node_info["tables"].items()
        ) or "no tables"
        print("%s: %s, %s" % (
            node_info["name"],
            "up" if node_info["alive"] else "DOWN",
            held,
        ))
    network = status["network"]
    print("network: %d messages, %d bytes shipped "
          "(%d bytes replica placement overhead)"
          % (network["messages"], network["bytes_shipped"],
             network["replica_bytes"]))
    return 0


def _store_and_log(args: List[str], command: str):
    """Common argument handling for ``fsck`` and ``recover``."""
    log_path = _pop_option(args, "--log")
    if len(args) != 1:
        raise ValueError("%s takes one STOREDIR" % command)
    directory = args[0]
    if not os.path.isdir(directory):
        raise ValueError("%r is not a directory" % directory)
    if log_path is None:
        log_path = os.path.join(directory, "wal.log")
    return directory, log_path


def _command_fsck(args: List[str]) -> int:
    args = list(args)
    try:
        directory, log_path = _store_and_log(args, "fsck")
    except ValueError as error:
        return _fail(str(error))
    from repro.relational.disk import DiskRelationStore
    from repro.relational.wal import CorruptSegmentError, scan_bytes

    store = DiskRelationStore(directory)
    damage = 0
    for name in store.names():
        try:
            rows = sum(1 for _ in store.scan(name))
        except CorruptSegmentError as error:
            damage += 1
            print("relation %s: DAMAGED (%s)" % (name, error))
        else:
            print("relation %s: ok (%d rows, %d segments)"
                  % (name, rows, store.segment_count(name)))
    if os.path.exists(log_path):
        with open(log_path, "rb") as fh:
            data = fh.read()
        try:
            scan = scan_bytes(data, decode=True)
        except XSTError as error:
            print("log %s: DAMAGED (%s)" % (log_path, error))
            damage += 1
        else:
            checkpoint_index, _ = scan.last_checkpoint()
            print("log %s: %d records, %d bytes durable, last checkpoint %s"
                  % (log_path, scan.lsn, scan.valid_bytes,
                     "at lsn %d" % (checkpoint_index + 1)
                     if checkpoint_index >= 0 else "none"))
            if scan.torn_bytes:
                print("log %s: torn tail of %d bytes (recoverable; "
                      "run recover)" % (log_path, scan.torn_bytes))
            if scan.corrupt_at is not None:
                print("log %s: DAMAGED (corrupt frame at byte %d)"
                      % (log_path, scan.corrupt_at))
                damage += 1
    else:
        print("log %s: absent" % log_path)
    catalog = store.load_stats()
    if catalog is not None:
        stored = set(store.names())
        for name in catalog.names():
            if name not in stored:
                print("stats %s: ORPHANED (no stored relation)" % name)
            elif catalog.is_stale(name):
                print(
                    "stats %s: stale (%d mutations since analyze, "
                    "threshold %d; re-run analyze)"
                    % (name, catalog.mutations_since_analyze(name),
                       catalog.stale_threshold(name))
                )
            else:
                entry = catalog.get(name, allow_stale=True)
                print("stats %s: ok (%d rows analyzed, %d mutations since)"
                      % (name, entry.rows,
                         catalog.mutations_since_analyze(name)))
    placement_damage = _fsck_shards(store)
    if placement_damage:
        from repro.errors import ShardPlacementError

        print("fsck: %d placement inconsistenc%s"
              % (placement_damage,
                 "y" if placement_damage == 1 else "ies"))
        return ShardPlacementError.exit_code
    if damage:
        print("fsck: %d damaged item(s)" % damage)
        return 1
    print("fsck: clean")
    return 0


def _fsck_shards(store) -> int:
    """Audit the shard catalog and move journal; count inconsistencies.

    Two torn-rebalance residues are detectable from disk alone:

    * **bucket owned by two epochs** -- the move journal and the
      installed catalog disagree about who owns the moved bucket (a
      crash landed between the epoch swing and the journal update, in
      either order);
    * **orphaned post-move source data** -- a swing committed (the
      journal's ``target_epoch`` is installed) but the donor's frozen
      copy was never garbage-collected.

    Both exit with :attr:`~repro.errors.ShardPlacementError.exit_code`
    so scripts can tell placement damage from ordinary segment rot.
    """
    from repro.errors import ShardPlacementError
    from repro.relational.sharding import ShardCatalog, ShardMove

    problems = 0
    shards = None
    try:
        shards = store.load_shards()
    except ShardPlacementError as error:
        print("shards: DAMAGED catalog (%s)" % error)
        problems += 1
    if shards is not None:
        for name in shards.names():
            shard_map = shards.get(name)
            try:
                shard_map.validate()
            except ShardPlacementError as error:
                print("shards %s: DAMAGED (%s)" % (name, error))
                problems += 1
            else:
                print("shards %s: ok (epoch %d, %d buckets, rf=%d)"
                      % (name, shard_map.epoch, shard_map.bucket_count,
                         shard_map.replication_factor))
    move_value = store.load_move()
    if move_value is None:
        return problems
    try:
        move = ShardMove.from_xset(move_value)
    except (ShardPlacementError, ValueError) as error:
        print("move journal: DAMAGED (%s)" % error)
        return problems + 1
    installed = shards.get(move.table) if shards is not None else None
    if move.target_epoch:
        # The journal says the swing committed at target_epoch.
        if installed is None or installed.epoch < move.target_epoch:
            print("move %s[%d]: TORN SWING (journal swung to epoch %d "
                  "but installed map is %s) -- bucket owned by two epochs"
                  % (move.table, move.bucket, move.target_epoch,
                     "absent" if installed is None
                     else "at epoch %d" % installed.epoch))
            problems += 1
        else:
            print("move %s[%d]: ORPHANED post-move source data on node "
                  "%d (swing at epoch %d committed but gc never ran)"
                  % (move.table, move.bucket, move.donor,
                     move.target_epoch))
            problems += 1
    elif (
        installed is not None
        and installed.has_bucket(move.bucket)
        and move.donor not in installed.replicas(move.bucket)
        and move.recipient in installed.replicas(move.bucket)
    ):
        # The journal says pre-swing, yet the installed map already
        # routes the bucket to the recipient: the swing committed but
        # the journal write was lost.
        print("move %s[%d]: TORN SWING (installed map routes to "
              "recipient %d but journal is still '%s') -- bucket owned "
              "by two epochs"
              % (move.table, move.bucket, move.recipient, move.state))
        problems += 1
    else:
        print("move %s[%d]: resumable (%s, %d rows copied, donor %d -> "
              "recipient %d)"
              % (move.table, move.bucket, move.state, move.copied_rows,
                 move.donor, move.recipient))
    return problems


def _command_recover(args: List[str]) -> int:
    args = list(args)
    compact = "--compact" in args
    if compact:
        args.remove("--compact")
    try:
        directory, log_path = _store_and_log(args, "recover")
    except ValueError as error:
        return _fail(str(error))
    from repro.relational.disk import DiskRelationStore
    from repro.relational.wal import WriteAheadLog, scan_bytes

    data = b""
    if os.path.exists(log_path):
        with open(log_path, "rb") as fh:
            data = fh.read()
    before = scan_bytes(data, decode=False)
    store = DiskRelationStore(directory)
    log = WriteAheadLog(log_path)  # truncates any torn tail
    state = store.recover(log)
    for name in sorted(state):
        print("recovered %s: %d rows" % (name, state[name].cardinality()))
    if state:
        store.checkpoint(log, state)
        print("checkpoint written at lsn %d" % log.lsn)
    if compact:
        dropped = log.compact()
        print("compacted: dropped %d records" % dropped)
    print("recover: %d durable records, %d torn bytes truncated"
          % (before.lsn, before.torn_bytes))
    return 0


def _command_analyze(args: List[str]) -> int:
    args = list(args)
    try:
        sample = _pop_option(args, "--sample")
        seed = _pop_option(args, "--seed")
        sample = None if sample is None else int(sample)
        seed = 0 if seed is None else int(seed)
    except ValueError:
        return _fail("--sample and --seed must be integers")
    if not 1 <= len(args) <= 2:
        return _fail("analyze takes STOREDIR and optionally one RELATION")
    directory = args[0]
    if not os.path.isdir(directory):
        return _fail("%r is not a directory" % directory)
    from repro.relational.disk import DiskRelationStore
    from repro.relational.stats import StatsCatalog

    store = DiskRelationStore(directory)
    # Preserve entries (and mutation counters) for relations not being
    # re-analyzed this run.
    catalog = store.load_stats() or StatsCatalog()
    targets = args[1:] if len(args) == 2 else list(store.names())
    if not targets:
        return _fail("no stored relations in %r" % directory)
    for name in targets:
        entry = catalog.analyze(
            name, store.load(name), sample_rows=sample, seed=seed
        )
        print("analyzed %s: %d rows, %d attributes"
              % (name, entry.rows, len(entry.attributes)))
    store.store_stats(catalog)
    print("stats catalog written: %d relation(s)" % len(catalog))
    return 0


def _command_stats(args: List[str]) -> int:
    if len(args) != 2:
        return _fail("stats takes STOREDIR and RELATION")
    directory, name = args
    if not os.path.isdir(directory):
        return _fail("%r is not a directory" % directory)
    from repro.relational.disk import DiskRelationStore

    store = DiskRelationStore(directory)
    catalog = store.load_stats()
    if catalog is None:
        return _fail("no stats catalog in %r (run analyze first)" % directory)
    entry = catalog.get(name, allow_stale=True)
    if entry is None:
        return _fail("no statistics for %r (run analyze)" % name)
    print("relation %s: %d rows analyzed" % (name, entry.rows))
    print("mutations since analyze: %d (stale threshold %d%s)"
          % (catalog.mutations_since_analyze(name),
             catalog.stale_threshold(name),
             ", STALE -- planner ignores these stats"
             if catalog.is_stale(name) else ""))
    for attr in sorted(entry.attributes):
        stats = entry.attributes[attr]
        print("  %s: distinct=%d null_fraction=%.3f buckets=%d"
              % (attr, stats.distinct, stats.null_fraction,
                 len(stats.histogram)))
        if stats.mcvs:
            shown = ", ".join(
                "%r x%d" % (value, count)
                for value, count in stats.mcvs[:4]
            )
            print("    mcvs: %s%s"
                  % (shown, " ..." if len(stats.mcvs) > 4 else ""))
    return 0


def _command_obs_metrics(args: List[str]) -> int:
    if len(args) != 2:
        return _fail("obs-metrics takes CSVDIR and an XQL string")
    from repro.obs import observed

    directory, text = args
    db = _load_db(directory)
    with observed() as reg:
        reg.reset()
        run_xql(db, text)
        sys.stdout.write(reg.expose())
    return 0


def _print_spans_json(roots) -> None:
    """One JSON object per span, deterministically ordered.

    Sort key is ``(start_s, span_id)`` -- start *tick* first (under a
    fake clock these are simulated seconds), span id as the tie-break
    -- so byte-identical executions print byte-identical output.
    """
    spans = [span.to_dict() for root in roots for span in root.tree()]
    spans.sort(key=lambda record: (record["start_s"], record["span_id"]))
    for record in spans:
        print(json.dumps(record, sort_keys=True))


def _trace_local_query(
    directory: str, text: str, out: Optional[str], fmt: str = "text"
) -> int:
    from repro.obs import observed, tracer

    db = _load_db(directory)
    with observed():
        tracer().reset()
        result = run_xql(db, text)
        root = tracer().last_root()
        if fmt == "json":
            _print_spans_json([] if root is None else [root])
        else:
            print(tracer().render(root))
            print("-- %d result rows" % result.cardinality())
        if out is not None:
            count = tracer().export_jsonl(out)
            if fmt != "json":
                print("-- %d spans -> %s" % (count, out))
    return 0


def _trace_cluster_join(args: List[str], options) -> int:
    directory, left, right, attr = args
    nodes, factor, chaos, out, fmt = options
    from repro.obs import observed
    from repro.relational.distributed import Cluster, ClusterUnavailableError
    from repro.relational.faults import FaultPlan

    try:
        cluster = Cluster(nodes, replication_factor=factor)
    except ValueError as error:
        return _fail(str(error))
    for name in (left, right):
        path = os.path.join(directory, name + ".csv")
        relation = read_csv(path)
        if attr not in relation.heading:
            return _fail("%r has no %r attribute" % (path, attr))
        cluster.create_table(name, relation, attr)
    if chaos is not None:
        # One join ticks the injector only a few times per bucket, so
        # squeeze the chaos horizon to the query's operation window --
        # the default (200) would schedule every fault after the query.
        cluster.install_faults(FaultPlan.chaos(
            chaos, [node.name for node in cluster.nodes],
            horizon=4 * len(cluster.nodes),
        ))
    with observed():
        try:
            result = cluster.join(left, right)
        except ClusterUnavailableError as error:
            print(cluster.tracer.render(cluster.last_query_span))
            return _fail("join unavailable: %s" % error)
        if fmt == "json":
            root = cluster.last_query_span
            _print_spans_json([] if root is None else [root])
        else:
            print(cluster.tracer.render(cluster.last_query_span))
            network = cluster.network
            print("-- %d result rows; %d retries, %d failovers, "
                  "%d bytes shipped"
                  % (result.cardinality(), network.retries,
                     network.failovers, network.bytes_shipped))
        if out is not None:
            count = cluster.tracer.export_jsonl(out)
            if fmt != "json":
                print("-- %d spans -> %s" % (count, out))
    return 0


def _pop_format(args: List[str]) -> str:
    fmt = _pop_option(args, "--format")
    fmt = "text" if fmt is None else fmt
    if fmt not in ("json", "text"):
        raise ValueError("--format must be 'json' or 'text'")
    return fmt


def _command_obs_trace(args: List[str]) -> int:
    args = list(args)
    try:
        out = _pop_option(args, "--out")
        nodes = _pop_option(args, "--nodes")
        factor = _pop_option(args, "--factor")
        chaos = _pop_option(args, "--chaos")
        fmt = _pop_format(args)
    except ValueError as error:
        return _fail(str(error))
    try:
        nodes = 4 if nodes is None else int(nodes)
        factor = 1 if factor is None else int(factor)
        chaos = None if chaos is None else int(chaos)
    except ValueError:
        return _fail("--nodes, --factor and --chaos must be integers")
    if len(args) == 2:
        return _trace_local_query(args[0], args[1], out, fmt)
    if len(args) == 4:
        return _trace_cluster_join(args, (nodes, factor, chaos, out, fmt))
    return _fail("obs-trace takes CSVDIR XQL, or CSVDIR LEFT RIGHT ATTR")


def _read_jsonl(path: str) -> List[Dict[str, Any]]:
    if not os.path.isfile(path):
        raise XSTError("%r is not a file" % path)
    records = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                raise XSTError(
                    "%s line %d is not valid JSON" % (path, line_number)
                ) from None
    return records


def _command_obs_report(args: List[str]) -> int:
    args = list(args)
    try:
        top = _pop_option(args, "--top")
        by = _pop_option(args, "--by")
        fmt = _pop_format(args)
        top = 10 if top is None else int(top)
    except ValueError as error:
        return _fail(str(error))
    by = "latency" if by is None else by
    if by not in ("latency", "qerror"):
        return _fail("--by must be 'latency' or 'qerror'")
    if len(args) != 1:
        return _fail("obs-report takes one slow-query log FILE")
    from repro.obs.digest import QueryDigest

    digests = [QueryDigest.from_dict(r) for r in _read_jsonl(args[0])]
    if by == "latency":
        digests.sort(key=lambda d: (-d.wall_s, d.plan_hash))
    else:
        digests.sort(key=lambda d: (-d.max_q_error(), d.plan_hash))
    ranked = digests[:top]
    if fmt == "json":
        for digest in ranked:
            print(json.dumps(digest.to_dict(), sort_keys=True))
        return 0
    print("%d digest(s), top %d by %s:" % (len(digests), len(ranked), by))
    for rank, digest in enumerate(ranked, 1):
        print(
            "%2d. [%s] %-40s %10.3f ms  q<=%-8.2f %-8s rows=%d%s"
            % (
                rank,
                digest.plan_hash,
                digest.describe[:40],
                digest.wall_s * 1000,
                digest.max_q_error(),
                digest.backend,
                digest.rows,
                "" if digest.status == "ok" else "  " + digest.status,
            )
        )
    return 0


def _command_obs_incidents(args: List[str]) -> int:
    args = list(args)
    try:
        fmt = _pop_format(args)
    except ValueError as error:
        return _fail(str(error))
    if len(args) != 1:
        return _fail("obs-incidents takes one incident FILE")
    incidents = _read_jsonl(args[0])
    incidents.sort(key=lambda record: record.get("seq", 0))
    if fmt == "json":
        for incident in incidents:
            print(json.dumps(incident, sort_keys=True))
        return 0
    print("%d incident(s):" % len(incidents))
    for incident in incidents:
        error = incident.get("error", {})
        print(
            "#%d %s (%s)%s -- %d event(s) in window"
            % (
                incident.get("seq", 0),
                error.get("type", "?"),
                error.get("code", "?"),
                ""
                if incident.get("trace_id") is None
                else "  trace=%s" % incident["trace_id"],
                len(incident.get("window", ())),
            )
        )
        print("    %s" % error.get("message", ""))
        context = error.get("context", {})
        if context:
            print("    context: %s" % ", ".join(
                "%s=%r" % (key, context[key]) for key in sorted(context)
            ))
    return 0


def _command_serve(args: List[str]) -> int:
    """Serve a directory of CSVs over TCP until SIGINT/SIGTERM."""
    args = list(args)
    try:
        host = _pop_option(args, "--host") or "127.0.0.1"
        port = _pop_option(args, "--port")
        port_file = _pop_option(args, "--port-file")
        token = _pop_option(args, "--token")
        capacity = _pop_option(args, "--capacity")
        max_sessions = _pop_option(args, "--max-sessions")
        drain_timeout = _pop_option(args, "--drain-timeout")
        incident_log = _pop_option(args, "--incident-log")
    except ValueError as error:
        return _fail(str(error))
    try:
        port = 0 if port is None else int(port)
        capacity = 8 if capacity is None else int(capacity)
        max_sessions = 32 if max_sessions is None else int(max_sessions)
        drain_timeout = 1.0 if drain_timeout is None \
            else float(drain_timeout)
    except ValueError:
        return _fail("serve's numeric options take numbers")
    if len(args) != 1:
        return _fail("serve takes CSVDIR")
    db = _load_db(args[0])

    import asyncio
    import signal

    from repro.relational.constraints import Table
    from repro.relational.tx import TransactionManager
    from repro.server import Server

    tables = {
        name: Table(db.relation(name).heading,
                    db.relation(name).iter_dicts())
        for name in db.names()
    }
    manager = TransactionManager(tables)

    async def serve() -> None:
        server = Server(
            manager, token=token, capacity=capacity,
            max_sessions=max_sessions, drain_timeout_s=drain_timeout,
            incident_log=incident_log,
        )
        await server.start(host, port)
        bound = server.port
        if port_file is not None:
            with open(port_file, "w") as handle:
                handle.write("%d\n" % bound)
        print("repro server listening on %s:%d (%d tables)"
              % (host, bound, len(tables)), flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("repro server draining", flush=True)
        result = await server.drain()
        print("repro server stopped (shed=%d, aborted=%d)"
              % (result["shed"], result["aborted"]), flush=True)

    asyncio.run(serve())
    return 0


def _command_views(args: List[str]) -> int:
    verify = "--verify" in args
    if verify:
        args = [arg for arg in args if arg != "--verify"]
    if not args:
        return _fail("views needs a CSV directory")
    directory, *statements = args
    from repro.relational.constraints import Table
    from repro.relational.tx import TransactionManager
    from repro.relational.views import ViewCatalog

    source = _load_db(directory)
    tables = {
        name: Table(source.relation(name).heading,
                    source.relation(name).iter_dicts())
        for name in source.names()
    }
    manager = TransactionManager(tables)
    catalog = ViewCatalog(Database(), manager=manager)
    for statement in statements:
        result = run_xql(
            catalog.database, statement, views=catalog
        )
        for row in result.iter_dicts():
            print("  ".join(
                "%s=%r" % item for item in sorted(row.items())
            ))
    header = ("view", "kind", "rows", "stale", "refresh_v",
              "hit_rate", "applies", "recomputes")
    print("\t".join(header))
    failures = 0
    for entry in catalog.status():
        line = (
            entry["name"], entry["kind"],
            "-" if entry["rows"] is None else str(entry["rows"]),
            "yes" if entry["stale"] else "no",
            str(entry["refresh_version"]),
            "%.2f" % entry["hit_rate"],
            str(entry["delta_applies"]), str(entry["recomputes"]),
        )
        if verify:
            ok = catalog.verify(entry["name"])
            line = line + ("verified" if ok else "MISMATCH",)
            if not ok:
                failures += 1
        print("\t".join(line))
    return 1 if failures else 0


_COMMANDS = {
    "eval": _command_eval,
    "views": _command_views,
    "image": _command_image,
    "query": _command_query,
    "closure": _command_closure,
    "cluster-status": _command_cluster_status,
    "fsck": _command_fsck,
    "recover": _command_recover,
    "analyze": _command_analyze,
    "stats": _command_stats,
    "obs-metrics": _command_obs_metrics,
    "obs-trace": _command_obs_trace,
    "obs-report": _command_obs_report,
    "obs-incidents": _command_obs_incidents,
    "serve": _command_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments or arguments[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command_name, *rest = arguments
    command = _COMMANDS.get(command_name)
    if command is None:
        return _fail("unknown command %r\n%s" % (command_name, _USAGE))
    try:
        return command(rest)
    except XSTError as error:
        # Governance/availability errors carry a stable exit code
        # (repro.errors) so shell callers can branch on *why* a query
        # died: 12 deadline, 13 budget, 14 overloaded, 15 circuit
        # open, 11 cluster unavailable, 16 network, 17 session,
        # 18 write conflict.  Everything else stays 2.
        _fail(str(error))
        return getattr(error, "exit_code", 2)
    except FileNotFoundError as error:
        return _fail(str(error))
