"""Admission control and load shedding for the cluster front door.

A bounded in-flight query table: every query asks for a slot before it
runs and releases it after.  Below ``soft_capacity`` everything is
admitted.  Between soft and hard capacity only queries at or above
``shed_below_priority`` get in -- background work is shed first, the
classic criticality-ordered load-shedding pattern.  At hard
``capacity`` everything is refused.  Refusal is a typed
:class:`~repro.errors.OverloadedError` raised *before any work runs*,
carrying a deterministic retry-after hint proportional to the queue
overshoot -- callers can back off without parsing messages, and two
identical runs shed the identical set of queries.

Priorities are small ints, higher = more important (0 background,
1 normal, 2 critical).  The controller is deliberately synchronous:
this repo's cluster is single-threaded and simulated, so "in flight"
means "admitted and not yet released", which overload tests drive by
holding slots across calls.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.errors import OverloadedError

__all__ = ["AdmissionController", "PRIORITY_BACKGROUND", "PRIORITY_NORMAL",
           "PRIORITY_CRITICAL"]

PRIORITY_BACKGROUND = 0
PRIORITY_NORMAL = 1
PRIORITY_CRITICAL = 2


class AdmissionController:
    """Bounded in-flight table with priority-ordered shedding."""

    def __init__(self, capacity: int, soft_capacity: int = None,
                 shed_below_priority: int = PRIORITY_NORMAL,
                 retry_after_unit_s: float = 0.01):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if soft_capacity is None:
            # Default soft threshold: shed background work once the
            # table is three-quarters full.
            soft_capacity = max(1, (capacity * 3) // 4)
        if not 1 <= soft_capacity <= capacity:
            raise ValueError("need 1 <= soft_capacity <= capacity")
        self.capacity = capacity
        self.soft_capacity = soft_capacity
        self.shed_below_priority = shed_below_priority
        self.retry_after_unit_s = retry_after_unit_s
        self.in_flight = 0
        self.admitted_total = 0
        self.shed_total = 0

    def retry_after_s(self) -> float:
        """Deterministic hint: one unit per query over the soft line."""
        overshoot = max(1, self.in_flight - self.soft_capacity + 1)
        return overshoot * self.retry_after_unit_s

    def try_admit(self, priority: int = PRIORITY_NORMAL) -> None:
        """Take a slot or raise :class:`OverloadedError`; never blocks."""
        if self.in_flight >= self.capacity:
            self.shed_total += 1
            raise OverloadedError(
                self.in_flight, self.capacity, self.retry_after_s(),
                reason="at capacity",
            )
        if self.in_flight >= self.soft_capacity and \
                priority < self.shed_below_priority:
            self.shed_total += 1
            raise OverloadedError(
                self.in_flight, self.capacity, self.retry_after_s(),
                reason="shedding priority<%d" % self.shed_below_priority,
            )
        self.in_flight += 1
        self.admitted_total += 1

    def release(self) -> None:
        if self.in_flight <= 0:
            raise ValueError("release without a matching admit")
        self.in_flight -= 1

    @contextmanager
    def admitted(self, priority: int = PRIORITY_NORMAL) -> Iterator[None]:
        """``with controller.admitted(): ...`` -- admit, run, release."""
        self.try_admit(priority)
        try:
            yield
        finally:
            self.release()

    @contextmanager
    def hold(self, slots: int, priority: int = PRIORITY_CRITICAL
             ) -> Iterator[None]:
        """Occupy ``slots`` for the block -- how tests simulate load."""
        taken = 0
        try:
            for _ in range(slots):
                self.try_admit(priority)
                taken += 1
            yield
        finally:
            for _ in range(taken):
                self.release()

    def __repr__(self) -> str:
        return "AdmissionController(%d/%d in flight, soft=%d, shed=%d)" % (
            self.in_flight, self.capacity, self.soft_capacity,
            self.shed_total,
        )
