"""Resource governance: deadlines, budgets, breakers, admission.

``repro.gov`` is the robustness layer threaded through every execution
path of the reproduction:

* :mod:`repro.gov.governor` -- :class:`Deadline`/:class:`Budget`
  carried as an ambient :class:`Governor`; cooperative cancellation
  via :func:`checkpoint` calls in the XST kernel, plan-node
  evaluation, the optimizer fixpoint, and transaction commit.
* :mod:`repro.gov.breaker` -- per-node circuit breakers on a
  deterministic op-count clock, used by the distributed cluster.
* :mod:`repro.gov.admission` -- bounded in-flight query table with
  priority-ordered load shedding.
* :mod:`repro.gov.result` -- explicitly-marked partial results with a
  missing-bucket manifest for degraded reads.

See ``docs/robustness.md`` for the model and degradation semantics.
"""

from repro.gov.admission import (
    PRIORITY_BACKGROUND,
    PRIORITY_CRITICAL,
    PRIORITY_NORMAL,
    AdmissionController,
)
from repro.gov.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.gov.governor import (
    CELL_BYTES,
    Budget,
    Deadline,
    Governor,
    active,
    checkpoint,
    governed,
    install,
)
from repro.gov.result import MissingBucket, Result

__all__ = [
    "AdmissionController",
    "PRIORITY_BACKGROUND",
    "PRIORITY_NORMAL",
    "PRIORITY_CRITICAL",
    "BreakerBoard",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Budget",
    "Deadline",
    "Governor",
    "CELL_BYTES",
    "active",
    "checkpoint",
    "governed",
    "install",
    "MissingBucket",
    "Result",
]
