"""Per-node circuit breakers: closed -> open -> half-open -> closed.

A dead replica should stop absorbing retry budget.  Without breakers
every read that lands on a killed node burns one failed attempt plus
backoff before failing over; under sustained load that wasted budget
is exactly what pushes queries past their deadlines.  A
:class:`CircuitBreaker` tracks consecutive failures per node and,
after ``failure_threshold`` of them, *opens*: the cluster skips that
replica outright (no attempt, no tick, no backoff).  After a cooldown
the breaker turns *half-open* and admits exactly one probe; the
probe's outcome closes the breaker or re-opens it for another
cooldown.

Time here is **operation count**, not seconds: the cluster feeds its
monotonically increasing op counter into every call, so transitions
are a pure function of the operation sequence -- byte-reproducible in
chaos tests, the same determinism discipline as
:class:`~repro.relational.faults.FaultInjector` ticks.  Cooldowns get
a seeded jitter (distinct per node) so a mass failure does not produce
synchronized probe thundering, while remaining deterministic for a
given seed.

State changes invoke ``on_transition(node, old, new, op)`` -- the
cluster hangs metrics (``repro_gov_breaker_*``) and its breaker log
off this callback.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["CircuitBreaker", "BreakerBoard", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

TransitionHook = Callable[[str, str, str, int], None]


class CircuitBreaker:
    """Failure-counting breaker for one node, on an op-count clock."""

    __slots__ = ("node", "failure_threshold", "cooldown_ops", "state",
                 "failures", "opened_at", "_jitter", "on_transition")

    def __init__(self, node: str, failure_threshold: int = 3,
                 cooldown_ops: int = 8, jitter_ops: int = 3,
                 seed: int = 0,
                 on_transition: Optional[TransitionHook] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_ops < 1:
            raise ValueError("cooldown_ops must be at least 1")
        self.node = node
        self.failure_threshold = failure_threshold
        # Seeded per-node jitter keeps probes of simultaneously-opened
        # breakers from landing on the same op, without wall time.
        rng = random.Random("%d:%s" % (seed, node))
        self.cooldown_ops = cooldown_ops + (
            rng.randrange(jitter_ops + 1) if jitter_ops > 0 else 0
        )
        self.state = CLOSED
        self.failures = 0
        self.opened_at = -1
        self.on_transition = on_transition

    def _transition(self, new_state: str, op: int) -> None:
        old = self.state
        self.state = new_state
        if self.on_transition is not None and old != new_state:
            self.on_transition(self.node, old, new_state, op)

    def allows(self, op: int) -> bool:
        """May the cluster attempt this node at operation ``op``?

        An open breaker whose cooldown has elapsed flips to half-open
        and admits this call as its single probe; a second caller in
        the same half-open window is refused until the probe reports.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if op - self.opened_at >= self.cooldown_ops:
                self._transition(HALF_OPEN, op)
                return True
            return False
        # HALF_OPEN: the single probe is already in flight.
        return False

    def record_success(self, op: int) -> None:
        self.failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED, op)

    def record_failure(self, op: int) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self.opened_at = op
            self._transition(OPEN, op)
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.failure_threshold:
            self.opened_at = op
            self._transition(OPEN, op)

    def retry_after_ops(self, op: int) -> int:
        """Ops until the next probe could run (0 if attemptable now)."""
        if self.state != OPEN:
            return 0
        return max(0, self.cooldown_ops - (op - self.opened_at))

    def __repr__(self) -> str:
        return "CircuitBreaker(%s, %s, failures=%d)" % (
            self.node, self.state, self.failures
        )


class BreakerBoard:
    """All breakers of a cluster plus the shared transition log.

    ``log`` accumulates ``(op, node, old, new)`` tuples in transition
    order -- the deterministic artifact chaos tests compare
    byte-for-byte across reruns.
    """

    def __init__(self, failure_threshold: int = 3, cooldown_ops: int = 8,
                 jitter_ops: int = 3, seed: int = 0,
                 on_transition: Optional[TransitionHook] = None):
        self.failure_threshold = failure_threshold
        self.cooldown_ops = cooldown_ops
        self.jitter_ops = jitter_ops
        self.seed = seed
        self._external_hook = on_transition
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.log: List[Tuple[int, str, str, str]] = []

    def _record(self, node: str, old: str, new: str, op: int) -> None:
        self.log.append((op, node, old, new))
        if self._external_hook is not None:
            self._external_hook(node, old, new, op)

    def breaker(self, node: str) -> CircuitBreaker:
        breaker = self._breakers.get(node)
        if breaker is None:
            breaker = CircuitBreaker(
                node,
                failure_threshold=self.failure_threshold,
                cooldown_ops=self.cooldown_ops,
                jitter_ops=self.jitter_ops,
                seed=self.seed,
                on_transition=self._record,
            )
            self._breakers[node] = breaker
        return breaker

    def states(self) -> Dict[str, str]:
        return {
            node: breaker.state
            for node, breaker in sorted(self._breakers.items())
        }

    def __repr__(self) -> str:
        return "BreakerBoard(%d breakers, %d transitions)" % (
            len(self._breakers), len(self.log)
        )
