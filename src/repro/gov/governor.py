"""Deadlines, budgets and cooperative cancellation checkpoints.

The paper's section 12 claim -- set processing stays tractable where
record processing degrades -- presumes an executor that *survives* a
pathological query.  This module is the enforcement half of that
claim: a :class:`Governor` bundles a :class:`Deadline` (wall or
simulated clock) and a :class:`Budget` (rows, cells, estimated bytes),
and execution layers call :func:`checkpoint` at cooperative
cancellation points -- between plan nodes, per kernel-loop batch, per
fixpoint round -- so a runaway operator dies *mid-materialization*
with a typed :class:`~repro.errors.DeadlineExceededError` or
:class:`~repro.errors.BudgetExceededError`, never after completing
work nobody will see.

Design rules:

* **Free when uninstalled.**  ``checkpoint`` reads one module global
  and returns when it is ``None``; hot loops fetch :func:`active` once
  and test a local against ``None`` per batch.  The no-governor cost
  is priced in ``benchmarks/bench_gov.py`` (E22) and is within noise.
* **Deterministic on demand.**  A deadline over the default wall clock
  bounds real execution; :meth:`Deadline.simulated` freezes the clock
  so only explicitly-charged simulated seconds (cluster backoff, node
  delays) draw it down -- byte-reproducible across machines, the same
  trick as :class:`repro.obs.trace.FakeClock`.
* **One ledger.**  The distributed layer's ``query_timeout_s`` is a
  *default* feeding this Deadline; backoff sleeps and node delays draw
  down the same object a surrounding ``governed()`` scope installed,
  so no simulated second is ever counted against two parallel budgets.

Metrics (all ``repro_gov_*``, recorded only under ``REPRO_OBS``):
cancellations by reason, checkpoint counts at death, and a
deadline-slack histogram observed when a governed scope completes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.errors import BudgetExceededError, DeadlineExceededError
from repro.obs import metrics as _metrics
from repro.obs.instrument import enabled as _obs_enabled

__all__ = [
    "Deadline",
    "Budget",
    "Governor",
    "active",
    "install",
    "checkpoint",
    "governed",
    "CELL_BYTES",
]

#: Documented estimate of one materialized cell's in-memory footprint,
#: used to map a cell budget onto ``max_bytes``.  Deliberately coarse:
#: budgets bound *blast radius*, they are not an allocator.
CELL_BYTES = 64


class Deadline:
    """A time budget drawn down by wall time and/or simulated charges.

    ``clock`` is any zero-argument callable returning seconds; the
    default is :func:`time.monotonic`.  ``elapsed_s`` is the wall time
    since construction *plus* every explicitly charged simulated
    second, so one Deadline can govern a mixture of real kernel work
    and simulated cluster latency without double counting either.
    """

    __slots__ = ("timeout_s", "_clock", "_start", "_charged")

    def __init__(self, timeout_s: float,
                 clock: Optional[Callable[[], float]] = None):
        if timeout_s < 0:
            raise ValueError("a deadline needs a non-negative timeout")
        self.timeout_s = float(timeout_s)
        self._clock = time.monotonic if clock is None else clock
        self._start = self._clock()
        self._charged = 0.0

    @classmethod
    def simulated(cls, timeout_s: float) -> "Deadline":
        """A deadline drawn down *only* by :meth:`charge` calls.

        The clock is frozen, so elapsed time is exactly the simulated
        seconds charged -- deterministic across machines.  This is what
        ``Cluster.query_timeout_s`` builds when no ambient governor
        supplies a deadline.
        """
        return cls(timeout_s, clock=lambda: 0.0)

    def charge(self, seconds: float) -> None:
        """Draw down ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError("deadlines only draw down")
        self._charged += seconds

    def elapsed_s(self) -> float:
        return (self._clock() - self._start) + self._charged

    def remaining_s(self) -> float:
        return self.timeout_s - self.elapsed_s()

    def expired(self) -> bool:
        return self.remaining_s() < 0

    def check(self, site: str = "<unknown>") -> None:
        """Raise :class:`DeadlineExceededError` if the budget ran out."""
        elapsed = self.elapsed_s()
        if elapsed > self.timeout_s:
            raise DeadlineExceededError(elapsed, self.timeout_s, site=site)

    def __repr__(self) -> str:
        return "Deadline(%.6fs, %.6fs remaining)" % (
            self.timeout_s, self.remaining_s()
        )


class Budget:
    """Resource ceilings: materialized rows, cells, estimated bytes.

    Rows are charged wherever sized intermediate results appear (plan
    node outputs, kernel-loop batches, fixpoint deltas); cells are
    ``rows x width`` at sites that know a heading width (kernel sites
    charge width 1).  ``max_bytes`` is enforced as
    ``cells x CELL_BYTES`` -- an *operator memory estimate*, priced
    coarsely on purpose.
    """

    __slots__ = ("max_rows", "max_cells", "max_bytes", "rows", "cells")

    def __init__(self, max_rows: Optional[int] = None,
                 max_cells: Optional[int] = None,
                 max_bytes: Optional[int] = None):
        for name, limit in (("max_rows", max_rows),
                            ("max_cells", max_cells),
                            ("max_bytes", max_bytes)):
            if limit is not None and limit < 0:
                raise ValueError("%s must be non-negative" % name)
        self.max_rows = max_rows
        self.max_cells = max_cells
        self.max_bytes = max_bytes
        self.rows = 0
        self.cells = 0

    def estimated_bytes(self) -> int:
        return self.cells * CELL_BYTES

    def charge(self, site: str, rows: int, width: int = 1) -> None:
        """Account ``rows`` materialized rows of ``width`` attributes.

        Raises :class:`BudgetExceededError` naming the first exhausted
        ledger; the charge is recorded *before* the check so the error
        reports the true overshoot.
        """
        self.rows += rows
        self.cells += rows * width
        if self.max_rows is not None and self.rows > self.max_rows:
            raise BudgetExceededError(
                "rows", self.rows, self.max_rows, site=site
            )
        if self.max_cells is not None and self.cells > self.max_cells:
            raise BudgetExceededError(
                "cells", self.cells, self.max_cells, site=site
            )
        if self.max_bytes is not None and \
                self.estimated_bytes() > self.max_bytes:
            raise BudgetExceededError(
                "bytes", self.estimated_bytes(), self.max_bytes, site=site
            )

    def __repr__(self) -> str:
        return "Budget(rows=%d/%s, cells=%d/%s)" % (
            self.rows, self.max_rows, self.cells, self.max_cells
        )


class Governor:
    """A deadline and/or budget plus checkpoint bookkeeping.

    ``checkpoint`` is the single cooperative cancellation primitive:
    charge whatever was materialized since the last call, then check
    the deadline.  ``last_site`` records where execution currently is,
    which is how "a span recording where it died" works: on
    cancellation the failure site is attached to the active span of
    the global tracer (when observability is on).
    """

    __slots__ = ("deadline", "budget", "checkpoints", "last_site")

    def __init__(self, deadline: Optional[Deadline] = None,
                 budget: Optional[Budget] = None):
        self.deadline = deadline
        self.budget = budget
        self.checkpoints = 0
        self.last_site: Optional[str] = None

    def checkpoint(self, site: str, rows: int = 0, width: int = 1) -> None:
        self.checkpoints += 1
        self.last_site = site
        try:
            if self.budget is not None and rows:
                self.budget.charge(site, rows, width)
            if self.deadline is not None:
                self.deadline.check(site)
        except (BudgetExceededError, DeadlineExceededError) as error:
            _record_cancellation(error, site, self.checkpoints)
            raise

    def __repr__(self) -> str:
        return "Governor(deadline=%r, budget=%r, checkpoints=%d)" % (
            self.deadline, self.budget, self.checkpoints
        )


def _record_cancellation(error: Any, site: str, checkpoints: int) -> None:
    """Metric + span annotation for one mid-operator cancellation."""
    if not _obs_enabled():
        return
    reason = (
        "deadline" if isinstance(error, DeadlineExceededError)
        else "budget_%s" % error.resource
    )
    _metrics.registry().counter(
        "repro_gov_cancelled_total",
        "Governed executions cancelled mid-operator.", ("reason",),
    ).inc(reason=reason)
    from repro.obs.trace import tracer as _tracer

    span = _tracer().active
    if span is not None:
        span.set("gov_died_at", site)
        span.set("gov_checkpoints", checkpoints)
    from repro.obs.recorder import notify_gov_event

    notify_gov_event(
        "cancelled",
        {"reason": reason, "site": site, "checkpoints": checkpoints},
    )


#: The ambient governor.  One per process by design: governance is a
#: property of "this execution right now", installed with
#: :func:`governed` around the query and read by every checkpoint.
_ACTIVE: Optional[Governor] = None


def active() -> Optional[Governor]:
    """The installed governor, or ``None`` (the common, free case)."""
    return _ACTIVE


def install(governor: Optional[Governor]) -> Optional[Governor]:
    """Install (or clear) the ambient governor; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = governor
    return previous


def checkpoint(site: str, rows: int = 0, width: int = 1) -> None:
    """Cooperative cancellation point: no-op without a governor."""
    governor = _ACTIVE
    if governor is not None:
        governor.checkpoint(site, rows, width)


@contextmanager
def governed(
    timeout_s: Optional[float] = None,
    max_rows: Optional[int] = None,
    max_cells: Optional[int] = None,
    max_bytes: Optional[int] = None,
    clock: Optional[Callable[[], float]] = None,
    deadline: Optional[Deadline] = None,
    budget: Optional[Budget] = None,
) -> Iterator[Governor]:
    """Install a governor for the scope of the ``with`` block.

    Build one from the keyword limits, or pass pre-built ``deadline``/
    ``budget`` objects (e.g. a shared :meth:`Deadline.simulated`).
    Scopes nest by replacement: the inner governor fully owns its
    block, the outer is restored on exit.  On a *successful* exit the
    remaining deadline slack is observed into
    ``repro_gov_deadline_slack_seconds`` (observability on), so
    operators can see how close completed work runs to its limits.
    """
    if deadline is None and timeout_s is not None:
        deadline = Deadline(timeout_s, clock=clock)
    if budget is None and (
        max_rows is not None or max_cells is not None or max_bytes is not None
    ):
        budget = Budget(max_rows=max_rows, max_cells=max_cells,
                        max_bytes=max_bytes)
    governor = Governor(deadline=deadline, budget=budget)
    previous = install(governor)
    completed = False
    try:
        yield governor
        completed = True
    finally:
        install(previous)
        if completed and governor.deadline is not None and _obs_enabled():
            _metrics.registry().histogram(
                "repro_gov_deadline_slack_seconds",
                "Deadline slack remaining when a governed scope completed.",
            ).observe(max(0.0, governor.deadline.remaining_s()))
