"""Explicitly-marked partial results for degraded reads.

When a cluster is allowed to degrade (``allow_partial=True``) it
returns a :class:`Result` instead of a bare relation.  The wrapper
never hides degradation: ``partial`` is True whenever *any* partition
is missing, ``missing`` is the manifest of unreachable buckets (table,
bucket index, reason), and ``quorum_downgraded`` marks reads that were
served below the requested replica quorum.  Correctness-sensitive
callers call :meth:`require_complete`, which re-raises the typed
unavailability error for the first missing bucket -- the degraded path
is opt-in twice, once at the query and once at consumption.

A complete Result proxies enough of the relation surface
(``heading``, ``rows``, ``cardinality``, ``iter_dicts``) that code
written against relations keeps working when handed one.
"""

from __future__ import annotations

from typing import Any, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import ClusterUnavailableError

__all__ = ["MissingBucket", "Result"]


class MissingBucket(NamedTuple):
    """One unreachable partition in a partial answer."""

    table: str
    bucket: int
    reason: str


class Result:
    """A relation plus an honest account of what it is missing."""

    __slots__ = ("relation", "missing", "quorum_downgraded")

    def __init__(self, relation: Any,
                 missing: Optional[List[MissingBucket]] = None,
                 quorum_downgraded: bool = False):
        self.relation = relation
        self.missing: Tuple[MissingBucket, ...] = tuple(missing or ())
        self.quorum_downgraded = quorum_downgraded

    @property
    def partial(self) -> bool:
        """True when any partition's data is absent from ``relation``."""
        return bool(self.missing)

    @property
    def degraded(self) -> bool:
        """Partial *or* served below the requested quorum."""
        return self.partial or self.quorum_downgraded

    def require_complete(self) -> Any:
        """The relation, or the typed error behind the first gap.

        Quorum-downgraded-but-complete answers pass: every row is
        present, only the read's redundancy was reduced.
        """
        if self.missing:
            first = self.missing[0]
            raise ClusterUnavailableError(
                first.table, first.bucket, reason=first.reason
            )
        return self.relation

    # -- relation proxy (complete or not, the rows we do have) ---------

    def cardinality(self) -> int:
        return self.relation.cardinality()

    @property
    def heading(self) -> Any:
        return self.relation.heading

    @property
    def rows(self) -> Any:
        return self.relation.rows

    def iter_dicts(self) -> Iterator[Any]:
        return self.relation.iter_dicts()

    def __len__(self) -> int:
        return len(self.relation)

    def __repr__(self) -> str:
        marks = []
        if self.partial:
            marks.append("missing %d buckets" % len(self.missing))
        if self.quorum_downgraded:
            marks.append("quorum downgraded")
        return "Result(%d rows%s)" % (
            self.relation.cardinality(),
            (", " + ", ".join(marks)) if marks else "",
        )
