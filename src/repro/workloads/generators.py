"""Seeded synthetic workloads for tests and benchmarks.

The 1977 evaluation environment (backend hardware, proprietary data)
is unavailable; these generators are the documented substitute (see
DESIGN.md).  Every generator takes an explicit ``seed`` and is fully
deterministic, so benchmark runs are comparable across machines and
repeated runs -- the claims under test are comparative (who wins, by
what shape), which synthetic data preserves.

Shapes provided:

* flat pair relations (for image/application/composition benches),
  with controllable fan-out so functional and non-functional graphs
  can both be produced;
* pipeline stages (chains of composable pair relations);
* employee/department style relational schemas with a key/foreign-key
  join and skewable value distributions (for the set-vs-record and
  join benches).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.relational.relation import Relation
from repro.xst.builders import xpair, xset
from repro.xst.xset import XSet

__all__ = [
    "pair_relation",
    "functional_pairs",
    "pipeline_stages",
    "employees",
    "departments",
    "employee_relation",
    "department_relation",
    "skewed_values",
]


def pair_relation(
    size: int, seed: int = 0, key_space: int = 0, fanout: int = 1
) -> XSet:
    """A pair relation ``{<k, v>}`` with ``size`` members.

    ``key_space`` bounds the distinct keys (0 means ``size``, i.e. all
    keys distinct); ``fanout`` > 1 lets single keys map to several
    values, producing one-to-many graphs.
    """
    rng = random.Random(seed)
    keys = key_space or size
    pairs = set()
    attempts = 0
    while len(pairs) < size and attempts < size * 20:
        key = rng.randrange(keys)
        value = rng.randrange(max(1, size // max(1, fanout)))
        pairs.add((key, value))
        attempts += 1
    return xset(xpair(key, value) for key, value in pairs)


def functional_pairs(size: int, seed: int = 0) -> XSet:
    """A *functional* pair relation: a seeded permutation of ``0..size-1``.

    Keys are distinct and values cover the same space, so stages built
    this way compose totally -- stage N's outputs are always valid
    stage N+1 keys.
    """
    rng = random.Random(seed)
    values = list(range(size))
    rng.shuffle(values)
    return xset(xpair(key, value) for key, value in enumerate(values))


def pipeline_stages(depth: int, size: int, seed: int = 0) -> List[XSet]:
    """``depth`` composable functional stages over the key space ``0..size-1``.

    Each stage is a seeded permutation of the key space, so any prefix
    composition is total and functional -- the ideal shape for the
    Theorem 11.2 fusion benchmarks.
    """
    return [
        functional_pairs(size, seed=seed + stage_index)
        for stage_index in range(depth)
    ]


def skewed_values(count: int, distinct: int, seed: int = 0, skew: float = 1.1) -> List[int]:
    """``count`` draws from ``0..distinct-1`` with Zipf-like skew.

    ``skew`` near 1.0 is mildly skewed; larger values concentrate mass
    on low keys.  Used to stress hash-join bucket imbalance.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(distinct)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    out = []
    for _ in range(count):
        point = rng.random()
        low, high = 0, distinct - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        out.append(low)
    return out


_FIRST_NAMES = (
    "ada", "alan", "barbara", "claude", "donald", "edsger", "grace",
    "john", "kathleen", "niklaus",
)


def employees(
    count: int, departments_count: int, seed: int = 0, skew: float = 0.0
) -> List[Dict[str, Any]]:
    """Employee rows: ``emp`` key, ``name``, ``dept`` foreign key, ``salary``."""
    rng = random.Random(seed)
    if skew:
        dept_draws = skewed_values(count, departments_count, seed=seed, skew=skew)
    else:
        dept_draws = [rng.randrange(departments_count) for _ in range(count)]
    rows = []
    for emp_id in range(count):
        rows.append(
            {
                "emp": emp_id,
                "name": "%s-%d" % (_FIRST_NAMES[emp_id % len(_FIRST_NAMES)], emp_id),
                "dept": dept_draws[emp_id],
                "salary": 30000 + rng.randrange(70000),
            }
        )
    return rows


def departments(count: int, seed: int = 0) -> List[Dict[str, Any]]:
    """Department rows: ``dept`` key, ``dname``, ``budget``."""
    rng = random.Random(seed + 1)
    return [
        {
            "dept": dept_id,
            "dname": "dept-%d" % dept_id,
            "budget": 100000 + rng.randrange(900000),
        }
        for dept_id in range(count)
    ]


def employee_relation(
    count: int, departments_count: int, seed: int = 0, skew: float = 0.0
) -> Relation:
    """The employee workload as a :class:`Relation`."""
    return Relation.from_dicts(
        ["emp", "name", "dept", "salary"],
        employees(count, departments_count, seed=seed, skew=skew),
    )


def department_relation(count: int, seed: int = 0) -> Relation:
    """The department workload as a :class:`Relation`."""
    return Relation.from_dicts(
        ["dept", "dname", "budget"], departments(count, seed=seed)
    )
