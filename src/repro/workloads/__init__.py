"""Deterministic synthetic workload generators (see DESIGN.md)."""

from repro.workloads.generators import (
    department_relation,
    departments,
    employee_relation,
    employees,
    functional_pairs,
    pair_relation,
    pipeline_stages,
    skewed_values,
)

__all__ = [
    "pair_relation",
    "functional_pairs",
    "pipeline_stages",
    "employees",
    "departments",
    "employee_relation",
    "department_relation",
    "skewed_values",
]
