"""Network front door: serve the extended-set algebra over TCP.

The 1977 programme's target is a *backend information system*: many
clients, one structured access surface, storage structure invisible
behind it.  This package is that surface -- a small, versioned,
length-prefixed and CRC-framed wire protocol (:mod:`.protocol`)
spoken by an asyncio TCP server (:mod:`.service`) over per-connection
sessions (:mod:`.session`) pinned to MVCC snapshots
(:class:`repro.relational.tx.Snapshot`), and a retrying client
(:mod:`.client`) with idempotent request ids and capped,
deadline-ledgered exponential backoff.

Robustness contract (pinned by ``tests/server/``): for every seeded
network fault schedule, a client either receives the byte-identical
answer the embedded :meth:`~repro.relational.query.Database.execute`
produces, or a typed :class:`~repro.errors.UnavailableError`
subclass -- never a hang, a partial page presented as complete, or an
untyped exception.
"""

from repro.server.client import Client, connect
from repro.server.protocol import (
    FrameDecoder,
    FrameType,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_body,
    encode_frame,
    error_body,
    error_from_body,
)
from repro.server.service import Server
from repro.server.session import Session

__all__ = [
    "Client",
    "connect",
    "FrameDecoder",
    "FrameType",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "decode_body",
    "encode_frame",
    "error_body",
    "error_from_body",
    "Server",
    "Session",
]
