"""The asyncio TCP server: admission-gated, fault-injectable, drainable.

One event loop, one reader task per connection, sequential request
dispatch per connection -- the concurrency model matches the rest of
the repo (deterministic, no threads).  The pieces:

* **Handshake**: the first frame must be HELLO (protocol version,
  optional auth token, client id, priority class); the reply is
  WELCOME with the server-assigned session id, the MVCC version the
  session is pinned to, and the session's trace id -- the causal
  thread every later span on either side of the wire carries.
* **Front door**: every QUERY/EXECUTE/MUTATE asks the
  :class:`~repro.gov.admission.AdmissionController` for a slot first,
  so overload sheds work *before* it runs, with the controller's
  deterministic ``retry_after_s`` hint riding the ERROR frame.
* **Fault injection**: every outgoing frame passes through a
  :class:`~repro.relational.faults.NetworkFaultInjector`, which may
  delay it, tear it (send a prefix and abort), or drop the connection
  -- the same seeded-schedule determinism the storage and cluster
  layers already have, moved to the wire.
* **Slow consumers**: a send that cannot drain within
  ``send_timeout_s`` sheds the connection (typed
  :class:`~repro.errors.NetworkError` recorded, transport aborted)
  instead of letting one stalled reader pin server buffers.
* **Idempotent writes**: MUTATE results are cached by
  ``(client_id, request_id)`` *before* the ack is sent, so a client
  that lost the ack can retry the same request id and get the original
  commit version back -- an acknowledged write is never applied twice.
* **Graceful drain**: :meth:`Server.drain` stops accepting, sheds
  in-flight work below the admission controller's priority line with
  a deterministic retry-after, lets higher-priority requests finish
  within ``drain_timeout_s``, says GOODBYE to everyone, and flushes
  the flight recorder's incidents to ``incident_log``.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Dict, Optional, Set, Tuple

from repro.errors import (
    NetworkError,
    OverloadedError,
    SessionError,
    XSTError,
)
from repro.gov.admission import AdmissionController, PRIORITY_CRITICAL
from repro.obs.recorder import recorder
from repro.obs.trace import TraceContext, tracer
from repro.relational.faults import NO_NETWORK_FAULTS, NetworkFaultInjector
from repro.relational.sql import run as run_xql
from repro.relational.tx import TransactionManager
from repro.server.protocol import (
    FrameDecoder,
    FrameType,
    PROTOCOL_VERSION,
    encode_frame,
    error_body,
)
from repro.server.session import Session

__all__ = ["Server"]

_READ_CHUNK = 1 << 16


class _Hangup(Exception):
    """Internal: abort this connection immediately (injected fault,
    slow consumer, or drain deadline) -- never leaves the server."""


class _Connection:
    """Book-keeping for one accepted socket."""

    def __init__(self, conn_id: int,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.conn_id = conn_id
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.frames: "asyncio.Queue[Tuple[str, Any]]" = asyncio.Queue()
        self.cancelled: Set[str] = set()
        self.session: Optional[Session] = None
        self.trace: Optional[TraceContext] = None
        self.client_id = "?"
        self.current_rid: Optional[str] = None
        self.busy = False
        self.draining = False
        self.shed = False


class Server:
    """Serve a :class:`~repro.relational.tx.TransactionManager` over TCP."""

    def __init__(self, manager: TransactionManager, *,
                 token: Optional[str] = None,
                 capacity: int = 8,
                 soft_capacity: Optional[int] = None,
                 max_sessions: int = 32,
                 page_rows: int = 64,
                 send_timeout_s: float = 2.0,
                 drain_timeout_s: float = 1.0,
                 net_faults: NetworkFaultInjector = NO_NETWORK_FAULTS,
                 admission: Optional[AdmissionController] = None,
                 incident_log: Optional[str] = None,
                 result_cache_capacity: int = 0):
        self._manager = manager
        self._token = token
        # One result cache shared by every session (0 = disabled):
        # entries are keyed by per-table MVCC versions, so sessions
        # pinned at the same versions share hits and the commit-diff
        # stream below reclaims entries the moment a table moves on.
        self.result_cache = None
        if result_cache_capacity > 0:
            from repro.relational.ivm.cache import QueryResultCache

            self.result_cache = QueryResultCache(
                capacity=result_cache_capacity, name="server"
            )
            manager.subscribe(self._on_commit_diff)
        self.admission = admission if admission is not None else \
            AdmissionController(capacity, soft_capacity)
        self.max_sessions = max_sessions
        self.page_rows = max(1, page_rows)
        self.send_timeout_s = send_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.net_faults = net_faults
        self.incident_log = incident_log
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: Set[_Connection] = set()
        self._conn_ids = 0
        self._session_ids = 0
        # (client_id, request_id) -> commit version, insertion-ordered
        # so the cache stays bounded by evicting the oldest acks.
        self._idempotent: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        self.idempotent_capacity = 256
        self.draining = False
        self.sessions_served = 0
        self.requests_served = 0
        self.connections_aborted = 0
        self.writes_replayed = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting; ``port=0`` picks a free port."""
        if self._server is not None:
            raise SessionError("server is already started")
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port
        )

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise SessionError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def open_connections(self) -> int:
        return len(self._conns)

    async def close(self) -> None:
        """Hard stop: close the listener and abort every connection."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns):
            self._abort(conn)
        await asyncio.sleep(0)

    async def drain(self) -> Dict[str, int]:
        """Graceful shutdown; returns ``{"finished": n, "shed": m}``.

        Stops accepting, then walks the open connections: idle ones
        get an orderly GOODBYE now; busy ones below the admission
        controller's ``shed_below_priority`` line are shed (their
        in-flight request dies with a typed
        :class:`~repro.errors.OverloadedError` carrying the
        controller's deterministic retry-after); busy ones at or above
        the line may finish their current request, bounded by
        ``drain_timeout_s``, after which stragglers are aborted.
        Finally the flight recorder's incidents are flushed to
        ``incident_log`` when one is configured.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        shed = 0
        for conn in list(self._conns):
            conn.draining = True
            if not conn.busy:
                conn.frames.put_nowait(("drain", None))
            elif conn.session is not None and \
                    conn.session.priority < self.admission.shed_below_priority:
                conn.shed = True
                shed += 1
        # Busy connections finish (or die shedding) at their next page
        # boundary; poll until everyone is gone or the drain deadline
        # passes, then abort the stragglers.
        waited = 0.0
        step = 0.005
        while self._conns and waited < self.drain_timeout_s:
            await asyncio.sleep(step)
            waited += step
        aborted = len(self._conns)
        for conn in list(self._conns):
            self._abort(conn)
        if self.incident_log is not None and recorder().installed:
            recorder().export_jsonl(self.incident_log)
        return {"finished": 0, "shed": shed, "aborted": aborted}

    # -- connection handling --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._conn_ids += 1
        conn = _Connection(self._conn_ids, reader, writer)
        self._conns.add(conn)
        pump = asyncio.ensure_future(self._pump(conn))
        try:
            await self._serve_conn(conn)
        except _Hangup:
            self.connections_aborted += 1
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            pump.cancel()
            if conn.session is not None:
                conn.session.close()
            self._conns.discard(conn)
            try:
                if conn.writer.transport is not None:
                    conn.writer.transport.abort()
            except (RuntimeError, AttributeError):
                pass

    async def _pump(self, conn: _Connection) -> None:
        """Reader task: bytes -> frames -> the connection's queue.

        Runs concurrently with dispatch so CANCEL frames take effect
        *while* a result stream is in flight -- the pump marks the
        request id cancelled out-of-band, and the page loop notices at
        the next page boundary.
        """
        try:
            while True:
                data = await conn.reader.read(_READ_CHUNK)
                if not data:
                    try:
                        conn.decoder.finish()
                    except NetworkError as err:
                        conn.frames.put_nowait(("error", err))
                        return
                    conn.frames.put_nowait(("eof", None))
                    return
                try:
                    frames = conn.decoder.feed(data)
                except NetworkError as err:
                    conn.frames.put_nowait(("error", err))
                    return
                for ftype, body in frames:
                    if ftype == FrameType.CANCEL:
                        rid = body.get("id")
                        if isinstance(rid, str):
                            conn.cancelled.add(rid)
                    conn.frames.put_nowait(("frame", (ftype, body)))
        except (ConnectionError, asyncio.CancelledError):
            return

    async def _serve_conn(self, conn: _Connection) -> None:
        kind, payload = await conn.frames.get()
        if kind != "frame":
            if kind == "error":
                await self._send_error(conn, payload, None)
            return
        ftype, body = payload
        if ftype != FrameType.HELLO:
            await self._send_error(
                conn,
                SessionError("expected HELLO, got frame type %d" % ftype),
                body.get("id") if isinstance(body, dict) else None,
            )
            return
        try:
            session = self._open_session(body)
        except XSTError as err:
            await self._send_error(conn, err, body.get("id"))
            return
        conn.session = session
        conn.client_id = str(body.get("client", "?"))
        conn.trace = TraceContext(
            "trace-%s" % session.session_id,
            baggage={"session": session.session_id},
        )
        await self._send(conn, FrameType.WELCOME, {
            "session": session.session_id,
            "version": session.version,
            "trace": conn.trace.trace_id,
            "tables": session.snapshot.names(),
        })
        while True:
            if conn.draining:
                await self._goodbye(conn, "draining")
                return
            kind, payload = await conn.frames.get()
            if kind == "error":
                await self._send_error(conn, payload, None)
                return
            if kind == "eof":
                return
            if kind == "drain":
                await self._goodbye(conn, "draining")
                return
            ftype, body = payload
            if ftype == FrameType.GOODBYE:
                await self._send(conn, FrameType.GOODBYE,
                                 {"reason": "goodbye"})
                return
            await self._dispatch(conn, ftype, body)

    def _open_session(self, body: Dict[str, Any]) -> Session:
        if body.get("protocol") != PROTOCOL_VERSION:
            raise SessionError(
                "unsupported protocol %r (server speaks %d)"
                % (body.get("protocol"), PROTOCOL_VERSION)
            )
        if self._token is not None and body.get("token") != self._token:
            raise SessionError("authentication rejected")
        if self.draining:
            raise SessionError(
                "server is draining",
                retry_after_s=self.admission.retry_after_s(),
            )
        open_sessions = sum(1 for c in self._conns if c.session is not None)
        if open_sessions >= self.max_sessions:
            raise SessionError(
                "session table is full (%d open)" % open_sessions,
                retry_after_s=self.admission.retry_after_s(),
            )
        priority = body.get("priority", 1)
        if not isinstance(priority, int) or \
                not 0 <= priority <= PRIORITY_CRITICAL:
            raise SessionError("priority must be an int in [0, %d]"
                               % PRIORITY_CRITICAL)
        self._session_ids += 1
        self.sessions_served += 1
        return Session(
            "s%d" % self._session_ids, self._manager,
            principal=str(body.get("client", "anonymous")),
            priority=priority,
            result_cache=self.result_cache,
        )

    def _on_commit_diff(self, version: int, changes) -> None:
        """Commit hook: reclaim cache entries over the changed tables."""
        if self.result_cache is not None:
            self.result_cache.invalidate_tables(sorted(changes))

    # -- request dispatch -----------------------------------------------

    async def _dispatch(self, conn: _Connection, ftype: int,
                        body: Dict[str, Any]) -> None:
        rid = body.get("id")
        if not isinstance(rid, str) or not rid:
            await self._send_error(
                conn, SessionError("requests need a string id"), None
            )
            return
        if ftype == FrameType.CANCEL:
            # The pump already marked it; this is just the ack for a
            # cancel that raced past its target (or targeted nothing).
            await self._send(conn, FrameType.CANCELLED, {"id": rid})
            return
        session = conn.session
        conn.busy = True
        conn.current_rid = rid
        self.requests_served += 1
        with tracer().span("server.request", kind=ftype, request=rid,
                           session=session.session_id) as span:
            conn.trace.annotate(span)
            try:
                if ftype == FrameType.QUERY:
                    await self._run_query(conn, rid, body.get("xql", ""))
                elif ftype == FrameType.EXECUTE:
                    text = session.statement(
                        body.get("name", ""), body.get("args", [])
                    )
                    await self._run_query(conn, rid, text)
                elif ftype == FrameType.PREPARE:
                    session.prepare(body.get("name", ""),
                                    body.get("xql", ""))
                    await self._send(conn, FrameType.PREPARED,
                                     {"id": rid, "name": body.get("name")})
                elif ftype == FrameType.MUTATE:
                    await self._run_mutate(conn, rid, body)
                elif ftype == FrameType.REFRESH:
                    version = session.refresh()
                    await self._send(conn, FrameType.REFRESHED,
                                     {"id": rid, "version": version})
                else:
                    raise SessionError(
                        "unexpected frame type %d" % ftype,
                        session_id=session.session_id,
                    )
            except _Hangup:
                raise
            except Exception as err:  # typed or not, never kill the loop
                span.set("error", getattr(err, "code", "ERROR"))
                await self._send_error(conn, err, rid)
            finally:
                conn.busy = False
                conn.current_rid = None

    def _check_shed(self, conn: _Connection, rid: str) -> None:
        if conn.shed:
            raise OverloadedError(
                self.admission.in_flight, self.admission.capacity,
                self.admission.retry_after_s(), reason="draining",
            )

    async def _run_query(self, conn: _Connection, rid: str,
                         xql: str) -> None:
        session = conn.session
        self._check_shed(conn, rid)
        with self.admission.admitted(session.priority):
            relation = run_xql(session.database(), xql)
        heading = list(relation.heading.names)
        rows = [list(row) for row in relation.to_rows()]
        total, sent, seq = len(rows), 0, 0
        while True:
            if rid in conn.cancelled:
                await self._send(conn, FrameType.CANCELLED, {"id": rid})
                return
            self._check_shed(conn, rid)
            chunk = rows[sent:sent + self.page_rows]
            last = sent + len(chunk) >= total
            await self._send(conn, FrameType.PAGE, {
                "id": rid, "seq": seq, "heading": heading,
                "rows": chunk, "last": last,
                "version": session.version,
            })
            sent += len(chunk)
            seq += 1
            if last:
                return
            # Yield so the pump can deliver a CANCEL between pages.
            await asyncio.sleep(0)

    async def _run_mutate(self, conn: _Connection, rid: str,
                          body: Dict[str, Any]) -> None:
        session = conn.session
        key = (conn.client_id, rid)
        cached = self._idempotent.get(key)
        if cached is not None:
            # A retry of an acknowledged write: replay the original
            # ack, never the write.
            self.writes_replayed += 1
            await self._send(conn, FrameType.COMMITTED, {
                "id": rid, "version": cached, "replayed": True,
            })
            return
        self._check_shed(conn, rid)
        with self.admission.admitted(session.priority):
            version = session.mutate(body.get("ops", []))
        # Remember the ack *before* sending it: if the send dies on
        # the wire, the client's retry finds the cache and the write
        # is not applied twice.
        self._idempotent[key] = version
        while len(self._idempotent) > self.idempotent_capacity:
            self._idempotent.popitem(last=False)
        await self._send(conn, FrameType.COMMITTED, {
            "id": rid, "version": version, "replayed": False,
        })

    # -- the instrumented send path -------------------------------------

    async def _send(self, conn: _Connection, ftype: int,
                    body: Dict[str, Any]) -> None:
        data = encode_frame(ftype, body)
        action, payload, delay_s = self.net_faults.on_frame(data)
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        if action == "drop":
            raise _Hangup("injected connection drop")
        conn.writer.write(payload)
        try:
            await asyncio.wait_for(conn.writer.drain(), self.send_timeout_s)
        except asyncio.TimeoutError:
            # Constructing the typed error snapshots recorder context;
            # the connection is then shed so one stalled reader cannot
            # pin server buffers.
            NetworkError(
                "slow consumer: send stalled past %.3fs"
                % self.send_timeout_s
            )
            raise _Hangup("slow consumer") from None
        except ConnectionError:
            raise _Hangup("peer went away") from None
        if action == "tear":
            raise _Hangup("injected torn frame")

    async def _send_error(self, conn: _Connection, error: Exception,
                          rid: Optional[str]) -> None:
        await self._send(conn, FrameType.ERROR, error_body(error, rid))

    async def _goodbye(self, conn: _Connection, reason: str) -> None:
        try:
            await self._send(conn, FrameType.GOODBYE, {
                "reason": reason,
                "retry_after_s": self.admission.retry_after_s(),
            })
        except _Hangup:
            pass

    def _abort(self, conn: _Connection) -> None:
        try:
            if conn.writer.transport is not None:
                conn.writer.transport.abort()
        except (RuntimeError, AttributeError):
            pass
        if conn.session is not None:
            conn.session.close()
        self._conns.discard(conn)

    def __repr__(self) -> str:
        return "Server(%d connections, %d sessions served%s)" % (
            len(self._conns), self.sessions_served,
            ", draining" if self.draining else "",
        )
