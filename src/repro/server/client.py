"""The retrying client: idempotent requests, ledgered backoff.

The client owns the *at-least-once wire, exactly-once effect*
discipline end to end:

* **Idempotent request ids** -- every logical request gets one id from
  a deterministic per-client counter, allocated *before* the first
  attempt and reused verbatim on every retry.  For writes the server
  caches the commit version under ``(client_id, request_id)``, so a
  retry after a lost ack replays the original ack instead of applying
  the write twice.
* **Capped exponential backoff with jitter, drawn against one shared
  Deadline ledger** -- every backoff pause is charged to the client's
  single :class:`~repro.gov.governor.Deadline` as simulated time (the
  PR 4 pattern: one ledger, no per-retry budget resets), so the total
  time a caller can lose to retries is bounded and the retry loop
  dies with a typed :class:`~repro.errors.DeadlineExceededError`
  rather than retrying forever.  Jitter comes from a seeded RNG:
  two clients built with the same seed back off identically.
* **Typed failure, never a hang** -- transport failures of every kind
  (refused/dropped connections, torn frames, streams that end
  mid-result, reads stalled past ``read_timeout_s``) surface as
  :class:`~repro.errors.NetworkError`; the retry loop treats those
  and :class:`~repro.errors.OverloadedError` (honouring the server's
  ``retry_after_s`` hint) as transient, and everything else --
  write conflicts, session rejections, schema errors -- as final.

A result stream is complete only when a PAGE frame says ``last``:
a connection that dies mid-stream is a retryable failure, never a
truncated answer presented as a complete one.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    NetworkError,
    OverloadedError,
    ShardMovedError,
    UnavailableError,
)
from repro.gov.admission import PRIORITY_NORMAL
from repro.gov.governor import Deadline
from repro.relational.relation import Relation
from repro.server.protocol import (
    FrameDecoder,
    FrameType,
    PROTOCOL_VERSION,
    encode_frame,
    error_from_body,
)

__all__ = ["Client", "connect"]

_READ_CHUNK = 1 << 16


class Client:
    """One logical client; survives reconnects with stable identity."""

    def __init__(self, host: str, port: int, *,
                 token: Optional[str] = None,
                 client_id: str = "c0",
                 priority: int = PRIORITY_NORMAL,
                 seed: int = 0,
                 deadline: Optional[Deadline] = None,
                 max_attempts: int = 6,
                 backoff_base_s: float = 0.002,
                 backoff_cap_s: float = 0.1,
                 read_timeout_s: float = 5.0,
                 sleep_backoff: bool = False):
        self.host = host
        self.port = port
        self.token = token
        self.client_id = client_id
        self.priority = priority
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.read_timeout_s = read_timeout_s
        self.sleep_backoff = sleep_backoff
        #: One ledger for the client's whole lifetime: connection
        #: attempts, retries and backoff pauses all draw it down.
        self.deadline = deadline if deadline is not None \
            else Deadline.simulated(30.0)
        self._rng = random.Random(seed)
        self._request_ids = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder = FrameDecoder()
        self._inbox: List[Tuple[int, Dict[str, Any]]] = []
        self.session_id: Optional[str] = None
        self.version: Optional[int] = None
        self.trace_id: Optional[str] = None
        self.retries = 0
        self.backoff_charged_s = 0.0
        #: The freshest shard-map epoch seen per table, learned from
        #: SHARD_MOVED refusals; requests carrying an ``epoch`` field
        #: are re-stamped from this cache before each retry.
        self.shard_epochs: Dict[str, int] = {}

    # -- connection management ------------------------------------------

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def _connect(self) -> None:
        """Open the socket and run the handshake."""
        self._drop()
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except (ConnectionError, OSError) as err:
            raise NetworkError("connect failed: %s" % err) from None
        self._decoder = FrameDecoder()
        self._inbox = []
        await self._write_frame(FrameType.HELLO, {
            "protocol": PROTOCOL_VERSION,
            "token": self.token,
            "client": self.client_id,
            "priority": self.priority,
        })
        ftype, body = await self._read_frame()
        if ftype == FrameType.ERROR:
            self._drop()
            raise error_from_body(body)
        if ftype != FrameType.WELCOME:
            self._drop()
            raise NetworkError(
                "handshake answered with frame type %d" % ftype
            )
        self.session_id = body.get("session")
        self.version = body.get("version")
        self.trace_id = body.get("trace")

    def _drop(self) -> None:
        if self._writer is not None:
            try:
                if self._writer.transport is not None:
                    self._writer.transport.abort()
            except (RuntimeError, AttributeError):
                pass
        self._reader = None
        self._writer = None
        self._inbox = []

    async def close(self) -> None:
        """Orderly goodbye (best effort), then drop the socket."""
        if self._writer is not None:
            try:
                await self._write_frame(
                    FrameType.GOODBYE, {"reason": "goodbye"}
                )
                ftype, _ = await self._read_frame()
            except (UnavailableError, ConnectionError):
                pass
        self._drop()

    # -- framing over the socket ----------------------------------------

    async def _write_frame(self, ftype: int, body: Dict[str, Any]) -> None:
        if self._writer is None:
            raise NetworkError("not connected")
        try:
            self._writer.write(encode_frame(ftype, body))
            await self._writer.drain()
        except ConnectionError as err:
            raise NetworkError("send failed: %s" % err) from None

    async def _read_frame(self) -> Tuple[int, Dict[str, Any]]:
        """The next frame, or a typed NetworkError -- never a hang."""
        while not self._inbox:
            if self._reader is None:
                raise NetworkError("not connected")
            try:
                data = await asyncio.wait_for(
                    self._reader.read(_READ_CHUNK), self.read_timeout_s
                )
            except asyncio.TimeoutError:
                raise NetworkError(
                    "read stalled past %.3fs" % self.read_timeout_s
                ) from None
            except ConnectionError as err:
                raise NetworkError("read failed: %s" % err) from None
            if not data:
                self._decoder.finish()  # torn tail -> NetworkError
                raise NetworkError("connection closed by server")
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.pop(0)

    # -- the retry loop -------------------------------------------------

    def _next_request_id(self) -> str:
        self._request_ids += 1
        return "%s-%d" % (self.client_id, self._request_ids)

    def _backoff(self, attempt: int,
                 hint: Optional[float] = None) -> float:
        """One pause, charged to the shared deadline ledger.

        ``min(cap, base * 2^attempt)`` with multiplicative jitter in
        [0.5, 1.0) from the seeded RNG, floored by the server's
        ``retry_after_s`` hint when one arrived.  The charge lands
        *before* any real sleep, so the ledger -- not wall luck --
        decides when retrying stops.
        """
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * (2 ** attempt))
        delay *= 0.5 + 0.5 * self._rng.random()
        if hint is not None:
            delay = max(delay, hint)
        self.deadline.charge(delay)
        self.backoff_charged_s += delay
        self.deadline.check("client.backoff")
        return delay

    async def _call(self, ftype: int,
                    body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Send one request, retrying transient failures.

        The request id inside ``body`` is fixed across attempts --
        that is the idempotency contract.  Returns the first
        non-PAGE response frame, or the PAGE-collecting caller uses
        :meth:`_collect_pages` via ``collect=True`` paths below.

        A SHARD_MOVED refusal is transient but *not* a transport
        failure: the connection stays up, the refused table's fresh
        epoch is cached in :attr:`shard_epochs`, and -- when the
        request carries an ``epoch`` stamp -- the stamp is refreshed
        so the retry runs against the map the server actually holds.
        """
        last: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            self.deadline.check("client.request")
            try:
                if not self.connected:
                    await self._connect()
                await self._write_frame(ftype, body)
                return await self._read_response(body["id"])
            except ShardMovedError as err:
                last = err
                self.retries += 1
                self.shard_epochs[err.table] = err.current_epoch
                if isinstance(body.get("epoch"), dict):
                    body["epoch"][err.table] = err.current_epoch
                elif "epoch" in body:
                    body["epoch"] = err.current_epoch
                if attempt + 1 < self.max_attempts:
                    delay = self._backoff(attempt, err.retry_after_s)
                    if self.sleep_backoff and delay > 0:
                        await asyncio.sleep(delay)
            except (NetworkError, OverloadedError) as err:
                last = err
                self._drop()
                self.retries += 1
                hint = getattr(err, "retry_after_s", None)
                if attempt + 1 < self.max_attempts:
                    delay = self._backoff(attempt, hint)
                    if self.sleep_backoff and delay > 0:
                        await asyncio.sleep(delay)
        raise last if last is not None else NetworkError("no attempts ran")

    async def _read_response(self, rid: str) -> Tuple[int, Dict[str, Any]]:
        """Frames for ``rid`` until a terminal one arrives.

        PAGE streams are accumulated here and returned as one
        synthetic ``(PAGE, {...})`` with the concatenated rows once
        the ``last`` page lands; a stream that dies earlier raises
        :class:`~repro.errors.NetworkError` (and the whole request
        retries under the same id).
        """
        pages: List[Dict[str, Any]] = []
        while True:
            ftype, body = await self._read_frame()
            if body.get("id") not in (None, rid):
                # A stale answer from before a reconnect; skip it.
                continue
            if ftype == FrameType.PAGE:
                pages.append(body)
                if body.get("last"):
                    rows: List[List[Any]] = []
                    for page in pages:
                        rows.extend(page.get("rows", []))
                    return FrameType.PAGE, {
                        "id": rid,
                        "heading": pages[0].get("heading", []),
                        "rows": rows,
                        "version": pages[-1].get("version"),
                        "pages": len(pages),
                    }
                continue
            if ftype == FrameType.ERROR:
                raise error_from_body(body)
            return ftype, body

    # -- public surface -------------------------------------------------

    async def query(self, xql: str) -> Relation:
        """Run one XQL query against the session's pinned snapshot."""
        rid = self._next_request_id()
        ftype, body = await self._call(
            FrameType.QUERY, {"id": rid, "xql": xql}
        )
        return self._relation_of(ftype, body)

    async def prepare(self, name: str, xql: str) -> None:
        rid = self._next_request_id()
        ftype, body = await self._call(
            FrameType.PREPARE, {"id": rid, "name": name, "xql": xql}
        )
        self._expect(ftype, FrameType.PREPARED, body)

    async def execute(self, name: str,
                      args: Sequence[Any] = ()) -> Relation:
        """Run a prepared statement with positional arguments."""
        rid = self._next_request_id()
        ftype, body = await self._call(
            FrameType.EXECUTE,
            {"id": rid, "name": name, "args": list(args)},
        )
        return self._relation_of(ftype, body)

    async def mutate(self, ops: Sequence[Sequence[Any]]) -> int:
        """Apply one atomic write batch; returns its commit version.

        The request id is allocated once, so a retry after a lost ack
        is replayed from the server's idempotency cache -- the write
        itself runs at most once.
        """
        rid = self._next_request_id()
        ftype, body = await self._call(
            FrameType.MUTATE,
            {"id": rid, "ops": [list(op) for op in ops]},
        )
        self._expect(ftype, FrameType.COMMITTED, body)
        self.version = body.get("version")
        return body["version"]

    async def refresh(self) -> int:
        """Re-pin the session snapshot at the latest version."""
        rid = self._next_request_id()
        ftype, body = await self._call(FrameType.REFRESH, {"id": rid})
        self._expect(ftype, FrameType.REFRESHED, body)
        self.version = body.get("version")
        return body["version"]

    async def cancel(self, request_id: str) -> None:
        """Fire-and-forget cancellation of an in-flight request id."""
        if self.connected:
            await self._write_frame(FrameType.CANCEL, {"id": request_id})

    # -- helpers --------------------------------------------------------

    def _expect(self, ftype: int, wanted: int,
                body: Dict[str, Any]) -> None:
        if ftype != wanted:
            raise NetworkError(
                "expected frame type %d, got %d (%r)"
                % (wanted, ftype, body)
            )

    def _relation_of(self, ftype: int,
                     body: Dict[str, Any]) -> Relation:
        if ftype == FrameType.CANCELLED:
            raise NetworkError("request %s was cancelled" % body.get("id"))
        self._expect(ftype, FrameType.PAGE, body)
        return Relation.from_tuples(
            body.get("heading", []),
            [tuple(row) for row in body.get("rows", [])],
        )

    def __repr__(self) -> str:
        return "Client(%s -> %s:%s, session=%s)" % (
            self.client_id, self.host, self.port, self.session_id,
        )


async def connect(host: str, port: int, **kwargs: Any) -> Client:
    """Build a :class:`Client` and run the handshake (with retries)."""
    client = Client(host, port, **kwargs)
    last: Optional[Exception] = None
    for attempt in range(client.max_attempts):
        try:
            await client._connect()
            return client
        except (NetworkError, OverloadedError) as err:
            last = err
            client.retries += 1
            hint = getattr(err, "retry_after_s", None)
            if attempt + 1 < client.max_attempts:
                delay = client._backoff(attempt, hint)
                if client.sleep_backoff and delay > 0:
                    await asyncio.sleep(delay)
    raise last if last is not None else NetworkError("no attempts ran")
