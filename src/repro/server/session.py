"""Per-connection session state: snapshot pin, prepared statements.

A session is the unit of isolation the server hands each connection:

* an MVCC :class:`~repro.relational.tx.Snapshot` pinned at handshake
  (and re-pinned on REFRESH or after the session's own commit), so
  every query a session runs sees one consistent version no matter
  how many writers commit meanwhile -- *snapshot sessions*;
* a registry of prepared statements: named XQL templates with
  ``$1..$n`` placeholders, substituted server-side with safely
  rendered literals at EXECUTE time;
* the bookkeeping the service layer needs to survive failure --
  which request is in flight, which request ids were cancelled, and
  the session's priority class for admission and drain shedding.

Sessions never share mutable state: two sessions at the same version
share relation *pointers* (immutability makes that free), nothing
else.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SessionError, WriteConflictError
from repro.gov.admission import PRIORITY_NORMAL
from repro.relational.query import Database
from repro.relational.tx import Snapshot, TransactionManager

__all__ = ["Session", "render_statement"]


def render_literal(value: Any) -> str:
    """One argument as an XQL literal; reject what XQL cannot carry."""
    if isinstance(value, bool):
        # XQL has no boolean literals; 1/0 would silently change type.
        raise SessionError("statement arguments cannot be booleans")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        if "'" in value:
            raise SessionError(
                "statement arguments cannot contain single quotes"
            )
        return "'%s'" % value
    raise SessionError(
        "statement arguments must be numbers or strings, got %r"
        % type(value).__name__
    )


def render_statement(template: str, args: Sequence[Any]) -> str:
    """Substitute ``$1..$n`` placeholders with rendered literals.

    Placeholders are matched longest-first so ``$12`` never rewrites
    as ``$1`` followed by a stray ``2``; every placeholder must be
    bound and every argument used -- a mismatch is a typed
    :class:`~repro.errors.SessionError`, not a silently wrong query.
    """
    text = template
    for index in range(len(args), 0, -1):
        placeholder = "$%d" % index
        if placeholder not in text:
            raise SessionError(
                "statement has no placeholder %s for argument %d"
                % (placeholder, index)
            )
        text = text.replace(placeholder, render_literal(args[index - 1]))
    if "$" in text:
        raise SessionError(
            "statement placeholders left unbound: %s" % text
        )
    return text


class Session:
    """One connection's server-side state."""

    def __init__(self, session_id: str, manager: TransactionManager,
                 principal: str = "anonymous",
                 priority: int = PRIORITY_NORMAL,
                 result_cache=None):
        self.session_id = session_id
        self.principal = principal
        self.priority = priority
        self._manager = manager
        self._snapshot: Snapshot = manager.snapshot()
        self._statements: Dict[str, str] = {}
        self._db: Optional[Database] = None
        # Shared across sessions: entries are fingerprinted by the
        # snapshot's per-table MVCC versions, so two sessions pinned
        # at the same versions share results and a session pinned
        # past a commit can never be served the pre-commit answer.
        self._result_cache = result_cache
        self.cancelled: Set[str] = set()
        self.in_flight: Optional[str] = None
        self.closed = False

    # -- snapshot pinning ----------------------------------------------

    @property
    def version(self) -> int:
        """The MVCC version this session's reads are pinned to."""
        return self._snapshot.version

    @property
    def snapshot(self) -> Snapshot:
        return self._snapshot

    def refresh(self) -> int:
        """Re-pin at the latest committed version; returns it."""
        self._require_open()
        self._snapshot.close()
        self._snapshot = self._manager.snapshot()
        self._db = None
        return self._snapshot.version

    def database(self) -> Database:
        """A query catalog over the pinned snapshot (built lazily).

        The database holds the snapshot's relation pointers, so
        building it is O(tables) and queries against it are embedded
        execution, byte-for-byte -- the differential oracle's anchor.
        """
        self._require_open()
        if self._db is None:
            db = Database()
            for name in self._snapshot.names():
                db.add(name, self._snapshot.relation(name))
            if self._result_cache is not None:
                db.enable_result_cache(
                    cache=self._result_cache,
                    version_of=self._snapshot.table_version,
                )
            self._db = db
        return self._db

    # -- prepared statements -------------------------------------------

    def prepare(self, name: str, template: str) -> None:
        self._require_open()
        if not name or not isinstance(name, str):
            raise SessionError("statement names must be non-empty strings",
                               session_id=self.session_id)
        self._statements[name] = template

    def statement(self, name: str, args: Sequence[Any]) -> str:
        self._require_open()
        template = self._statements.get(name)
        if template is None:
            raise SessionError("unknown prepared statement %r" % (name,),
                               session_id=self.session_id)
        return render_statement(template, args)

    def statements(self) -> List[str]:
        return sorted(self._statements)

    # -- writes ---------------------------------------------------------

    def mutate(self, ops: Sequence[Sequence[Any]]) -> int:
        """Apply one atomic batch of writes; returns the commit version.

        Ops are wire-shaped lists: ``["insert", table, row]``,
        ``["delete", table, where]`` and ``["update", table, where,
        set]``.  The batch commits under first-committer-wins against
        this session's pinned version: if any written table was
        committed past :attr:`version` by someone else, the batch
        raises :class:`~repro.errors.WriteConflictError` and nothing
        is applied.  On success the session re-pins at the new version
        so its own write is immediately readable.
        """
        self._require_open()
        parsed: List[Tuple] = []
        written: Set[str] = set()
        for op in ops:
            if not isinstance(op, (list, tuple)) or len(op) < 3:
                raise SessionError("malformed mutation op %r" % (op,),
                                   session_id=self.session_id)
            kind, name = op[0], op[1]
            if kind == "insert" and len(op) == 3:
                parsed.append(("insert", name, dict(op[2])))
            elif kind == "delete" and len(op) == 3:
                parsed.append(("delete", name, dict(op[2])))
            elif kind == "update" and len(op) == 4:
                parsed.append(("update", name, dict(op[2]), dict(op[3])))
            else:
                raise SessionError("unknown mutation op %r" % (kind,),
                                   session_id=self.session_id)
            written.add(name)
        manager = self._manager
        conflicting = sorted(
            name for name in written
            if manager.table_version(name) > self.version
        )
        if conflicting:
            raise WriteConflictError(
                conflicting, self.version,
                max(manager.table_version(name) for name in conflicting),
            )
        with manager.transaction(deferred=True):
            for op in parsed:
                table = manager.table(op[1])
                if op[0] == "insert":
                    table.insert(op[2])
                elif op[0] == "delete":
                    table.delete(op[2])
                else:
                    table.update(op[2], op[3])
        self.refresh()
        return manager.current_version

    # -- lifecycle ------------------------------------------------------

    def _require_open(self) -> None:
        if self.closed:
            raise SessionError("session is closed",
                               session_id=self.session_id)

    def close(self) -> None:
        """Release the snapshot pin; idempotent."""
        if not self.closed:
            self._snapshot.close()
            self._db = None
            self.closed = True

    def __repr__(self) -> str:
        return "Session(%s, version=%d%s)" % (
            self.session_id, self.version,
            ", closed" if self.closed else "",
        )
