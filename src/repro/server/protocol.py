"""The wire protocol: length-prefixed, CRC-framed JSON messages.

One frame is::

    +-------+---------+------+----------------+---------+
    | magic | version | type | payload length | payload | CRC32 |
    | 2B    | 1B      | 1B   | 4B big-endian  | N bytes | 4B    |
    +-------+---------+------+----------------+---------+-------+

The CRC covers header *and* payload, so a bit flip anywhere in the
frame -- not just the body -- is detected.  Payloads are canonical
JSON objects (sorted keys, no whitespace), which keeps the protocol
dependency-free, inspectable with ``tcpdump``, and deterministic: the
same message always encodes to the same bytes.

Decoding is incremental and *total*: :class:`FrameDecoder` consumes
arbitrary byte chunks and either yields complete frames, waits for
more input, or raises a typed :class:`~repro.errors.NetworkError`
(bad magic, unsupported version, oversized length, CRC mismatch,
non-JSON payload).  :meth:`FrameDecoder.finish` closes the stream:
leftover bytes -- a torn frame, the wire analogue of the WAL's torn
tail -- raise :class:`~repro.errors.NetworkError` rather than being
silently dropped, so a connection that dies mid-frame can never be
mistaken for a clean goodbye.  The property pinned by
``tests/server/test_protocol.py``: every prefix of a valid frame
stream decodes to a (possibly empty) prefix of its frames plus either
a clean end or a typed error -- never a hang, never an unhandled
exception.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    ClusterUnavailableError,
    DeadlineExceededError,
    NetworkError,
    OverloadedError,
    SessionError,
    ShardMovedError,
    UnavailableError,
    WriteConflictError,
    XSTError,
)

__all__ = [
    "FrameType",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_body",
    "FrameDecoder",
    "error_body",
    "error_from_body",
]

MAGIC = b"XS"
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload; a length prefix past this is
#: treated as framing damage, not an allocation request.
MAX_FRAME_BYTES = 1 << 24

_HEADER = struct.Struct(">2sBBI")  # magic, version, type, payload length
_TRAILER = struct.Struct(">I")     # CRC32(header + payload)


class FrameType:
    """Message type codes (one byte on the wire)."""

    HELLO = 1       # client -> server: open a session (token, client id)
    WELCOME = 2     # server -> client: session id + pinned MVCC version
    QUERY = 3       # client -> server: run one XQL query
    PAGE = 4        # server -> client: one result page (last=true ends)
    PREPARE = 5     # client -> server: register a parameterized statement
    PREPARED = 6    # server -> client: statement accepted
    EXECUTE = 7     # client -> server: run a prepared statement with args
    MUTATE = 8      # client -> server: one atomic batch of writes
    COMMITTED = 9   # server -> client: the batch's commit version
    REFRESH = 10    # client -> server: re-pin the session snapshot
    REFRESHED = 11  # server -> client: the new snapshot version
    CANCEL = 12     # client -> server: abandon an in-flight request id
    CANCELLED = 13  # server -> client: the request stopped at a page edge
    ERROR = 14      # server -> client: typed failure for one request
    GOODBYE = 15    # either direction: orderly close (reason, retry hint)

    #: Every code the decoder accepts; anything else is a protocol error.
    ALL = frozenset(range(HELLO, GOODBYE + 1))


def encode_frame(frame_type: int, body: Dict[str, Any]) -> bytes:
    """One message as wire bytes (header + canonical JSON + CRC)."""
    if frame_type not in FrameType.ALL:
        raise ValueError("unknown frame type %r" % (frame_type,))
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            "payload of %d bytes exceeds the %d-byte frame ceiling"
            % (len(payload), MAX_FRAME_BYTES)
        )
    header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, frame_type, len(payload))
    return header + payload + _TRAILER.pack(zlib.crc32(header + payload))


def decode_body(payload: bytes, frame: int) -> Dict[str, Any]:
    """Payload bytes -> JSON object, or a typed protocol error."""
    try:
        body = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise NetworkError("payload is not valid JSON", frame=frame) from None
    if not isinstance(body, dict):
        raise NetworkError("payload is not a JSON object", frame=frame)
    return body


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    ``feed`` returns every frame completed by the new bytes;
    ``finish`` asserts the stream ended on a frame boundary.  All
    failure modes raise :class:`~repro.errors.NetworkError` carrying
    the 0-based index of the offending frame; the decoder is then
    poisoned (every later call re-raises), matching what a real
    endpoint does -- one framing error kills the connection.
    """

    def __init__(self):
        self._buffer = bytearray()
        self._frames = 0
        self._dead: Optional[NetworkError] = None

    @property
    def frames_decoded(self) -> int:
        return self._frames

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def _die(self, reason: str) -> NetworkError:
        self._dead = NetworkError(reason, frame=self._frames)
        self._buffer.clear()
        return self._dead

    def feed(self, data: bytes) -> List[Tuple[int, Dict[str, Any]]]:
        """Consume ``data``; return the frames it completed, in order."""
        if self._dead is not None:
            raise self._dead
        self._buffer.extend(data)
        out: List[Tuple[int, Dict[str, Any]]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return out
            magic, version, frame_type, length = _HEADER.unpack_from(
                self._buffer
            )
            if magic != MAGIC:
                raise self._die("bad magic %r" % (bytes(magic),))
            if version != PROTOCOL_VERSION:
                raise self._die("unsupported protocol version %d" % version)
            if frame_type not in FrameType.ALL:
                raise self._die("unknown frame type %d" % frame_type)
            if length > MAX_FRAME_BYTES:
                raise self._die(
                    "frame length %d exceeds the %d-byte ceiling"
                    % (length, MAX_FRAME_BYTES)
                )
            total = _HEADER.size + length + _TRAILER.size
            if len(self._buffer) < total:
                return out
            crc_expected, = _TRAILER.unpack_from(
                self._buffer, _HEADER.size + length
            )
            crc_actual = zlib.crc32(
                bytes(self._buffer[: _HEADER.size + length])
            )
            if crc_actual != crc_expected:
                raise self._die("frame failed its CRC check")
            payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:total]
            try:
                body = decode_body(payload, self._frames)
            except NetworkError as error:
                self._dead = error
                self._buffer.clear()
                raise
            out.append((frame_type, body))
            self._frames += 1

    def finish(self) -> None:
        """Declare end-of-stream; torn trailing bytes are an error."""
        if self._dead is not None:
            raise self._dead
        if self._buffer:
            raise self._die(
                "stream ended inside a frame (%d torn bytes)"
                % len(self._buffer)
            )


# ----------------------------------------------------------------------
# Typed errors over the wire
# ----------------------------------------------------------------------

#: Context attributes shipped inside ERROR frames, mirroring the
#: flight recorder's incident context (repro.obs.recorder).
_CONTEXT_ATTRS = (
    "elapsed_s", "timeout_s", "site",
    "resource", "spent", "limit",
    "in_flight", "capacity", "reason",
    "table", "bucket", "node", "retry_after_ops", "replicas",
    "frame", "session_id", "request_id",
    "tables", "read_version", "committed_version",
    "requested_epoch", "current_epoch",
)


def error_body(error: Exception,
               request_id: Optional[str] = None) -> Dict[str, Any]:
    """Render any exception as an ERROR frame body.

    Typed errors keep their stable code/exit code and structured
    context; anything else (schema violations, bad XQL, integrity
    failures) travels as the generic code ``ERROR`` with exit code 2,
    exactly mirroring the CLI's exit discipline.
    """
    context = {}
    for attr in _CONTEXT_ATTRS:
        value = getattr(error, attr, None)
        if value is not None:
            context[attr] = list(value) if isinstance(value, tuple) else value
    body: Dict[str, Any] = {
        "code": getattr(error, "code", "ERROR"),
        "exit_code": getattr(error, "exit_code", 2),
        "message": str(error),
        "context": context,
    }
    if request_id is not None:
        body["id"] = request_id
    retry_after = getattr(error, "retry_after_s", None)
    if retry_after is not None:
        body["retry_after_s"] = retry_after
    return body


def error_from_body(body: Dict[str, Any]) -> Exception:
    """Reconstruct the typed error an ERROR frame describes.

    The governance and serving classes rebuild with their structured
    context so client-side handling (and the flight recorder) sees
    the same shape the server raised; unknown codes degrade to the
    :class:`~repro.errors.UnavailableError` base or a plain
    :class:`~repro.errors.XSTError` for non-availability failures.
    """
    code = body.get("code", "ERROR")
    message = body.get("message", "")
    context = body.get("context", {})
    retry_after = body.get("retry_after_s")
    if code == "OVERLOADED":
        return OverloadedError(
            context.get("in_flight", 0), context.get("capacity", 0),
            retry_after if retry_after is not None else 0.0,
            reason=context.get("reason", "at capacity"),
        )
    if code == "DEADLINE_EXCEEDED":
        return DeadlineExceededError(
            context.get("elapsed_s", 0.0), context.get("timeout_s", 0.0),
            site=context.get("site", "<server>"),
        )
    if code == "BUDGET_EXCEEDED":
        return BudgetExceededError(
            context.get("resource", "rows"), context.get("spent", 0),
            context.get("limit", 0), site=context.get("site", "<server>"),
        )
    if code == "WRITE_CONFLICT":
        return WriteConflictError(
            context.get("tables", ()), context.get("read_version", 0),
            context.get("committed_version", 0),
        )
    if code == "SESSION":
        return SessionError(
            context.get("reason", message),
            session_id=context.get("session_id"),
            retry_after_s=retry_after,
        )
    if code == "NETWORK":
        return NetworkError(
            context.get("reason", message), frame=context.get("frame"),
            retry_after_s=retry_after,
        )
    if code == "CIRCUIT_OPEN":
        return CircuitOpenError(
            context.get("table", "?"), context.get("bucket", 0),
            context.get("node", "?"),
            retry_after_ops=context.get("retry_after_ops", 0),
        )
    if code == "SHARD_MOVED":
        return ShardMovedError(
            context.get("table", "?"),
            context.get("requested_epoch", 0),
            context.get("current_epoch", 0),
            bucket=context.get("bucket"),
        )
    if code == "CLUSTER_UNAVAILABLE":
        return ClusterUnavailableError(
            context.get("table", "?"), context.get("bucket", 0),
            replicas=context.get("replicas", ()),
            reason=context.get("reason", message),
        )
    if code == "UNAVAILABLE":
        error = UnavailableError(message)
        error.retry_after_s = retry_after
        return error
    return XSTError(message)
