"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` can fall back to the legacy editable-install
path on offline machines where PEP 517 builds cannot fetch build
dependencies.
"""

from setuptools import setup

setup()
